//! # ltsp — Latency-Tolerant Software Pipelining
//!
//! Umbrella crate for the workspace reproducing *Winkel, Krishnaiyer &
//! Sampson, "Latency-Tolerant Software Pipelining in a Production
//! Compiler", CGO 2008*. It re-exports every sub-crate under a stable
//! module name so applications can depend on a single crate:
//!
//! - [`ir`] — loop intermediate representation
//! - [`machine`] — Itanium-2-like machine model
//! - [`ddg`] — dependence graphs, recurrence analysis, MinDist/RecMII
//! - [`hlo`] — software prefetcher and latency-hint heuristics
//! - [`pipeliner`] — iterative modulo scheduler and rotating-register
//!   allocator
//! - [`memsim`] — cache hierarchy, OzQ and in-order execution simulator
//! - [`workloads`] — synthetic SPEC-like benchmark suites
//! - [`core`] — the compiler driver, latency policies, theory module and
//!   experiment runners
//! - [`telemetry`] — dependency-free decision traces, phase timing and
//!   machine-readable run artifacts (JSONL, JSON metrics, Chrome trace)
//! - [`oracle`] — independent schedule validator, exact-II oracle and
//!   the differential harness testing the heuristic pipeliner
//! - [`par`] — deterministic scoped work pool behind every `--jobs N`
//!   batch layer (index-ordered merge, spliced telemetry, panic
//!   propagation)
//! - [`cache`] — content-addressed fingerprints and the sharded
//!   byte-budget LRU behind the compile/serve caches
//! - [`server`] — `ltspd`, the compilation-as-a-service daemon
//!   (line-delimited JSON protocol, batching, backpressure, drain)
//! - [`cluster`] — sharded serving: consistent-hash router (`ltspr`),
//!   bounded failover, persistent warm-start cache tier, supervised
//!   cluster lifecycle behind `ltspc serve --cluster N`
//! - [`adaptive`] — feedback-directed latency hints: the simulator's
//!   observed miss levels refined into per-load hints, re-pipelined to a
//!   validator-certified fixpoint (`ltspc compile --adaptive`)
//!
//! # Quickstart
//!
//! ```
//! use ltsp::core::{compile_loop, CompileConfig, LatencyPolicy};
//! use ltsp::ir::{DataClass, LoopBuilder};
//! use ltsp::machine::MachineModel;
//!
//! let mut b = LoopBuilder::new("example");
//! let src = b.affine_ref("src", DataClass::Int, 0x1000, 4, 4);
//! let dst = b.affine_ref("dst", DataClass::Int, 0x200000, 4, 4);
//! let c = b.live_in_gr("c");
//! let v = b.load(src);
//! let s = b.add(v, c);
//! b.store(dst, s);
//! let lp = b.build()?;
//!
//! let machine = MachineModel::itanium2();
//! let cfg = CompileConfig::new(LatencyPolicy::HloHints);
//! let compiled = compile_loop(&lp, &machine, &cfg);
//! assert!(compiled.kernel.ii() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use ltsp_adaptive as adaptive;
pub use ltsp_cache as cache;
pub use ltsp_cluster as cluster;
pub use ltsp_core as core;
pub use ltsp_ddg as ddg;
pub use ltsp_hlo as hlo;
pub use ltsp_ir as ir;
pub use ltsp_machine as machine;
pub use ltsp_memsim as memsim;
pub use ltsp_oracle as oracle;
pub use ltsp_par as par;
pub use ltsp_pipeliner as pipeliner;
pub use ltsp_server as server;
pub use ltsp_telemetry as telemetry;
pub use ltsp_workloads as workloads;
