//! `ltspc` — a command-line driver for the latency-tolerant pipelining
//! compiler: read a loop in the textual IR format, compile it under a
//! policy, and print the kernel schedule, assembly and (optionally) a
//! simulated execution.
//!
//! ```text
//! ltspc <file.loop | -> [--policy baseline|l3|fpl2|hlo] [--backend heuristic|exact|tiered]
//!       [--adaptive] [--trip N] [--threshold N] [--no-prefetch] [--balanced] [--speculate]
//!       [--budget NODES] [--asm] [--simulate ITERS]
//!       [--trace-out FILE] [--metrics-out FILE] [--chrome-trace FILE] [-v]
//! ltspc verify <file.loop | -> ... [--jobs N]   # certify heuristic schedules
//! ltspc oracle <file.loop | -> ... [--budget N] [--jobs N]  # prove minimal IIs
//! ltspc serve [--addr HOST:PORT] [--jobs N] [--persist FILE] ...  # ltspd daemon
//! ltspc serve --cluster N [--persist-dir DIR] ...  # router + N shard processes
//! ltspc remote <addr> <file.loop>... [--op compile|verify|oracle]
//!       [--backend heuristic|exact|tiered]
//!       [--timeout SECS] [--retries N] [--timings] [--shutdown]
//! ltspc remote <addr> --op metrics [--check-phases p1,p2,...]
//! ltspc remote <addr> --op stats
//! ltspc top <addr> [--interval-ms MS] [--count N]  # live dashboard
//! ```
//!
//! `verify` pipelines each loop at base latencies and runs the independent
//! schedule validator over the result; `oracle` additionally proves the
//! minimal feasible II and reports the heuristic's optimality gap. Both
//! subcommands accept **multiple** input files, processed on `--jobs N`
//! worker threads (default: the machine's available parallelism); output
//! is printed in input order whatever the worker count, and the exit code
//! is the first failing file's.
//!
//! `--backend` picks the scheduling backend for a compile. `heuristic`
//! (the default) is the production modulo scheduler; `exact` runs the
//! oracle's residue-level branch-and-bound as a full backend — slot
//! assignment and rotating-register feasibility checked inside the
//! search, the emitted kernel re-certified by the independent validator,
//! and the report stating whether the II is *proven* minimal. Locally,
//! `tiered` is served by the same exact path (the heuristic-now /
//! exact-later split only means something with a daemon in front, where
//! the upgrade lands asynchronously in the cache); `ltspc` notes the
//! aliasing on stderr. `remote --backend ...` forwards the choice on the
//! wire — `tiered` there answers heuristically and upgrades the cache
//! entry in place once refinement lands (resend to observe
//! `cache:"upgraded"`).
//!
//! `--adaptive` closes the feedback loop locally: the scheduled kernel
//! runs on the memory simulator, observed service levels become refined
//! per-instruction latency hints (and expose droppable redundant
//! prefetches), and the loop is re-pipelined to a bounded, certified
//! fixpoint (`ltsp_adaptive`). The printed round trace and kernel are
//! byte-identical to the converged bytes a daemon's refine worker
//! installs for `remote --mode adaptive` (or `remote --adaptive`)
//! requests — there, the first response is the fast static schedule and
//! a resend after refinement observes `cache:"upgraded"`.
//!
//! `serve` runs the compilation daemon in-process (same flags as
//! `ltspd`); `--persist FILE` adds the append-only warm-start cache log
//! (`ltsp_cache::persist`), and `--persist-warn-mb N` logs a loud
//! warning (once) when that log grows past N MiB — the size is also
//! exported as the `ltsp_persist_log_bytes` gauge. `serve --cluster N`
//! instead supervises a whole cluster: N `ltspc serve` shard processes
//! on consecutive ports
//! plus the consistent-hash router (`ltsp_cluster`) on `--addr`, with
//! `--persist-dir DIR` giving every shard its own warm-start log.
//! Crashed shards are respawned (warm, from their log) and a client
//! `shutdown` or SIGTERM drains the whole tree. `remote` ships loop
//! files to a running daemon over the
//! line-delimited JSON protocol and prints each response's report —
//! byte-identical to what the local compile path prints, which CI
//! checks. `--shutdown` drains the server after the last file.
//!
//! `remote --op metrics` needs no files: it prints the daemon's live
//! Prometheus text snapshot (see `ltsp_server::engine`) to stdout, and
//! `--check-phases parse,sched,...` additionally fails with exit 1 when
//! any named per-phase latency histogram has no samples — the CI smoke
//! check that observability is actually wired. `--op stats` prints the
//! raw stats response line. `--timings` sets the opt-in request flag so
//! each response carries its per-phase breakdown, echoed to stderr.
//! `top` polls the metrics op and renders a one-screen dashboard
//! (request rates, cache hit ratio, queue depth, per-phase p50/p99,
//! shed/panic counters) every `--interval-ms` (default 1000),
//! `--count` times (default: until interrupted).
//!
//! `remote` never hangs on a stalled or wedged server: `--timeout SECS`
//! (default 30, `0` disables) bounds the connect, every request write,
//! and every response read. `--retries N` (default 4) bounds two retry
//! classes sharing one capped exponential backoff schedule (100ms ·
//! 2^attempt, at most 2s): an `overloaded` response is re-sent after a
//! breather, and a *dead connection* (connect refused, reset, broken
//! pipe, server EOF — a crashed or restarting server) is retried by
//! reconnecting and re-sending, which is safe because responses are
//! pure functions of requests. Exhausted retries exit 6 (overloaded) or
//! 3 (I/O). A `draining` response exits 6 immediately — the server is
//! deliberately going away, and a retry against the same address cannot
//! succeed. Deadline expiries are never retried: the server may still
//! be working, and `--timeout` owns that policy.
//!
//! Exit codes are distinct per failure class so scripts can dispatch:
//! `0` success (schedule certified / oracle verdict exact), `1` validator
//! rejection or budget-limited oracle verdict, `2` usage error, `3` I/O
//! error, `4` syntax error in the input (reported as `file:line:
//! message`), `5` structurally invalid loop, `6` server overloaded or
//! draining (`remote` only — retry later).
//!
//! The telemetry flags record the compiler's decision trail — HLO hint
//! heuristics, criticality verdicts, latency boosts, II escalations,
//! register-pressure fallbacks — plus per-phase timing and simulator
//! cycle accounting. `--trace-out` writes JSONL events, `--metrics-out`
//! a JSON metrics snapshot, `--chrome-trace` a Chrome `trace_event` file
//! loadable in Perfetto (ui.perfetto.dev); `-v` renders events on stderr.
//!
//! Example input (see `ltsp_ir::parse_loop` for the grammar):
//!
//! ```text
//! loop example {
//!   live_in g0
//!   m0: "a[i]" [int affine(base=0x1000, stride=256) 4B]
//!   m1: "y[i]" [int affine(base=0x2000000, stride=4) 4B]
//!   i0: ld g1 = @m0
//!   i1: add g2 = g1, g0
//!   i2: st g2 @m1
//! }
//! ```

use std::io::Read as _;
use std::process::ExitCode;

use ltsp::core::{compile_loop_with_profile_traced, CompileConfig, LatencyPolicy};
use ltsp::ir::parse_loop;
use ltsp::machine::MachineModel;
use ltsp::memsim::{Executor, ExecutorConfig, StreamMode};
use ltsp::oracle::OracleOptions;
use ltsp::pipeliner::{assign_registers, emit_kernel, form_bundles};
use ltsp::telemetry::Telemetry;

struct Options {
    input: String,
    policy: LatencyPolicy,
    backend: ltsp::server::Backend,
    adaptive: bool,
    budget: u64,
    trip: f64,
    threshold: u32,
    prefetch: bool,
    balanced: bool,
    speculate: bool,
    asm: bool,
    simulate: Option<u64>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    chrome_trace: Option<String>,
    verbose: bool,
}

/// Exit codes: one per failure class (see the module docs).
const EXIT_REJECTED: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_IO: u8 = 3;
const EXIT_SYNTAX: u8 = 4;
const EXIT_INVALID: u8 = 5;
const EXIT_BUSY: u8 = 6;

fn usage() -> ! {
    eprintln!(
        "usage: ltspc <file.loop | -> [--policy baseline|l3|fpl2|hlo] [--trip N]\n\
         \x20             [--backend heuristic|exact|tiered] [--adaptive] [--budget NODES]\n\
         \x20             [--threshold N] [--no-prefetch] [--balanced] [--speculate]\n\
         \x20             [--asm] [--simulate ITERS]\n\
         \x20             [--trace-out FILE] [--metrics-out FILE]\n\
         \x20             [--chrome-trace FILE] [-v|--verbose]\n\
         \x20      ltspc verify <file.loop | -> ... [--jobs N]\n\
         \x20      ltspc oracle <file.loop | -> ... [--budget NODES] [--jobs N]\n\
         \x20      ltspc serve [--addr HOST:PORT] [--jobs N] [--queue N] [--batch N]\n\
         \x20            [--cluster N] [--persist FILE] [--persist-dir DIR]\n\
         \x20            [--persist-warn-mb N] [-v]\n\
         \x20      ltspc remote <addr> <file.loop>... [--op compile|verify|oracle]\n\
         \x20            [--backend heuristic|exact|tiered] [--mode static|adaptive]\n\
         \x20            [--adaptive] [--policy P] [--trip N]\n\
         \x20            [--budget NODES] [--deadline-ms MS]\n\
         \x20            [--timeout SECS] [--retries N] [--timings] [--shutdown]\n\
         \x20      ltspc remote <addr> --op metrics [--check-phases p1,p2,...]\n\
         \x20      ltspc remote <addr> --op stats\n\
         \x20      ltspc top <addr> [--interval-ms MS] [--count N] [--timeout SECS]"
    );
    std::process::exit(i32::from(EXIT_USAGE));
}

/// Reads and parses one input, mapping each failure class to a
/// `(message, exit_code)` pair so batch mode can buffer diagnostics per
/// file. Syntax errors are reported as `file:line: message` so editors
/// and CI annotations can jump to the offending line.
fn read_and_parse(input: &str) -> Result<ltsp::ir::LoopIr, (String, u8)> {
    let (name, text) = if input == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            return Err(("ltspc: failed to read stdin".to_string(), EXIT_IO));
        }
        ("<stdin>", s)
    } else {
        match std::fs::read_to_string(input) {
            Ok(s) => (input, s),
            Err(e) => return Err((format!("ltspc: cannot read {input}: {e}"), EXIT_IO)),
        }
    };
    match parse_loop(&text) {
        Ok(lp) => Ok(lp),
        Err(ltsp::ir::ParseError::Syntax { line, message }) => {
            Err((format!("{name}:{line}: {message}"), EXIT_SYNTAX))
        }
        Err(ltsp::ir::ParseError::Invalid(e)) => {
            Err((format!("{name}: invalid loop: {e}"), EXIT_INVALID))
        }
    }
}

/// One batch item's buffered result: stdout/stderr text plus the exit
/// code the file would have produced alone. Buffering keeps parallel
/// output identical to serial — results print in input order.
struct FileOutcome {
    out: String,
    err: String,
    code: u8,
}

/// `ltspc verify`, one file: certify the heuristic pipeliner's schedule
/// with the independent validator.
fn verify_one(input: &str) -> FileOutcome {
    use std::fmt::Write as _;
    let lp = match read_and_parse(input) {
        Ok(lp) => lp,
        Err((msg, code)) => {
            return FileOutcome {
                out: String::new(),
                err: msg + "\n",
                code,
            }
        }
    };
    let machine = MachineModel::itanium2();
    let tel = Telemetry::disabled();
    let r = ltsp::oracle::differential_case(&lp, &machine, &OracleOptions::default(), &tel);
    let mut o = FileOutcome {
        out: String::new(),
        err: String::new(),
        code: 0,
    };
    if r.violations.is_empty() {
        let _ = writeln!(
            o.out,
            "{}: certified (II={}, {})",
            r.name,
            r.heuristic_ii,
            if r.pipelined {
                "modulo schedule"
            } else {
                "acyclic fallback"
            }
        );
    } else {
        for v in &r.violations {
            let _ = writeln!(o.err, "{}: violation [{}]: {v}", r.name, v.kind());
        }
        o.code = EXIT_REJECTED;
    }
    o
}

/// `ltspc oracle`, one file: prove the minimal feasible II and report the
/// heuristic's optimality gap.
fn oracle_one(input: &str, budget: u64) -> FileOutcome {
    use std::fmt::Write as _;
    let lp = match read_and_parse(input) {
        Ok(lp) => lp,
        Err((msg, code)) => {
            return FileOutcome {
                out: String::new(),
                err: msg + "\n",
                code,
            }
        }
    };
    let machine = MachineModel::itanium2();
    let opts = OracleOptions {
        node_budget: budget,
        ..OracleOptions::default()
    };
    let tel = Telemetry::disabled();
    let r = ltsp::oracle::differential_case(&lp, &machine, &opts, &tel);
    let mut o = FileOutcome {
        out: String::new(),
        err: String::new(),
        code: 0,
    };
    for v in &r.violations {
        let _ = writeln!(o.err, "{}: violation [{}]: {v}", r.name, v.kind());
    }
    match &r.verdict {
        ltsp::oracle::IiVerdict::Exact {
            optimal_ii, nodes, ..
        } => {
            let gap = r.heuristic_ii - optimal_ii;
            let _ = writeln!(
                o.out,
                "{}: heuristic II={} optimal II={} gap={} ({} search nodes){}",
                r.name,
                r.heuristic_ii,
                optimal_ii,
                gap,
                nodes,
                if gap == 0 { " — proven optimal" } else { "" }
            );
            if !r.violations.is_empty() {
                o.code = EXIT_REJECTED;
            }
        }
        ltsp::oracle::IiVerdict::BoundedUnknown {
            proven_lower,
            nodes,
        } => {
            let _ = writeln!(
                o.out,
                "{}: heuristic II={}, optimal II in [{}, {}] — budget exhausted \
                 after {} nodes",
                r.name, r.heuristic_ii, proven_lower, r.heuristic_ii, nodes
            );
            o.code = EXIT_REJECTED;
        }
    }
    o
}

/// Runs a verify/oracle batch over `jobs` workers, prints every file's
/// buffered output in input order, and returns the first failing file's
/// exit code (success when all pass).
fn run_batch(inputs: &[String], jobs: usize, f: impl Fn(&str) -> FileOutcome + Sync) -> ExitCode {
    let outcomes = ltsp::par::Pool::new(jobs).map(inputs, |_idx, input| f(input));
    let mut code = 0u8;
    for o in &outcomes {
        print!("{}", o.out);
        eprint!("{}", o.err);
        if code == 0 {
            code = o.code;
        }
    }
    ExitCode::from(code)
}

fn parse_args() -> Options {
    let mut input = None;
    let mut o = Options {
        input: String::new(),
        policy: LatencyPolicy::HloHints,
        backend: ltsp::server::Backend::Heuristic,
        adaptive: false,
        budget: OracleOptions::default().node_budget,
        trip: 100.0,
        threshold: 32,
        prefetch: true,
        balanced: false,
        speculate: false,
        asm: false,
        simulate: None,
        trace_out: None,
        metrics_out: None,
        chrome_trace: None,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--policy" => {
                o.policy = match args.next().as_deref() {
                    Some("baseline") => LatencyPolicy::Baseline,
                    Some("l3") => LatencyPolicy::AllLoadsL3,
                    Some("fpl2") => LatencyPolicy::AllFpLoadsL2,
                    Some("hlo") => LatencyPolicy::HloHints,
                    _ => usage(),
                }
            }
            "--backend" => {
                o.backend = match args.next().as_deref() {
                    Some("heuristic") => ltsp::server::Backend::Heuristic,
                    Some("exact") => ltsp::server::Backend::Exact,
                    Some("tiered") => ltsp::server::Backend::Tiered,
                    _ => usage(),
                }
            }
            "--budget" => {
                o.budget = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--trip" => {
                o.trip = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threshold" => {
                o.threshold = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--adaptive" => o.adaptive = true,
            "--no-prefetch" => o.prefetch = false,
            "--balanced" => o.balanced = true,
            "--speculate" => o.speculate = true,
            "--asm" => o.asm = true,
            "--simulate" => {
                o.simulate = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--trace-out" => o.trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-out" => o.metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "--chrome-trace" => o.chrome_trace = Some(args.next().unwrap_or_else(|| usage())),
            "-v" | "--verbose" => o.verbose = true,
            "--help" | "-h" => usage(),
            other if input.is_none() => input = Some(other.to_string()),
            _ => usage(),
        }
    }
    o.input = input.unwrap_or_else(|| usage());
    o
}

/// `ltspc serve`: run the `ltspd` daemon in-process until drained —
/// or, with `--cluster N`, supervise a router plus N shard processes.
fn run_serve(argv: &[String]) -> ExitCode {
    let mut cfg = ltsp::server::ServerConfig {
        jobs: ltsp::par::default_parallelism(),
        handle_signals: true,
        ..ltsp::server::ServerConfig::default()
    };
    let mut verbose = false;
    let mut cluster: Option<usize> = None;
    let mut persist: Option<String> = None;
    let mut persist_dir: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                let v = it.next().cloned().unwrap_or_default();
                cfg.jobs = ltsp::par::parse_jobs(&v).unwrap_or_else(|e| {
                    eprintln!("ltspc: {e}");
                    std::process::exit(i32::from(EXIT_USAGE));
                })
            }
            "--queue" => {
                cfg.queue_high_water = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--batch" => {
                cfg.batch_max = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--cluster" => {
                cluster = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--persist" => persist = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--persist-dir" => persist_dir = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--persist-warn-mb" => {
                let mb: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
                cfg.engine.persist_warn_bytes = Some(mb << 20);
            }
            "-v" | "--verbose" => verbose = true,
            _ => usage(),
        }
    }

    if let Some(shards) = cluster {
        if persist.is_some() {
            eprintln!("ltspc: --persist is per-shard; use --persist-dir with --cluster");
            return ExitCode::from(EXIT_USAGE);
        }
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("ltspc: cannot locate own executable for shard spawn: {e}");
                return ExitCode::from(EXIT_IO);
            }
        };
        // Shards inherit the serving knobs; the supervisor appends each
        // shard's --addr (router port + 1 + i) and --persist log path.
        let mut worker_args = vec![
            "serve".to_string(),
            "--jobs".to_string(),
            cfg.jobs.to_string(),
            "--queue".to_string(),
            cfg.queue_high_water.to_string(),
            "--batch".to_string(),
            cfg.batch_max.to_string(),
        ];
        if let Some(bytes) = cfg.engine.persist_warn_bytes {
            worker_args.push("--persist-warn-mb".to_string());
            worker_args.push((bytes >> 20).max(1).to_string());
        }
        if verbose {
            worker_args.push("--verbose".to_string());
        }
        let ccfg = ltsp::cluster::ClusterConfig {
            router: ltsp::cluster::RouterConfig {
                addr: cfg.addr.clone(),
                handle_signals: true,
                telemetry: if verbose {
                    Telemetry::enabled_with(true)
                } else {
                    Telemetry::disabled()
                },
                ..ltsp::cluster::RouterConfig::default()
            },
            shards,
            worker_exe: exe,
            worker_args,
            persist_dir: persist_dir.map(Into::into),
            ..ltsp::cluster::ClusterConfig::default()
        };
        return match ltsp::cluster::run_cluster(ccfg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ltspc: serve --cluster: {e}");
                ExitCode::from(EXIT_IO)
            }
        };
    }
    if persist_dir.is_some() {
        eprintln!("ltspc: --persist-dir needs --cluster N; use --persist FILE for one process");
        return ExitCode::from(EXIT_USAGE);
    }

    cfg.engine.persist_path = persist.map(Into::into);
    cfg.fault = ltsp::server::FaultPlan::from_env().unwrap_or_else(|e| {
        eprintln!("ltspc: {e}");
        std::process::exit(i32::from(EXIT_USAGE));
    });
    if cfg.fault.is_active() {
        eprintln!("ltspc: LTSP_FAULT active — injecting deterministic faults");
    }
    cfg.telemetry = if verbose {
        Telemetry::enabled_with(true)
    } else {
        Telemetry::disabled()
    };
    eprintln!("ltspc: serving on {} (jobs={})", cfg.addr, cfg.jobs);
    match ltsp::server::serve(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ltspc: serve: {e}");
            ExitCode::from(EXIT_IO)
        }
    }
}

/// Connects under a deadline. `TcpStream::connect` alone can hang for
/// minutes on an unresponsive host; with a timeout every resolved
/// address gets at most `t` before the next is tried.
fn connect_with_timeout(
    addr: &str,
    timeout: Option<std::time::Duration>,
) -> std::io::Result<std::net::TcpStream> {
    use std::net::ToSocketAddrs as _;
    let Some(t) = timeout else {
        return std::net::TcpStream::connect(addr);
    };
    let mut last: Option<std::io::Error> = None;
    for a in addr.to_socket_addrs()? {
        match std::net::TcpStream::connect_timeout(&a, t) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    }))
}

/// Backoff before retry number `attempt` (0-based): 100ms · 2^attempt,
/// capped at 2s. Shared by the overloaded-retry and reconnect paths so
/// both honor the same documented schedule.
fn backoff_delay(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis((100u64 << attempt.min(5)).min(2000))
}

/// A transport error worth a reconnect-and-resend: the connection died
/// (crashed, restarting, or shed us) rather than stalled. Stalls
/// (`WouldBlock`/`TimedOut`) are deliberately excluded — the server may
/// still be working on the request, and `--timeout` owns that policy.
fn is_reconnectable(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind as K;
    matches!(
        kind,
        K::ConnectionRefused
            | K::ConnectionReset
            | K::ConnectionAborted
            | K::BrokenPipe
            | K::NotConnected
            | K::UnexpectedEof
    )
}

/// Opens the remote connection with every deadline applied.
fn open_conn(
    addr: &str,
    timeout: Option<std::time::Duration>,
) -> std::io::Result<(std::net::TcpStream, std::io::BufReader<std::net::TcpStream>)> {
    let stream = connect_with_timeout(addr, timeout)?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);
    let writer = stream.try_clone()?;
    Ok((writer, std::io::BufReader::new(stream)))
}

/// Tells a deadline expiry ("the server is wedged or slow — see
/// `--timeout`") apart from a genuinely lost connection.
fn report_net_error(doing: &str, what: &str, addr: &str, e: &std::io::Error, timeout_secs: u64) {
    if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
        eprintln!(
            "ltspc: timed out after {timeout_secs}s {doing} {what} \
             (server stalled; see --timeout)"
        );
    } else {
        eprintln!("ltspc: connection to {addr} lost {doing} {what}: {e}");
    }
}

/// `ltspc remote`: ship loop files to a running daemon, print each
/// response's report, map statuses back onto the local exit codes.
fn run_remote(argv: &[String]) -> ExitCode {
    use std::io::{BufRead as _, Write as _};

    let mut addr: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut op = "compile".to_string();
    let mut backend: Option<String> = None;
    let mut mode: Option<String> = None;
    let mut policy = "hlo".to_string();
    let mut trip: f64 = 100.0;
    let mut budget: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut timeout_secs: u64 = 30;
    let mut retries: u32 = 4;
    let mut shutdown = false;
    let mut timings = false;
    let mut check_phases: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--op" => {
                op = match it.next().map(String::as_str) {
                    Some(o @ ("compile" | "verify" | "oracle" | "metrics" | "stats")) => {
                        o.to_string()
                    }
                    _ => usage(),
                }
            }
            "--timings" => timings = true,
            "--check-phases" => {
                check_phases = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--policy" => {
                policy = match it.next().map(String::as_str) {
                    Some(p @ ("baseline" | "l3" | "fpl2" | "hlo")) => p.to_string(),
                    _ => usage(),
                }
            }
            "--backend" => {
                backend = match it.next().map(String::as_str) {
                    Some(b @ ("heuristic" | "exact" | "tiered")) => Some(b.to_string()),
                    _ => usage(),
                }
            }
            "--mode" => {
                mode = match it.next().map(String::as_str) {
                    Some(m @ ("static" | "adaptive")) => Some(m.to_string()),
                    _ => usage(),
                }
            }
            "--adaptive" => mode = Some("adaptive".to_string()),
            "--trip" => {
                trip = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--budget" => {
                budget = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--timeout" => {
                timeout_secs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--retries" => {
                retries = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--shutdown" => shutdown = true,
            flag if flag.starts_with("--") => usage(),
            other if addr.is_none() => addr = Some(other.to_string()),
            other => files.push(other.to_string()),
        }
    }
    let Some(addr) = addr else { usage() };
    if mode.as_deref() == Some("adaptive")
        && !matches!(backend.as_deref(), None | Some("heuristic"))
    {
        eprintln!("ltspc: --mode adaptive refines the heuristic backend only");
        return ExitCode::from(EXIT_USAGE);
    }
    let fileless_op = op == "metrics" || op == "stats";
    if files.is_empty() && !shutdown && !fileless_op {
        usage()
    }
    if fileless_op && !files.is_empty() {
        usage()
    }

    // --timeout 0 disables every deadline (debugging escape hatch).
    let timeout = (timeout_secs > 0).then(|| std::time::Duration::from_secs(timeout_secs));
    // A refused initial connect gets the same retry budget as an
    // overloaded response: a restarting (or respawning) server is a
    // transient, not a verdict.
    let mut connect_attempt: u32 = 0;
    let (mut writer, mut reader) = loop {
        match open_conn(&addr, timeout) {
            Ok(c) => break c,
            Err(e) if is_reconnectable(e.kind()) && connect_attempt < retries => {
                let wait = backoff_delay(connect_attempt);
                connect_attempt += 1;
                eprintln!(
                    "ltspc: cannot connect to {addr} ({e}), retrying in {}ms \
                     (attempt {connect_attempt}/{retries})",
                    wait.as_millis()
                );
                std::thread::sleep(wait);
            }
            Err(e) => {
                eprintln!("ltspc: cannot connect to {addr}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    };
    let esc = ltsp::telemetry::json::escape;
    let mut code = 0u8;
    fn set_code(c: u8, code: &mut u8) {
        if *code == 0 {
            *code = c;
        }
    }

    if fileless_op {
        let req = format!("{{\"op\":\"{op}\",\"id\":\"ltspc-{op}\"}}\n");
        let mut line = String::new();
        if let Err(e) = writer
            .write_all(req.as_bytes())
            .and_then(|()| writer.flush())
            .and_then(|()| reader.read_line(&mut line).map(drop))
        {
            report_net_error("requesting", &op, &addr, &e, timeout_secs);
            return ExitCode::from(EXIT_IO);
        }
        let v = match ltsp::telemetry::json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("ltspc: bad {op} response: {e}");
                return ExitCode::from(EXIT_IO);
            }
        };
        if op == "stats" {
            print!("{line}");
            return ExitCode::SUCCESS;
        }
        let Some(text) = v.get("metrics").and_then(|m| m.as_str()) else {
            eprintln!("ltspc: metrics response carries no \"metrics\" field");
            return ExitCode::from(EXIT_IO);
        };
        print!("{text}");
        if !check_phases.is_empty() {
            let snap = match ltsp::telemetry::prom::PromSnapshot::parse(text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ltspc: metrics snapshot malformed: {e}");
                    return ExitCode::from(EXIT_REJECTED);
                }
            };
            let mut empty: Vec<&str> = Vec::new();
            for phase in &check_phases {
                let n = snap
                    .histogram_count("ltsp_phase_us", &[("phase", phase)])
                    .unwrap_or(0.0);
                if n <= 0.0 {
                    empty.push(phase);
                }
            }
            if !empty.is_empty() {
                eprintln!(
                    "ltspc: phase histograms without samples: {} — \
                     per-phase observability is not wired",
                    empty.join(", ")
                );
                return ExitCode::from(EXIT_REJECTED);
            }
            eprintln!(
                "ltspc: all {} checked phase histograms have samples",
                check_phases.len()
            );
        }
        return ExitCode::SUCCESS;
    }

    'files: for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ltspc: cannot read {file}: {e}");
                set_code(EXIT_IO, &mut code);
                continue;
            }
        };
        let mut req = format!(
            "{{\"op\":\"{}\",\"id\":\"{}\",\"loop\":\"{}\",\"policy\":\"{}\",\"trip\":{}",
            op,
            esc(file),
            esc(&text),
            policy,
            trip
        );
        if let Some(b) = &backend {
            req.push_str(&format!(",\"backend\":\"{b}\""));
        }
        if let Some(m) = &mode {
            req.push_str(&format!(",\"mode\":\"{m}\""));
        }
        if let Some(b) = budget {
            req.push_str(&format!(",\"budget\":{b}"));
        }
        if let Some(d) = deadline_ms {
            req.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        if timings {
            req.push_str(",\"timings\":true");
        }
        req.push_str("}\n");

        let mut attempt: u32 = 0;
        let (v, status) = loop {
            let mut line = String::new();
            let io_err: Option<std::io::Error> = match writer
                .write_all(req.as_bytes())
                .and_then(|()| writer.flush())
                .and_then(|()| reader.read_line(&mut line))
            {
                Ok(0) => Some(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )),
                Ok(_) => None,
                Err(e) => Some(e),
            };
            if let Some(e) = io_err {
                // A dead connection (refused/reset/EOF — the server
                // crashed or is restarting) is retried by reconnecting
                // and re-sending: requests are idempotent (responses
                // are pure functions of requests), so a resend at worst
                // recomputes. Stalls are not retried — see --timeout.
                if is_reconnectable(e.kind()) && attempt < retries {
                    let wait = backoff_delay(attempt);
                    attempt += 1;
                    eprintln!(
                        "ltspc: connection to {addr} lost at {file} ({e}), \
                         reconnecting in {}ms (attempt {attempt}/{retries})",
                        wait.as_millis()
                    );
                    std::thread::sleep(wait);
                    if let Ok((w, r)) = open_conn(&addr, timeout) {
                        writer = w;
                        reader = r;
                    }
                    // A failed reconnect keeps the dead pair: the next
                    // send fails again and consumes the next attempt.
                    continue;
                }
                report_net_error("exchanging", file, &addr, &e, timeout_secs);
                set_code(EXIT_IO, &mut code);
                break 'files;
            }
            let v = match ltsp::telemetry::json::parse(&line) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("ltspc: bad response for {file}: {e}");
                    set_code(EXIT_IO, &mut code);
                    continue 'files;
                }
            };
            let status = v
                .get("status")
                .and_then(|s| s.as_str())
                .unwrap_or("error")
                .to_string();
            // An overloaded server sheds load *now*; the request is
            // worth re-sending after a breather. Capped exponential
            // backoff: 100ms · 2^attempt, at most 2s per wait.
            if status == "overloaded" && attempt < retries {
                let wait = backoff_delay(attempt);
                attempt += 1;
                eprintln!(
                    "ltspc: server overloaded, retrying {file} in {}ms \
                     (attempt {attempt}/{retries})",
                    wait.as_millis()
                );
                std::thread::sleep(wait);
                continue;
            }
            break (v, status);
        };
        let report = v.get("report").and_then(|r| r.as_str()).unwrap_or("");
        match status.as_str() {
            "ok" | "rejected" => {
                print!("{report}");
                if timings {
                    if let Some(t) = v.get("timings") {
                        let mut s = String::new();
                        t.render(&mut s);
                        eprintln!("{file}: timings {s}");
                    }
                }
                if let Some(violations) = v.get("violations").and_then(|x| x.as_array()) {
                    for viol in violations {
                        if let Some(s) = viol.as_str() {
                            eprintln!("{s}");
                        }
                    }
                }
                if status == "rejected" {
                    set_code(EXIT_REJECTED, &mut code);
                }
            }
            "error" => {
                let msg = v
                    .get("error")
                    .and_then(|e| e.as_str())
                    .unwrap_or("unknown error");
                match v.get("error_kind").and_then(|k| k.as_str()) {
                    Some("syntax") => {
                        let errline = v.get("line").and_then(|l| l.as_u64()).unwrap_or(0);
                        eprintln!("{file}:{errline}: {msg}");
                        set_code(EXIT_SYNTAX, &mut code);
                    }
                    Some("invalid") => {
                        eprintln!("{file}: invalid loop: {msg}");
                        set_code(EXIT_INVALID, &mut code);
                    }
                    _ => {
                        eprintln!("ltspc: server error for {file}: {msg}");
                        set_code(EXIT_IO, &mut code);
                    }
                }
            }
            "overloaded" => {
                eprintln!(
                    "ltspc: server overloaded, {file} not compiled \
                     (gave up after {retries} retries)"
                );
                set_code(EXIT_BUSY, &mut code);
            }
            "draining" => {
                // Deliberate shutdown: retrying the same address cannot
                // succeed, so fail fast instead of backing off.
                eprintln!("ltspc: server draining, {file} not compiled");
                set_code(EXIT_BUSY, &mut code);
            }
            other => {
                eprintln!("ltspc: unexpected status '{other}' for {file}");
                set_code(EXIT_IO, &mut code);
            }
        }
    }

    if shutdown && code != EXIT_IO {
        let mut line = String::new();
        let sent = writer
            .write_all(b"{\"op\":\"shutdown\",\"id\":\"ltspc-shutdown\"}\n")
            .and_then(|()| writer.flush());
        if sent.is_err() || reader.read_line(&mut line).map_or(true, |n| n == 0) {
            eprintln!("ltspc: shutdown request to {addr} got no acknowledgment");
            set_code(EXIT_IO, &mut code);
        }
    }
    ExitCode::from(code)
}

/// One `ltspc top` scrape: pull the metrics op, return the parsed
/// snapshot. The connection is re-used across ticks.
fn scrape_metrics(
    writer: &mut std::net::TcpStream,
    reader: &mut std::io::BufReader<std::net::TcpStream>,
) -> Result<ltsp::telemetry::prom::PromSnapshot, String> {
    use std::io::{BufRead as _, Write as _};
    let mut line = String::new();
    writer
        .write_all(b"{\"op\":\"metrics\",\"id\":\"ltspc-top\"}\n")
        .and_then(|()| writer.flush())
        .and_then(|()| reader.read_line(&mut line).map(drop))
        .map_err(|e| e.to_string())?;
    if line.is_empty() {
        return Err("connection closed".to_string());
    }
    let v = ltsp::telemetry::json::parse(&line).map_err(|e| e.to_string())?;
    let text = v
        .get("metrics")
        .and_then(|m| m.as_str())
        .ok_or_else(|| "no \"metrics\" field in response".to_string())?;
    ltsp::telemetry::prom::PromSnapshot::parse(text)
}

/// `ltspc top`: a small live dashboard over the metrics op — request
/// rate, cache hit ratio, queue/inflight/connection gauges, per-phase
/// p50/p99 latency, and the chaos counters. Clears the screen between
/// ticks on a TTY; appends plain blocks when piped.
fn run_top(argv: &[String]) -> ExitCode {
    use std::io::IsTerminal as _;

    let mut addr: Option<String> = None;
    let mut interval_ms: u64 = 1000;
    let mut count: u64 = 0; // 0 = until interrupted
    let mut timeout_secs: u64 = 30;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--count" => {
                count = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--timeout" => {
                timeout_secs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            flag if flag.starts_with("--") => usage(),
            other if addr.is_none() => addr = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let timeout = (timeout_secs > 0).then(|| std::time::Duration::from_secs(timeout_secs));
    let stream = match connect_with_timeout(&addr, timeout) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ltspc: cannot connect to {addr}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("ltspc: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let mut reader = std::io::BufReader::new(stream);

    let tty = std::io::stdout().is_terminal();
    let mut prev_total: Option<f64> = None;
    let mut prev_shard: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut prev_when = std::time::Instant::now();
    let mut tick: u64 = 0;
    loop {
        let snap = match scrape_metrics(&mut writer, &mut reader) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ltspc: top: {e}");
                return ExitCode::from(EXIT_IO);
            }
        };
        let now = std::time::Instant::now();
        let dt = now.duration_since(prev_when).as_secs_f64();
        let statuses = ["ok", "rejected", "error", "overloaded", "draining"];
        // A router's aggregated snapshot carries `ltsp_shard_up` rows;
        // their presence switches the dashboard to cluster mode.
        let mut shard_ids: Vec<u64> = snap
            .samples
            .iter()
            .filter(|s| s.name == "ltsp_shard_up")
            .filter_map(|s| {
                s.labels
                    .iter()
                    .find(|(k, _)| k == "shard")
                    .and_then(|(_, v)| v.parse().ok())
            })
            .collect();
        shard_ids.sort_unstable();
        let shard_value = |sid: u64, name: &str, extra: &[(&str, &str)]| -> f64 {
            let s = sid.to_string();
            let mut labels: Vec<(&str, &str)> = vec![("shard", &s)];
            labels.extend_from_slice(extra);
            snap.value(name, &labels).unwrap_or(0.0)
        };
        let shard_total = |sid: u64| -> f64 {
            statuses
                .iter()
                .map(|st| shard_value(sid, "ltsp_requests_total", &[("status", st)]))
                .sum()
        };
        let total: f64 = if shard_ids.is_empty() {
            statuses
                .iter()
                .filter_map(|s| snap.value("ltsp_requests_total", &[("status", s)]))
                .sum()
        } else {
            shard_ids.iter().map(|&sid| shard_total(sid)).sum()
        };
        let rps = prev_total.map(|p| {
            if dt > 0.0 {
                (total - p).max(0.0) / dt
            } else {
                0.0
            }
        });
        prev_total = Some(total);
        prev_when = now;

        if tty {
            print!("\x1b[2J\x1b[H");
        }
        if !shard_ids.is_empty() {
            println!(
                "ltspr {addr} — {total:.0} requests over {} shard(s)",
                shard_ids.len()
            );
            match rps {
                Some(r) => println!("  rate        {r:8.1} req/s"),
                None => println!("  rate        (first sample)"),
            }
            println!(
                "  router: {:.0} proxied, {:.0} failovers, {:.0} exhausted, {:.0} connections",
                snap.value("ltsp_router_proxied_total", &[]).unwrap_or(0.0),
                snap.value("ltsp_router_failovers_total", &[])
                    .unwrap_or(0.0),
                snap.value("ltsp_router_retries_exhausted_total", &[])
                    .unwrap_or(0.0),
                snap.value("ltsp_router_connections", &[]).unwrap_or(0.0),
            );
            println!(
                "  shard status      rps    hit%   queue  handler_p99us   routed  failed respawns"
            );
            for &sid in &shard_ids {
                let up = shard_value(sid, "ltsp_shard_up", &[]) > 0.0;
                let t = shard_total(sid);
                let srps = match prev_shard.get(&sid) {
                    Some(&p) if dt > 0.0 => format!("{:8.1}", (t - p).max(0.0) / dt),
                    _ => "       -".to_string(),
                };
                prev_shard.insert(sid, t);
                let hits = shard_value(sid, "ltsp_cache_hits_total", &[("cache", "result")]);
                let misses = shard_value(sid, "ltsp_cache_misses_total", &[("cache", "result")]);
                let hit_pct = if hits + misses > 0.0 {
                    format!("{:6.1}", 100.0 * hits / (hits + misses))
                } else {
                    "     -".to_string()
                };
                let queue = shard_value(sid, "ltsp_queue_depth", &[]);
                let s = sid.to_string();
                let p99 = snap
                    .histogram_quantile(
                        "ltsp_phase_us",
                        &[("phase", "handler"), ("shard", &s)],
                        0.99,
                    )
                    .unwrap_or(0.0);
                println!(
                    "  {sid:<5} {:<8} {srps} {hit_pct} {queue:7.0} {p99:14.0} {:8.0} {:7.0} {:8.0}",
                    if up { "up" } else { "down" },
                    shard_value(sid, "ltsp_shard_routed_total", &[]),
                    shard_value(sid, "ltsp_shard_failed_total", &[]),
                    shard_value(sid, "ltsp_shard_respawns_total", &[]),
                );
            }
            tick += 1;
            if count > 0 && tick >= count {
                return ExitCode::SUCCESS;
            }
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            continue;
        }
        println!("ltspd {addr} — {total:.0} requests");
        match rps {
            Some(r) => println!("  rate        {r:8.1} req/s"),
            None => println!("  rate        (first sample)"),
        }
        for s in statuses {
            let v = snap
                .value("ltsp_requests_total", &[("status", s)])
                .unwrap_or(0.0);
            if v > 0.0 || s == "ok" {
                println!("  {s:<11} {v:8.0}");
            }
        }
        for cache in ["compile", "result"] {
            let hits = snap
                .value("ltsp_cache_hits_total", &[("cache", cache)])
                .unwrap_or(0.0);
            let misses = snap
                .value("ltsp_cache_misses_total", &[("cache", cache)])
                .unwrap_or(0.0);
            let ratio = if hits + misses > 0.0 {
                100.0 * hits / (hits + misses)
            } else {
                0.0
            };
            println!("  {cache:<7} cache {hits:8.0} hits {misses:8.0} misses ({ratio:5.1}% hit)");
        }
        for g in ["ltsp_queue_depth", "ltsp_inflight", "ltsp_connections"] {
            let v = snap.value(g, &[]).unwrap_or(0.0);
            println!("  {:<11} {v:8.0}", g.trim_start_matches("ltsp_"));
        }
        println!("  phase            p50us      p99us    samples");
        for phase in [
            "parse",
            "hlo",
            "ddg",
            "mrt",
            "sched",
            "regalloc",
            "render",
            "cache_lookup",
            "queue_wait",
            "dispatch",
            "handler",
            "write",
        ] {
            let labels = [("phase", phase)];
            let n = snap
                .histogram_count("ltsp_phase_us", &labels)
                .unwrap_or(0.0);
            if n <= 0.0 {
                continue;
            }
            let p50 = snap
                .histogram_quantile("ltsp_phase_us", &labels, 0.50)
                .unwrap_or(0.0);
            let p99 = snap
                .histogram_quantile("ltsp_phase_us", &labels, 0.99)
                .unwrap_or(0.0);
            println!("  {phase:<14} {p50:9.0}  {p99:9.0}  {n:9.0}");
        }
        // Tiered serving: refinement-upgrade counters, shown once any
        // upgrade has been scheduled (quiet on heuristic-only servers).
        let upgrades: Vec<String> = ["scheduled", "applied", "refined", "failed"]
            .iter()
            .filter_map(|event| {
                let v = snap
                    .value("ltsp_upgrades_total", &[("event", event)])
                    .unwrap_or(0.0);
                (v > 0.0).then(|| format!("{event}={v:.0}"))
            })
            .chain(
                snap.value("ltsp_persist_superseded_records", &[])
                    .filter(|&v| v > 0.0)
                    .map(|v| format!("superseded={v:.0}")),
            )
            .collect();
        if !upgrades.is_empty() {
            println!("  upgrades: {}", upgrades.join(" "));
        }
        let chaos: Vec<String> = [
            ("shed_conns", "ltsp_connections_shed_total"),
            ("shed_resps", "ltsp_responses_shed_total"),
            ("panics", "ltsp_request_panics_total"),
            ("faults", "ltsp_faults_injected_total"),
            ("disp_deaths", "ltsp_dispatcher_deaths_total"),
        ]
        .iter()
        .filter_map(|(label, name)| {
            let v = snap.value(name, &[]).unwrap_or(0.0);
            (v > 0.0).then(|| format!("{label}={v:.0}"))
        })
        .collect();
        if !chaos.is_empty() {
            println!("  chaos: {}", chaos.join(" "));
        }

        tick += 1;
        if count > 0 && tick >= count {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn main() -> ExitCode {
    // Subcommand dispatch: `ltspc verify <input>` / `ltspc oracle <input>`.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return run_serve(&argv[1..]),
        Some("remote") => return run_remote(&argv[1..]),
        Some("top") => return run_top(&argv[1..]),
        _ => {}
    }
    if let Some(cmd @ ("verify" | "oracle")) = argv.first().map(String::as_str) {
        let mut inputs: Vec<String> = Vec::new();
        let mut budget = OracleOptions::default().node_budget;
        let mut jobs = ltsp::par::default_parallelism();
        let mut it = argv[1..].iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--budget" if cmd == "oracle" => {
                    budget = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage())
                }
                "--jobs" => {
                    let v = it.next().cloned().unwrap_or_default();
                    jobs = ltsp::par::parse_jobs(&v).unwrap_or_else(|e| {
                        eprintln!("ltspc: {e}");
                        std::process::exit(i32::from(EXIT_USAGE));
                    })
                }
                flag if flag.starts_with("--") => usage(),
                other => inputs.push(other.to_string()),
            }
        }
        if inputs.is_empty() {
            usage()
        }
        return if cmd == "verify" {
            run_batch(&inputs, jobs, verify_one)
        } else {
            run_batch(&inputs, jobs, |input| oracle_one(input, budget))
        };
    }

    let o = parse_args();
    let lp = match read_and_parse(&o.input) {
        Ok(lp) => lp,
        Err((msg, code)) => {
            eprintln!("{msg}");
            return ExitCode::from(code);
        }
    };

    let machine = MachineModel::itanium2();
    if o.adaptive {
        // Feedback-directed refinement: compile, simulate, re-compile
        // with observed hints to a bounded fixpoint. The renderer is the
        // one the daemon's refine worker uses, so `ltspc --adaptive` and
        // an upgraded `remote --mode adaptive` entry print the same
        // report byte for byte.
        if o.backend != ltsp::server::Backend::Heuristic {
            eprintln!("ltspc: --adaptive refines the heuristic backend only");
            return ExitCode::from(EXIT_USAGE);
        }
        if o.asm || o.simulate.is_some() {
            eprintln!("ltspc: --asm/--simulate do not combine with --adaptive");
            return ExitCode::from(EXIT_USAGE);
        }
        let cfg = CompileConfig::new(o.policy)
            .with_threshold(o.threshold)
            .with_prefetch(o.prefetch)
            .with_balanced_recurrences(o.balanced)
            .with_data_speculation(o.speculate);
        let tel = if o.verbose {
            Telemetry::enabled_with(true)
        } else {
            Telemetry::disabled()
        };
        let res = ltsp::adaptive::compile_loop_adaptive(
            &lp,
            &machine,
            &cfg,
            o.trip,
            &ltsp::adaptive::AdaptiveOptions::default(),
            &tel,
        );
        print!(
            "{}",
            ltsp::server::render_adaptive_report(&res, o.policy, o.trip)
        );
        return if res.all_certified() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(EXIT_REJECTED)
        };
    }
    if o.backend != ltsp::server::Backend::Heuristic {
        // Locally there is no cache to upgrade in place, so `tiered`
        // degenerates to its refinement tier: the exact backend.
        if o.backend == ltsp::server::Backend::Tiered {
            eprintln!("ltspc: --backend tiered is served by the exact backend locally");
        }
        if o.asm || o.simulate.is_some() {
            eprintln!("ltspc: --asm/--simulate apply to the heuristic backend only");
            return ExitCode::from(EXIT_USAGE);
        }
        let opts = OracleOptions {
            node_budget: o.budget,
            ..OracleOptions::default()
        };
        return match ltsp::oracle::exact_case(&lp, &machine, &opts) {
            Ok(case) => {
                print!("{}", ltsp::server::render_exact_report(&lp, &case));
                ExitCode::SUCCESS
            }
            Err(violations) => {
                for v in &violations {
                    eprintln!("{}: violation [{}]: {v}", lp.name(), v.kind());
                }
                ExitCode::from(EXIT_REJECTED)
            }
        };
    }
    let cfg = CompileConfig::new(o.policy)
        .with_threshold(o.threshold)
        .with_prefetch(o.prefetch)
        .with_balanced_recurrences(o.balanced)
        .with_data_speculation(o.speculate);
    let want_telemetry =
        o.trace_out.is_some() || o.metrics_out.is_some() || o.chrome_trace.is_some() || o.verbose;
    let tel = if want_telemetry {
        Telemetry::enabled_with(o.verbose)
    } else {
        Telemetry::disabled()
    };
    let compiled = compile_loop_with_profile_traced(&lp, &machine, &cfg, o.trip, &tel);

    // The canonical report — the exact same renderer backs `ltspd`'s
    // compile responses, so remote and local output are byte-identical.
    print!(
        "{}",
        ltsp::server::render_compile_report(&compiled, o.policy, o.trip)
    );

    if o.asm {
        println!();
        match assign_registers(&compiled.lp, &compiled.kernel, &machine) {
            Ok(assign) => print!("{}", emit_kernel(&compiled.lp, &compiled.kernel, &assign)),
            Err(e) => eprintln!("ltspc: register assignment failed: {e}"),
        }
        let bundled = form_bundles(&compiled.lp, &compiled.kernel);
        println!(
            "bundles: {} ({} bytes of code, {} nop slots)",
            bundled.bundle_count(),
            bundled.code_bytes(),
            bundled.nop_slots()
        );
    }

    if let Some(iters) = o.simulate {
        let mut ex = Executor::new(
            &compiled.lp,
            &compiled.kernel,
            &machine,
            compiled.regs_total,
            ExecutorConfig {
                stream_mode: StreamMode::Progressive,
                ..ExecutorConfig::default()
            },
        );
        ex.attach_telemetry(&tel);
        {
            let _span = tel.span(format!("simulate:{}", compiled.lp.name()));
            ex.run_entry(iters.max(1));
        }
        ex.export_metrics("sim");
        let c = ex.counters();
        println!(
            "\nsimulated {iters} iterations: {} cycles ({:.2}/iter), \
             data stalls {:.1}%, OzQ stalls {:.1}%, loads L1/L2/L3/mem = {}/{}/{}/{}",
            c.total,
            c.total as f64 / iters.max(1) as f64,
            100.0 * c.be_exe_bubble as f64 / c.total.max(1) as f64,
            100.0 * c.be_l1d_fpu_bubble as f64 / c.total.max(1) as f64,
            c.l1_hits,
            c.l2_hits,
            c.l3_hits,
            c.mem_loads,
        );
    }

    let mut ok = true;
    let mut write_artifact =
        |path: &Option<String>,
         what: &str,
         f: &dyn Fn(&mut dyn std::io::Write) -> std::io::Result<()>| {
            let Some(path) = path else { return };
            let res = std::fs::File::create(path)
                .map(std::io::BufWriter::new)
                .and_then(|mut w| f(&mut w));
            if let Err(e) = res {
                eprintln!("ltspc: cannot write {what} {path}: {e}");
                ok = false;
            }
        };
    write_artifact(&o.trace_out, "trace", &|w| tel.write_events_jsonl(w));
    write_artifact(&o.metrics_out, "metrics", &|w| tel.write_metrics_json(w));
    write_artifact(&o.chrome_trace, "chrome trace", &|w| {
        tel.write_chrome_trace(w)
    });
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_pinned() {
        // The documented schedule: 100ms · 2^attempt, capped at 2s.
        let ms: Vec<u64> = (0..8)
            .map(|a| backoff_delay(a).as_millis() as u64)
            .collect();
        assert_eq!(ms, vec![100, 200, 400, 800, 1600, 2000, 2000, 2000]);
    }

    #[test]
    fn reconnectable_errors_are_dead_connections_not_stalls() {
        use std::io::ErrorKind as K;
        for k in [
            K::ConnectionRefused,
            K::ConnectionReset,
            K::ConnectionAborted,
            K::BrokenPipe,
            K::NotConnected,
            K::UnexpectedEof,
        ] {
            assert!(is_reconnectable(k), "{k:?} must reconnect");
        }
        for k in [K::WouldBlock, K::TimedOut, K::PermissionDenied, K::Other] {
            assert!(!is_reconnectable(k), "{k:?} must not reconnect");
        }
    }
}
