//! Integration tests of the textual IR format across the whole stack:
//! every workload kernel survives a display/parse round trip, and the
//! reparsed loop compiles to an identical kernel.

use ltsp::core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp::ir::{parse_loop, DataClass, LoopIr};
use ltsp::machine::MachineModel;
use ltsp::workloads::{
    compute_heavy, gather_update, hash_walk, mcf_refresh, memory_recurrence, motion_search,
    pointer_array_walk, reduction_int, saxpy, stencil3, stream_sum, symbolic_walk, texture_span,
    triad,
};

fn kernel_library() -> Vec<LoopIr> {
    vec![
        stream_sum("stream-fp", DataClass::Fp, 8),
        stream_sum("stream-int", DataClass::Int, 256),
        saxpy("saxpy"),
        triad("triad"),
        stencil3("stencil3"),
        gather_update("gather-fp", DataClass::Fp, 1 << 24),
        gather_update("gather-int", DataClass::Int, 1 << 22),
        mcf_refresh("mcf", 1 << 25),
        motion_search("motion"),
        texture_span("texture"),
        hash_walk("hash", 1 << 17),
        symbolic_walk("symbolic", 4096),
        pointer_array_walk("ptrs", 1 << 24),
        compute_heavy("compute"),
        reduction_int("scan", 4),
        memory_recurrence("iir"),
    ]
}

#[test]
fn every_kernel_round_trips_textually() {
    for lp in kernel_library() {
        let text = lp.to_string();
        let reparsed = parse_loop(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}\n{text}", lp.name()));
        assert_eq!(lp, reparsed, "{} round trip", lp.name());
    }
}

#[test]
fn reparsed_loops_compile_identically() {
    let m = MachineModel::itanium2();
    let cfg = CompileConfig::new(LatencyPolicy::HloHints);
    for lp in kernel_library() {
        let reparsed = parse_loop(&lp.to_string()).expect("round trip");
        let a = compile_loop_with_profile(&lp, &m, &cfg, 500.0);
        let b = compile_loop_with_profile(&reparsed, &m, &cfg, 500.0);
        assert_eq!(
            a.kernel,
            b.kernel,
            "{}: kernels diverge after text round trip",
            lp.name()
        );
        assert_eq!(a.regs_total, b.regs_total);
    }
}

#[test]
fn post_hlo_loops_round_trip_too() {
    // The HLO mutates the loop (prefetch instructions, hints); the textual
    // format must carry those annotations as well.
    let m = MachineModel::itanium2();
    let cfg = CompileConfig::new(LatencyPolicy::HloHints);
    for lp in kernel_library() {
        let compiled = compile_loop_with_profile(&lp, &m, &cfg, 500.0);
        let text = compiled.lp.to_string();
        let reparsed = parse_loop(&text)
            .unwrap_or_else(|e| panic!("{}: post-HLO parse failed: {e}\n{text}", lp.name()));
        assert_eq!(compiled.lp, reparsed, "{} post-HLO round trip", lp.name());
    }
}
