//! The tiered backend's upgrade-path guarantees, end to end: concurrent
//! requests observe heuristic bytes or exact bytes — never a torn mix —
//! the upgraded bytes are byte-identical across `--jobs`, and a warm
//! restart replays the upgraded entry (last-writer-wins) instead of
//! resurrecting the heuristic body.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use ltsp::server::{spawn, Engine, EngineConfig, ServerConfig, ServerHandle};
use ltsp::telemetry::{json, Telemetry};
use ltsp::workloads::saxpy;

fn start(jobs: usize, engine: EngineConfig) -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        engine,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let writer = TcpStream::connect(handle.addr()).expect("connect");
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { writer, reader }
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
        let mut out = String::new();
        self.reader.read_line(&mut out).expect("read response");
        out
    }
}

fn tiered_request(id: &str, loop_text: &str) -> String {
    format!(
        "{{\"op\":\"compile\",\"id\":\"{id}\",\"loop\":\"{}\",\"backend\":\"tiered\"}}",
        json::escape(loop_text)
    )
}

/// The response body after the envelope (`id`/`status`/`cache` fields),
/// so bodies compare across differing ids and cache tags.
fn body_after_cache(line: &str) -> &str {
    let cache = line.find("\"cache\":\"").expect("cache field");
    let rest = &line[cache + 9..];
    let end = rest.find('"').expect("cache tag closes");
    &rest[end + 1..]
}

/// Engine-level race: four threads hammer the same tiered request while
/// the refinement worker upgrades the entry underneath them. Every
/// response must be exactly the heuristic bytes or exactly the exact
/// bytes — a torn body (upgrade observed mid-swap) fails loudly.
#[test]
fn concurrent_tiered_requests_never_observe_torn_bytes() {
    let e = Arc::new(Engine::new(EngineConfig::default()));
    let tel = Telemetry::disabled();
    let line = tiered_request("race", &saxpy("s").to_string());
    let req = ltsp::server::parse_request(&line).unwrap();

    let initial = e.handle(&req, &tel);
    assert_eq!(initial.status, "ok");
    let heuristic_body = initial.body.clone();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let e = Arc::clone(&e);
            let req = req.clone();
            std::thread::spawn(move || {
                let tel = Telemetry::disabled();
                let mut bodies = Vec::new();
                for _ in 0..200 {
                    bodies.push(e.handle(&req, &tel).body);
                }
                bodies
            })
        })
        .collect();
    e.refine_wait_idle();
    let exact_body = e.handle(&req, &tel).body;
    assert_ne!(exact_body, heuristic_body, "the upgrade really landed");
    for w in workers {
        for body in w.join().unwrap() {
            assert!(
                body == heuristic_body || body == exact_body,
                "torn or foreign body observed:\n{body}"
            );
        }
    }
}

/// Over TCP at `--jobs` 1 and 4: every response is one of the two
/// canonical bodies, and the post-upgrade (quiesced) bytes are
/// byte-identical across worker counts.
#[test]
fn tiered_upgrade_bytes_are_jobs_invariant() {
    let run = |jobs: usize| -> (String, String, String) {
        let handle = start(jobs, EngineConfig::default());
        let mut c = Client::connect(&handle);
        let text = saxpy("s").to_string();
        let line = tiered_request("t", &text);
        let cold = c.round_trip(&line);
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        let heuristic = body_after_cache(&cold).to_string();
        let exact_line = format!(
            "{{\"op\":\"compile\",\"id\":\"t\",\"loop\":\"{}\",\"backend\":\"exact\"}}",
            json::escape(&text)
        );
        let exact = body_after_cache(&c.round_trip(&exact_line)).to_string();
        let mut upgraded = None;
        for _ in 0..500 {
            let resp = c.round_trip(&line);
            let body = body_after_cache(&resp);
            assert!(
                body == heuristic || body == exact,
                "torn body over the wire:\n{resp}"
            );
            if resp.contains("\"cache\":\"upgraded\"") {
                assert_eq!(body, exact, "upgraded bytes are the exact bytes");
                upgraded = Some(body.to_string());
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.shutdown();
        (
            heuristic,
            exact,
            upgraded.expect("refinement landed within the polling window"),
        )
    };
    let (h1, e1, u1) = run(1);
    let (h4, e4, u4) = run(4);
    assert_eq!(h1, h4, "heuristic bytes depend on --jobs");
    assert_eq!(e1, e4, "exact bytes depend on --jobs");
    assert_eq!(u1, u4, "upgraded bytes depend on --jobs");
}

/// The second append wins across a restart: after an upgrade, a fresh
/// daemon on the same persistence log serves the exact bytes as a plain
/// warm hit.
#[test]
fn post_upgrade_warm_restart_serves_upgraded_bytes() {
    let dir = std::env::temp_dir().join(format!("ltsp-tiered-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.log");
    let _ = std::fs::remove_file(&path);
    let engine_cfg = || EngineConfig {
        persist_path: Some(path.clone()),
        ..EngineConfig::default()
    };
    let line = tiered_request("t", &saxpy("s").to_string());

    let upgraded = {
        let handle = start(2, engine_cfg());
        let mut c = Client::connect(&handle);
        let cold = c.round_trip(&line);
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        let mut upgraded = None;
        for _ in 0..500 {
            let resp = c.round_trip(&line);
            if resp.contains("\"cache\":\"upgraded\"") {
                upgraded = Some(body_after_cache(&resp).to_string());
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.shutdown();
        upgraded.expect("refinement landed within the polling window")
    };

    let handle = start(2, engine_cfg());
    let mut c = Client::connect(&handle);
    let replayed = c.round_trip(&line);
    assert!(
        replayed.contains("\"cache\":\"hit\""),
        "replayed entry serves warm: {replayed}"
    );
    assert_eq!(
        body_after_cache(&replayed),
        upgraded,
        "warm restart resurrected superseded bytes"
    );
    handle.shutdown();
}
