//! Tier-1 oracle coverage: the committed `.loop` corpus must certify
//! under the independent validator, and the exact oracle must resolve
//! the minimal II for (almost) all of it.

use ltsp::machine::MachineModel;
use ltsp::oracle::{differential_case, differential_fuzz, OracleOptions};
use ltsp::telemetry::Telemetry;

fn corpus() -> Vec<ltsp::ir::LoopIr> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("loops");
    let mut loops: Vec<_> = std::fs::read_dir(&dir)
        .expect("loops/ corpus exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "loop"))
        .map(|e| {
            let text = std::fs::read_to_string(e.path()).expect("readable");
            ltsp::ir::parse_loop(&text)
                .unwrap_or_else(|err| panic!("{}: {err}", e.path().display()))
        })
        .collect();
    loops.sort_by(|a, b| a.name().cmp(b.name()));
    loops
}

#[test]
fn validator_certifies_every_corpus_schedule() {
    let m = MachineModel::itanium2();
    let loops = corpus();
    assert!(loops.len() >= 17, "corpus should cover the kernel library");
    for lp in &loops {
        let r = differential_case(lp, &m, &OracleOptions::default(), &Telemetry::disabled());
        assert!(
            r.violations.is_empty(),
            "{}: validator rejected the heuristic schedule: {:?}",
            lp.name(),
            r.violations
        );
    }
}

#[test]
fn oracle_resolves_most_of_the_corpus_exactly() {
    let m = MachineModel::itanium2();
    let loops = corpus();
    let tel = Telemetry::enabled();
    let mut exact = 0usize;
    for lp in &loops {
        let r = differential_case(lp, &m, &OracleOptions::default(), &tel);
        assert!(r.sound(), "{}: {:?}", lp.name(), r.verdict);
        if r.gap().is_some() {
            exact += 1;
        }
    }
    assert!(
        exact >= 12,
        "oracle proved only {exact}/{} corpus loops exactly",
        loops.len()
    );
    // Every case leaves an oracle_verdict decision event in the trace.
    let verdicts = tel
        .events()
        .iter()
        .filter(|e| e.event.kind() == "oracle_verdict")
        .count();
    assert_eq!(verdicts, loops.len());
}

#[test]
fn quick_differential_fuzz_is_clean() {
    let m = MachineModel::itanium2();
    let opts = OracleOptions {
        node_budget: 10_000,
        ..OracleOptions::default()
    };
    let s = differential_fuzz(100, 30, &m, &opts, &Telemetry::disabled(), 2);
    assert_eq!(s.rejected, 0);
    assert_eq!(s.unsound, 0);
}
