//! Chaos tests: `ltspd` under deterministic fault injection.
//!
//! The contract under test (DESIGN.md §13): with injected handler
//! panics, handler delays, torn writes, and connection drops, the
//! daemon never dies and never wedges — faulted requests get a
//! contained outcome (an `error` response or a closed connection), and
//! every **non-faulted** request's response stays byte-identical to a
//! fault-free run, at any `--jobs`. Fault decisions are pure functions
//! of `(seed, site, request id)` ([`FaultPlan::fires`]), so the tests
//! compute the expected faulted set up front.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ltsp::server::{spawn, FaultPlan, FaultSite, ServerConfig, ServerHandle};
use ltsp::telemetry::json;
use ltsp::workloads::random_loop;

fn start_with(jobs: usize, fault: FaultPlan) -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        fault,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// The request corpus every chaos test uses: explicit ids so the
/// expected fault set is computable, a *unique* loop per request so no
/// response's cache tag depends on whether an earlier request (possibly
/// a panicked one) populated a shared cache entry, and `deadline_ms:0`
/// so responses stay deterministic.
fn corpus(n: usize) -> Vec<(String, String)> {
    (0..n)
        .map(|i| {
            let id = format!("chaos-{i}");
            let op = if i % 3 == 2 { "verify" } else { "compile" };
            let line = format!(
                "{{\"op\":\"{op}\",\"id\":\"{id}\",\"loop\":\"{}\",\"deadline_ms\":0}}",
                json::escape(&random_loop(i as u64).to_string())
            );
            (id, line)
        })
        .collect()
}

/// Round-trips one request on its own connection; `None` means the
/// server closed the connection without answering (an injected drop).
fn lone_round_trip(handle: &ServerHandle, line: &str) -> Option<String> {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut resp = String::new();
    match BufReader::new(stream).read_line(&mut resp) {
        Ok(0) => None,
        Ok(_) => Some(resp),
        Err(e) => panic!("read wedged or failed under faults: {e}"),
    }
}

/// Fault-free golden responses for a corpus, keyed by request id.
fn golden(corpus: &[(String, String)]) -> Vec<String> {
    let handle = start_with(2, FaultPlan::default());
    let out = corpus
        .iter()
        .map(|(id, line)| lone_round_trip(&handle, line).unwrap_or_else(|| panic!("{id}: EOF")))
        .collect();
    handle.shutdown();
    out
}

/// The chaos matrix: jobs 1 and 4 × fault specs mixing panics, delays,
/// drops, and torn writes. Every faulted request has a contained,
/// *predicted* outcome; every non-faulted response byte-matches the
/// fault-free golden.
#[test]
fn non_faulted_responses_match_the_fault_free_golden() {
    let corpus = corpus(24);
    let golden = golden(&corpus);
    for spec in [
        "panic:0.3,seed:7",
        "drop:0.3,seed:7",
        "short:1.0",
        "panic:0.2,slow:5ms@0.2,drop:0.2,short:0.3,seed:3",
    ] {
        let plan = FaultPlan::parse(spec).expect("valid spec");
        for jobs in [1, 4] {
            let handle = start_with(jobs, plan.clone());
            for ((id, line), want) in corpus.iter().zip(&golden) {
                let got = lone_round_trip(&handle, line);
                if plan.fires(FaultSite::Drop, id) {
                    assert_eq!(
                        got, None,
                        "{spec}/jobs={jobs}: {id} should be dropped before the response"
                    );
                } else if plan.fires(FaultSite::Panic, id) {
                    let got = got.unwrap_or_else(|| panic!("{spec}: {id}: unexpected EOF"));
                    assert!(
                        got.contains("\"status\":\"error\"") && got.contains("panicked"),
                        "{spec}/jobs={jobs}: {id}: contained panic expected, got {got}"
                    );
                    assert!(got.contains(&format!("\"id\":\"{id}\"")), "{got}");
                } else {
                    // Not faulted (a torn write re-assembles to the same
                    // bytes; a slow handler changes nothing).
                    let got = got.unwrap_or_else(|| panic!("{spec}: {id}: unexpected EOF"));
                    assert_eq!(
                        &got, want,
                        "{spec}/jobs={jobs}: {id}: non-faulted response must be \
                         byte-identical to the fault-free run"
                    );
                }
            }
            handle.shutdown();
        }
    }
}

/// Pipelined chaos determinism: with panics, delays, and torn writes
/// active (no drops), the full response stream — contained panics
/// included — is byte-identical at jobs 1 and 4.
#[test]
fn chaos_response_stream_is_byte_identical_across_jobs() {
    let corpus = corpus(24);
    let plan = FaultPlan::parse("panic:0.25,slow:2ms@0.25,short:0.4,seed:5").expect("valid spec");
    assert!(
        corpus
            .iter()
            .any(|(id, _)| plan.fires(FaultSite::Panic, id)),
        "spec too weak: no panic fires on this corpus"
    );
    let run = |jobs: usize| {
        let handle = start_with(jobs, plan.clone());
        let writer = TcpStream::connect(handle.addr()).expect("connect");
        writer.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(writer.try_clone().expect("clone"));
        let mut writer = writer;
        // Pipeline everything so multi-request batches actually form.
        for (_, line) in &corpus {
            writer.write_all(line.as_bytes()).expect("send");
            writer.write_all(b"\n").expect("send newline");
        }
        let out: String = (0..corpus.len())
            .map(|_| {
                let mut l = String::new();
                reader.read_line(&mut l).expect("read");
                assert!(!l.is_empty(), "EOF mid-stream without drop faults");
                l
            })
            .collect();
        handle.shutdown();
        out
    };
    assert_eq!(run(1), run(4), "chaos response bytes depend on --jobs");
}

/// The stalled-reader regression: a client that never reads must shed
/// its *own* responses, not head-of-line-block the dispatcher. While a
/// non-reading connection floods requests, another connection's round
/// trips must complete promptly, and drain must still finish.
#[test]
fn stalled_reader_does_not_delay_other_connections() {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        outbound_max: 4,
        write_deadline: Duration::from_millis(250),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");

    // The stalled client: floods requests, never reads a byte.
    let mut stalled = TcpStream::connect(handle.addr()).expect("connect stalled");
    for i in 0..64 {
        let line = format!(
            "{{\"op\":\"compile\",\"id\":\"stall-{i}\",\"loop\":\"{}\"}}\n",
            json::escape(&random_loop(i % 4).to_string())
        );
        stalled.write_all(line.as_bytes()).expect("flood");
    }
    stalled.flush().expect("flush flood");

    // The well-behaved client: every round trip must complete while the
    // flood is pending; generous bound, but far below any "waits behind
    // 64 stalled responses" schedule.
    let mut live = TcpStream::connect(handle.addr()).expect("connect live");
    live.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut reader = BufReader::new(live.try_clone().expect("clone"));
    let t0 = Instant::now();
    for i in 0..8 {
        let line = format!(
            "{{\"op\":\"compile\",\"id\":\"live-{i}\",\"loop\":\"{}\"}}\n",
            json::escape(&random_loop(0).to_string())
        );
        live.write_all(line.as_bytes()).expect("send live");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("live response");
        assert!(
            resp.contains("\"status\":\"ok\"") || resp.contains("\"status\":\"overloaded\""),
            "live connection starved: {resp}"
        );
    }
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "live round trips took {:?} behind a stalled reader",
        t0.elapsed()
    );
    drop(stalled);
    // Bounded drain: shutdown() joining promptly (the test not hanging)
    // is the assertion.
    handle.shutdown();
}

/// Dispatcher death is loud and drains, never a silent wedge: with the
/// `dispatch` fault certain to fire, the in-flight request is answered
/// `error` (not abandoned), the daemon drains, and the listener closes.
#[test]
fn dispatcher_death_answers_queued_work_and_drains() {
    let handle = start_with(2, FaultPlan::parse("dispatch:1.0").expect("valid spec"));
    let addr = handle.addr();
    let resp = lone_round_trip(
        &handle,
        &format!(
            "{{\"op\":\"compile\",\"id\":\"doomed\",\"loop\":\"{}\"}}",
            json::escape(&random_loop(0).to_string())
        ),
    )
    .expect("queued request must be answered, not dropped");
    assert!(
        resp.contains("\"status\":\"error\"") && resp.contains("dispatcher died"),
        "expected a dispatcher-died error, got {resp}"
    );
    assert!(resp.contains("\"id\":\"doomed\""), "{resp}");
    handle.wait();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener should be closed after the dispatcher-died drain"
    );
}

/// The flight recorder under panic faults: every contained panic dumps
/// the ring to `flight_dir`, the dump is parseable JSONL, it names the
/// faulted request with its full phase breakdown, and — after scrubbing
/// wall-clock fields — the jobs=1 and jobs=4 dumps are byte-identical.
#[test]
fn flight_recorder_dumps_faulted_lifecycles_deterministically() {
    use ltsp::server::{normalize_flight_dump, read_dumps};

    let corpus = corpus(12);
    let plan = FaultPlan::parse("panic:0.3,seed:7").expect("valid spec");
    let faulted: Vec<&str> = corpus
        .iter()
        .filter(|(id, _)| plan.fires(FaultSite::Panic, id))
        .map(|(id, _)| id.as_str())
        .collect();
    assert!(!faulted.is_empty(), "spec too weak: no panic fires");

    let run = |jobs: usize| -> Vec<(String, String)> {
        let dir =
            std::env::temp_dir().join(format!("ltsp-flight-test-{}-j{jobs}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create flight dir");
        let mut cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs,
            fault: plan.clone(),
            ..ServerConfig::default()
        };
        cfg.engine.flight_dir = Some(dir.clone());
        let handle = spawn(cfg).expect("bind ephemeral port");
        // Sequential lone round trips: the ring order (and so the dump
        // bytes) must not depend on worker interleaving.
        for (_, line) in &corpus {
            let _ = lone_round_trip(&handle, line);
        }
        handle.shutdown();
        let dumps = read_dumps(&dir).expect("read flight dumps");
        let _ = std::fs::remove_dir_all(&dir);
        dumps
    };

    let (d1, d4) = (run(1), run(4));
    assert_eq!(
        d1.len(),
        faulted.len(),
        "one dump per contained panic, got {:?}",
        d1.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
    );
    for (name, _) in &d1 {
        assert!(name.contains("request-panic"), "unexpected dump {name}");
    }

    // The final dump's ring holds every faulted lifecycle: parseable
    // JSONL, faulted id present, all-phase timing object attached.
    let last = &d1.last().expect("at least one dump").1;
    let records: Vec<json::JsonValue> = last
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("unparseable flight line {l}: {e}")))
        .collect();
    for id in &faulted {
        let rec = records
            .iter()
            .find(|r| r.get("id").and_then(|v| v.as_str()) == Some(id))
            .unwrap_or_else(|| panic!("faulted {id} missing from flight dump"));
        assert_eq!(
            rec.get("status").and_then(|v| v.as_str()),
            Some("error"),
            "faulted {id} should be recorded as a contained error"
        );
        let phases = rec
            .get("phases")
            .unwrap_or_else(|| panic!("{id}: no phase breakdown in flight record"));
        for key in ["parse_us", "queue_wait_us", "dispatch_us", "handler_us"] {
            assert!(
                phases.get(key).and_then(|v| v.as_u64()).is_some(),
                "{id}: flight record phases missing {key}"
            );
        }
    }

    // Determinism across --jobs once wall-clock micros are scrubbed.
    let scrub = |dumps: &[(String, String)]| -> Vec<(String, String)> {
        dumps
            .iter()
            .map(|(n, c)| (n.clone(), normalize_flight_dump(c)))
            .collect()
    };
    assert_eq!(
        scrub(&d1),
        scrub(&d4),
        "scrubbed flight dumps depend on --jobs"
    );
}

/// A connection the server kills (stalled past the write deadline) ends
/// in EOF for the client, and the daemon survives to serve others.
#[test]
fn write_deadline_sheds_only_the_stalled_connection() {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        outbound_max: 2,
        write_deadline: Duration::from_millis(100),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");

    let mut stalled = TcpStream::connect(handle.addr()).expect("connect");
    // Shrink the client's receive window so the server's socket buffer
    // actually fills and the write deadline trips.
    let _ = stalled.set_read_timeout(Some(Duration::from_secs(30)));
    for i in 0..128 {
        let line = format!(
            "{{\"op\":\"compile\",\"id\":\"s-{i}\",\"loop\":\"{}\"}}\n",
            json::escape(&random_loop(i % 8).to_string())
        );
        if stalled.write_all(line.as_bytes()).is_err() {
            break; // server already shed us — that's the mechanism working
        }
    }
    // Either the kernel buffered everything (responses shed via the
    // outbound cap) or the server killed the connection; both contained.
    // A healthy connection still gets served afterwards.
    let mut live = TcpStream::connect(handle.addr()).expect("connect live");
    live.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let line = format!(
        "{{\"op\":\"compile\",\"id\":\"after\",\"loop\":\"{}\"}}\n",
        json::escape(&random_loop(1).to_string())
    );
    live.write_all(line.as_bytes()).expect("send");
    let mut resp = String::new();
    BufReader::new(live).read_line(&mut resp).expect("read");
    assert!(resp.contains("\"status\":\"ok\""), "{resp}");
    // The stalled connection must resolve to EOF/reset, not a hang.
    drop(stalled.shutdown(std::net::Shutdown::Write));
    let mut sink = Vec::new();
    let _ = stalled.read_to_end(&mut sink); // bounded by the read timeout
    handle.shutdown();
}
