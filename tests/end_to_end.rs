//! End-to-end integration tests across all crates: IR → HLO → pipeliner →
//! simulator, checking the paper's structural claims.

use ltsp::core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp::ir::{DataClass, LoopBuilder, LoopIr};
use ltsp::machine::MachineModel;
use ltsp::memsim::{CycleCounters, Executor, ExecutorConfig, StreamMode};
use ltsp::workloads::{
    gather_update, mcf_refresh, saxpy, stencil3, stream_sum, symbolic_walk, triad,
};

fn machine() -> MachineModel {
    MachineModel::itanium2()
}

fn run(compiled: &ltsp::core::CompiledLoop, m: &MachineModel, trip: u64) -> CycleCounters {
    let mut ex = Executor::new(
        &compiled.lp,
        &compiled.kernel,
        m,
        compiled.regs_total,
        ExecutorConfig {
            stream_mode: StreamMode::Progressive,
            ..ExecutorConfig::default()
        },
    );
    ex.run_entry(trip);
    *ex.counters()
}

/// The paper's running example: ld/add/st pipelines at II = 1 with three
/// stages (Figs. 1-3); scheduling the load for a higher latency keeps the
/// II and adds latency-buffer stages (Fig. 4).
#[test]
fn running_example_matches_figures_2_through_4() {
    let m = machine();
    let mut b = LoopBuilder::new("fig1");
    let src = b.affine_ref("src", DataClass::Int, 0x1000, 4, 4);
    let dst = b.affine_ref("dst", DataClass::Int, 0x80_0000, 4, 4);
    let r9 = b.live_in_gr("r9");
    let v = b.load(src);
    let s = b.add(v, r9);
    b.store(dst, s);
    let lp = b.build().unwrap();

    let base_cfg = CompileConfig::new(LatencyPolicy::Baseline).with_prefetch(false);
    let base = compile_loop_with_profile(&lp, &m, &base_cfg, 1000.0);
    assert!(base.pipelined);
    assert_eq!(base.kernel.ii(), 1, "Fig. 3: single-cycle kernel");
    assert_eq!(base.kernel.stage_count(), 3, "Fig. 2: three stages");

    let boost_cfg = CompileConfig::new(LatencyPolicy::AllLoadsL3)
        .with_threshold(0)
        .with_prefetch(false);
    let boost = compile_loop_with_profile(&lp, &m, &boost_cfg, 1000.0);
    assert_eq!(boost.kernel.ii(), 1, "the II must not change");
    // Scheduled for the typical L3 latency (21): stages = 21 + 2.
    assert_eq!(
        boost.kernel.stage_count(),
        23,
        "latency-buffer stages added"
    );
}

/// Non-critical boosting must never raise the II across the whole kernel
/// library, and must never shrink stage counts or register usage.
#[test]
fn boosting_preserves_ii_across_kernel_library() {
    let m = machine();
    let kernels: Vec<(&str, LoopIr)> = vec![
        ("stream", stream_sum("s", DataClass::Fp, 8)),
        ("saxpy", saxpy("s")),
        ("triad", triad("t")),
        ("stencil3", stencil3("st")),
        ("gather", gather_update("g", DataClass::Fp, 1 << 24)),
        ("symbolic", symbolic_walk("sy", 4096)),
        ("mcf", mcf_refresh("m", 1 << 25)),
    ];
    for (name, lp) in kernels {
        let base = compile_loop_with_profile(
            &lp,
            &m,
            &CompileConfig::new(LatencyPolicy::Baseline),
            1000.0,
        );
        let boost = compile_loop_with_profile(
            &lp,
            &m,
            &CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(0),
            1000.0,
        );
        assert!(base.pipelined && boost.pipelined, "{name} must pipeline");
        assert_eq!(
            base.kernel.ii(),
            boost.kernel.ii(),
            "{name}: II changed under boosting"
        );
        assert!(
            boost.kernel.stage_count() >= base.kernel.stage_count(),
            "{name}: stages may only grow"
        );
        assert!(
            boost.regs_total >= base.regs_total,
            "{name}: register usage may only grow"
        );
    }
}

/// The executed schedule respects the II lower bound: a loop can never run
/// faster than II cycles per kernel iteration.
#[test]
fn simulation_respects_ii_lower_bound() {
    let m = machine();
    for lp in [saxpy("s"), triad("t"), stencil3("st")] {
        let c = compile_loop_with_profile(
            &lp,
            &m,
            &CompileConfig::new(LatencyPolicy::HloHints),
            5000.0,
        );
        let counters = run(&c, &m, 5000);
        let min_cycles = counters.kernel_iters * u64::from(c.kernel.ii());
        assert!(
            counters.total >= min_cycles,
            "{}: {} cycles below II bound {}",
            lp.name(),
            counters.total,
            min_cycles
        );
        assert!(counters.is_consistent());
    }
}

/// Cache-missing loops gain from boosting; the same loop with a warm
/// working set loses at low trip counts — the central tradeoff.
#[test]
fn gain_and_regression_both_reproduce() {
    let m = machine();
    let lp = stream_sum("s", DataClass::Int, 256); // misses every iteration
    let base_cfg = CompileConfig::new(LatencyPolicy::Baseline);
    let boost_cfg = CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(0);

    let base = compile_loop_with_profile(&lp, &m, &base_cfg, 3000.0);
    let boost = compile_loop_with_profile(&lp, &m, &boost_cfg, 3000.0);
    let cb = run(&base, &m, 3000);
    let cx = run(&boost, &m, 3000);
    assert!(
        cx.total < cb.total,
        "missing loads: boost must win ({} vs {})",
        cx.total,
        cb.total
    );

    // Warm low-trip variant.
    let lp_warm = stream_sum("w", DataClass::Int, 4);
    let base_w = compile_loop_with_profile(&lp_warm, &m, &base_cfg, 4.0);
    let boost_w = compile_loop_with_profile(&lp_warm, &m, &boost_cfg, 4.0);
    let warm_cfg = ExecutorConfig {
        stream_mode: StreamMode::Restart,
        ..ExecutorConfig::default()
    };
    let mut eb = Executor::new(&base_w.lp, &base_w.kernel, &m, base_w.regs_total, warm_cfg);
    let mut ex = Executor::new(
        &boost_w.lp,
        &boost_w.kernel,
        &m,
        boost_w.regs_total,
        warm_cfg,
    );
    for _ in 0..300 {
        eb.run_entry(4);
        ex.run_entry(4);
    }
    assert!(
        ex.counters().total > eb.counters().total,
        "warm low-trip loop: boost must lose ({} vs {})",
        ex.counters().total,
        eb.counters().total
    );
}

/// Full-pipeline determinism: identical configurations produce identical
/// cycle counts.
#[test]
fn pipeline_is_deterministic() {
    let m = machine();
    let lp = gather_update("g", DataClass::Fp, 1 << 24);
    let cfg = CompileConfig::new(LatencyPolicy::HloHints);
    let a = compile_loop_with_profile(&lp, &m, &cfg, 500.0);
    let b = compile_loop_with_profile(&lp, &m, &cfg, 500.0);
    assert_eq!(a.kernel, b.kernel, "compilation is deterministic");
    assert_eq!(
        run(&a, &m, 500),
        run(&b, &m, 500),
        "simulation is deterministic"
    );
}

/// The HLO's prefetches pay for themselves on streaming loops: with
/// prefetching on, a progressive stream runs much faster than without.
#[test]
fn prefetching_pays_for_itself_on_streams() {
    let m = machine();
    let lp = triad("t");
    let on = compile_loop_with_profile(
        &lp,
        &m,
        &CompileConfig::new(LatencyPolicy::Baseline),
        20_000.0,
    );
    let off = compile_loop_with_profile(
        &lp,
        &m,
        &CompileConfig::new(LatencyPolicy::Baseline).with_prefetch(false),
        20_000.0,
    );
    let c_on = run(&on, &m, 20_000);
    let c_off = run(&off, &m, 20_000);
    // The triad is close to the modeled memory-bandwidth bound, so
    // prefetching buys latency hiding but not bandwidth: expect a solid
    // but not unbounded speedup.
    assert!(
        c_on.total * 6 < c_off.total * 5,
        "prefetching should speed the stream up by >1.2x: {} vs {}",
        c_on.total,
        c_off.total
    );
}

/// Boosting shifts stall composition exactly as Fig. 10 describes: data
/// stalls shrink, unstalled execution grows slightly (extra epilogs).
#[test]
fn stall_composition_shifts_like_fig10() {
    let m = machine();
    let lp = gather_update("g", DataClass::Int, 48 << 20);
    let base = compile_loop_with_profile(
        &lp,
        &m,
        &CompileConfig::new(LatencyPolicy::Baseline),
        2000.0,
    );
    let hlo = compile_loop_with_profile(
        &lp,
        &m,
        &CompileConfig::new(LatencyPolicy::HloHints),
        2000.0,
    );
    let cb = run(&base, &m, 2000);
    let cx = run(&hlo, &m, 2000);
    assert!(cx.be_exe_bubble < cb.be_exe_bubble, "EXE bubble shrinks");
    assert!(cx.unstalled >= cb.unstalled, "unstalled grows (epilog)");
}
