//! Property-based tests for the quantile-capable [`Histogram`]: the
//! contracts the observability layer leans on (DESIGN.md §14).
//!
//! - quantiles are monotone in `q` and bracketed by `[min, max]`;
//! - a merged histogram answers quantiles like the concatenated stream,
//!   within the log-bucket relative-error bound (sub-buckets are 1/8 of
//!   an octave, so ≤ 12.5 % plus integer rounding);
//! - empty histograms answer `None`, never a fake 0;
//! - `merge` agrees with recording the concatenated stream exactly
//!   (same buckets, not merely close).

use proptest::prelude::*;

use ltsp::telemetry::Histogram;

/// The documented worst-case relative error of a quantile answer: one
/// sub-bucket of an octave (2^octave / 8), plus one unit of integer
/// truncation slack.
fn within_bucket_error(got: u64, reference: u64) -> bool {
    let hi = reference.max(got);
    let lo = reference.min(got);
    // 12.5 % of the larger endpoint, + 1 for integer rounding at the
    // bottom octaves where a sub-bucket spans less than one integer.
    hi - lo <= hi / 8 + 1
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles never decrease as `q` grows, and always land inside
    /// the recorded `[min, max]` envelope.
    #[test]
    fn quantiles_are_monotone_and_bracketed(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let mut prev = 0u64;
        for q in [0.0, 0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let got = h.quantile(q).expect("non-empty histogram answers");
            prop_assert!(got >= prev, "quantile({q}) = {got} < previous {prev}");
            prop_assert!((lo..=hi).contains(&got), "quantile({q}) = {got} outside [{lo}, {hi}]");
            prev = got;
        }
        prop_assert_eq!(h.quantile(1.0), Some(hi), "p100 must be the exact max");
    }

    /// Every quantile answer is within one log-scale sub-bucket of the
    /// exact order statistic of the recorded stream.
    #[test]
    fn quantile_error_is_bounded_by_the_bucket_width(
        values in proptest::collection::vec(0u64..10_000_000, 1..200),
        q in 0.01f64..1.0,
    ) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let want = exact_quantile(&sorted, q);
        let got = h.quantile(q).expect("non-empty histogram answers");
        prop_assert!(
            within_bucket_error(got, want),
            "quantile({q}) = {got}, exact = {want}: outside the bucket error bound"
        );
    }

    /// `merge` is exactly recording the concatenated stream: identical
    /// counts, sums, envelopes, buckets — and so identical quantiles.
    #[test]
    fn merge_equals_concatenated_stream(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::default();
        let mut hb = Histogram::default();
        let mut hc = Histogram::default();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count, hc.count);
        prop_assert_eq!(ha.sum, hc.sum);
        prop_assert_eq!(ha.min, hc.min);
        prop_assert_eq!(ha.max, hc.max);
        prop_assert_eq!(ha.nonzero_buckets(), hc.nonzero_buckets());
        prop_assert_eq!(ha.cumulative_buckets(), hc.cumulative_buckets());
        for q in [0.50, 0.90, 0.99] {
            prop_assert_eq!(ha.quantile(q), hc.quantile(q), "merged quantile({}) diverges", q);
        }
    }

    /// Merging into an empty histogram reproduces the donor; merging an
    /// empty histogram is a no-op; empty quantiles stay `None`.
    #[test]
    fn empty_is_the_merge_identity(
        values in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let empty = Histogram::default();
        prop_assert_eq!(empty.quantile(0.5), None, "empty must answer None, not 0");

        let mut left = Histogram::default();
        left.merge(&h);
        let mut right = h.clone();
        right.merge(&Histogram::default());
        for side in [&left, &right] {
            prop_assert_eq!(side.count, h.count);
            prop_assert_eq!(side.quantile(0.99), h.quantile(0.99));
            prop_assert_eq!(side.nonzero_buckets(), h.nonzero_buckets());
        }
    }
}
