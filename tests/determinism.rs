//! The determinism matrix: the same experiment run at `--jobs 1` and
//! `--jobs 4` must produce **byte-identical** artifacts — gain-table
//! report text, trace JSONL (after span-timestamp normalization) and the
//! metrics snapshot — and the differential fuzz harness must produce the
//! identical verdict table. This is the contract that makes parallelism
//! safe to turn on everywhere: worker count changes wall-clock, nothing
//! else.

use ltsp::core::{
    format_gain_table, run_suite, suite_cycle_accounting, CompileConfig, LatencyPolicy, RunConfig,
};
use ltsp::machine::MachineModel;
use ltsp::oracle::{differential_fuzz, OracleOptions};
use ltsp::telemetry::{normalize_trace, Telemetry};
use ltsp::workloads::cpu2006;

/// Entry scale for the suite arm of the matrix: small enough to keep the
/// matrix fast, large enough that every loop actually simulates.
const SCALE: f64 = 0.02;

/// One full suite pass (Baseline + HloHints arms) at a given worker
/// count, returning the rendered gain table, the normalized JSONL trace
/// and the metrics snapshot.
fn suite_artifacts(jobs: usize) -> (String, String, String) {
    let m = MachineModel::itanium2();
    let suite = cpu2006();
    let tel = Telemetry::enabled();
    let rc = |policy| {
        RunConfig::new(CompileConfig::new(policy))
            .with_entry_scale(SCALE)
            .with_telemetry(&tel)
            .with_jobs(jobs)
    };
    let base = run_suite(&suite, &m, &rc(LatencyPolicy::Baseline));
    let hlo = run_suite(&suite, &m, &rc(LatencyPolicy::HloHints));
    let rows: Vec<(String, Vec<f64>)> = suite
        .iter()
        .zip(base.runs.iter().zip(&hlo.runs))
        .map(|(b, (br, hr))| {
            (
                b.name.to_string(),
                vec![ltsp::core::benchmark_gain(b, br, hr)],
            )
        })
        .collect();
    let mut report = format_gain_table("determinism-matrix", &["hlo"], &rows);
    let (cb, cv) = suite_cycle_accounting(&suite, &base, &hlo);
    report.push_str(&format!("totals: base={} hlo={}\n", cb.total, cv.total));

    let mut trace = Vec::new();
    tel.write_events_jsonl(&mut trace).expect("trace renders");
    let trace = normalize_trace(&String::from_utf8(trace).expect("utf8 trace"));
    let mut metrics = Vec::new();
    tel.write_metrics_json(&mut metrics)
        .expect("metrics render");
    let metrics = String::from_utf8(metrics).expect("utf8 metrics");
    (report, trace, metrics)
}

#[test]
fn suite_artifacts_are_jobs_invariant() {
    let (report1, trace1, metrics1) = suite_artifacts(1);
    let (report4, trace4, metrics4) = suite_artifacts(4);
    assert!(
        report1 == report4,
        "gain report differs between --jobs 1 and --jobs 4:\n--- jobs=1\n{report1}\n--- jobs=4\n{report4}"
    );
    assert!(
        trace1 == trace4,
        "normalized trace differs between --jobs 1 and --jobs 4"
    );
    assert!(
        metrics1 == metrics4,
        "metrics snapshot differs between --jobs 1 and --jobs 4:\n--- jobs=1\n{metrics1}\n--- jobs=4\n{metrics4}"
    );
    assert!(
        report1.contains("429.mcf"),
        "sanity: the suite actually ran:\n{report1}"
    );
    assert!(
        trace1.lines().count() > 100,
        "sanity: the trace actually recorded decisions"
    );
}

/// One 50-case fuzz pass at a given worker count, returning the rendered
/// verdict table and the normalized trace.
fn fuzz_artifacts(jobs: usize) -> (String, String) {
    let m = MachineModel::itanium2();
    let opts = OracleOptions {
        node_budget: 10_000,
        ..OracleOptions::default()
    };
    let tel = Telemetry::enabled();
    let s = differential_fuzz(0x5eed, 50, &m, &opts, &tel, jobs);
    let mut table = String::new();
    for c in &s.cases {
        table.push_str(&format!(
            "{} insts={} pipelined={} heuristic_ii={} oracle_ii={} gap={:?} sound={}\n",
            c.name,
            c.insts,
            c.pipelined,
            c.heuristic_ii,
            c.oracle_ii(),
            c.gap(),
            c.sound()
        ));
    }
    table.push_str(&format!(
        "rejected={} unsound={} optimal={} suboptimal={} unknown={}\n",
        s.rejected, s.unsound, s.proven_optimal, s.proven_suboptimal, s.unknown
    ));
    let mut trace = Vec::new();
    tel.write_events_jsonl(&mut trace).expect("trace renders");
    let trace = normalize_trace(&String::from_utf8(trace).expect("utf8 trace"));
    (table, trace)
}

#[test]
fn fuzz_verdicts_are_jobs_invariant() {
    let (table1, trace1) = fuzz_artifacts(1);
    let (table4, trace4) = fuzz_artifacts(4);
    assert!(
        table1 == table4,
        "oracle verdict table differs between --jobs 1 and --jobs 4:\n--- jobs=1\n{table1}\n--- jobs=4\n{table4}"
    );
    assert!(
        trace1 == trace4,
        "normalized fuzz trace differs between --jobs 1 and --jobs 4"
    );
    assert_eq!(table1.lines().count(), 51, "50 verdict rows + summary");
}
