//! CLI batch behavior: one malformed file in a `ltspc verify` batch
//! reports its own `file:line` diagnostic and exit status while the rest
//! of the batch still completes.

use std::process::Command;

fn ltspc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ltspc"))
}

#[test]
fn malformed_file_in_batch_is_non_fatal() {
    let dir = std::env::temp_dir().join(format!("ltsp-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let good = dir.join("good.loop");
    let bad = dir.join("bad.loop");
    std::fs::write(&good, std::fs::read_to_string("loops/saxpy.loop").unwrap()).unwrap();
    std::fs::write(&bad, "loop broken {\n  this is not an instruction\n}\n").unwrap();

    let out = ltspc()
        .args(["verify", "--jobs", "2"])
        .arg(&good)
        .arg(&bad)
        .output()
        .expect("run ltspc");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);

    // The good file still verified...
    assert!(
        stdout.contains("certified"),
        "good file should complete: stdout={stdout} stderr={stderr}"
    );
    // ...the bad file reports a file:line diagnostic...
    assert!(
        stderr.contains("bad.loop:2:"),
        "diagnostic should carry file:line: {stderr}"
    );
    // ...and the batch exits with the syntax-error status.
    assert_eq!(out.status.code(), Some(4), "stderr={stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_jobs_is_a_clear_one_line_error() {
    for bad in ["0", "four", "-2"] {
        let out = ltspc()
            .args(["verify", "--jobs", bad, "loops/saxpy.loop"])
            .output()
            .expect("run ltspc");
        assert_eq!(
            out.status.code(),
            Some(2),
            "--jobs {bad} should be a usage error"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        let diag: Vec<&str> = stderr.lines().filter(|l| l.contains("jobs")).collect();
        assert_eq!(diag.len(), 1, "exactly one jobs diagnostic line: {stderr}");
        assert!(diag[0].contains(bad), "names the offending value: {stderr}");
    }
}
