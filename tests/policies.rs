//! Policy-semantics integration tests: which loads get boosted under each
//! [`LatencyPolicy`], and how trip-count information gates it.

use ltsp::core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp::ir::{DataClass, InstId};
use ltsp::machine::MachineModel;
use ltsp::workloads::{gather_update, mcf_refresh, motion_search, saxpy, stream_sum};

fn machine() -> MachineModel {
    MachineModel::itanium2()
}

fn boosted(lp: &ltsp::ir::LoopIr, policy: LatencyPolicy, threshold: u32, trip: f64) -> usize {
    let cfg = CompileConfig::new(policy).with_threshold(threshold);
    compile_loop_with_profile(lp, &machine(), &cfg, trip)
        .stats
        .map_or(0, |s| s.boosted_loads)
}

#[test]
fn baseline_never_boosts() {
    for lp in [
        saxpy("s"),
        mcf_refresh("m", 1 << 25),
        gather_update("g", DataClass::Fp, 1 << 24),
    ] {
        assert_eq!(boosted(&lp, LatencyPolicy::Baseline, 0, 10_000.0), 0);
    }
}

#[test]
fn all_loads_l3_boosts_every_non_critical_load() {
    let lp = saxpy("s");
    // saxpy: two FP loads, both non-critical.
    assert_eq!(boosted(&lp, LatencyPolicy::AllLoadsL3, 0, 10_000.0), 2);
}

#[test]
fn fp_policy_boosts_only_fp() {
    let int_loop = stream_sum("i", DataClass::Int, 256);
    let fp_loop = stream_sum("f", DataClass::Fp, 256);
    assert_eq!(
        boosted(&int_loop, LatencyPolicy::AllFpLoadsL2, 0, 10_000.0),
        0
    );
    assert_eq!(
        boosted(&fp_loop, LatencyPolicy::AllFpLoadsL2, 0, 10_000.0),
        1
    );
}

#[test]
fn threshold_gates_blanket_policies() {
    let lp = saxpy("s");
    assert!(boosted(&lp, LatencyPolicy::AllLoadsL3, 32, 100.0) > 0);
    assert_eq!(boosted(&lp, LatencyPolicy::AllLoadsL3, 32, 10.0), 0);
    // Exactly at the threshold counts as above it.
    assert!(boosted(&lp, LatencyPolicy::AllLoadsL3, 32, 32.0) > 0);
}

#[test]
fn hlo_hints_boost_delinquents_regardless_of_trip_count() {
    // The Sec. 4.4 scenario: unprefetchable chase fields boosted at trip
    // 2.3 even with threshold 32.
    let lp = mcf_refresh("m", 1 << 25);
    assert!(boosted(&lp, LatencyPolicy::HloHints, 32, 2.3) >= 2);
    // But prefetchable references respect the threshold (h264ref stays
    // unboosted at trip 10).
    let ms = motion_search("ms");
    assert_eq!(boosted(&ms, LatencyPolicy::HloHints, 32, 10.0), 0);
}

#[test]
fn fp_default_l2_rider_applies_only_to_hlo_policy() {
    // saxpy's FP loads are fully prefetched (no HLO hint), so any boost
    // under HloHints comes from the default FP-L2 rider.
    let lp = saxpy("s");
    let cfg = CompileConfig::new(LatencyPolicy::HloHints);
    assert!(cfg.fp_default_l2);
    let c = compile_loop_with_profile(&lp, &machine(), &cfg, 1000.0);
    assert_eq!(c.stats.unwrap().boosted_loads, 2, "FP default L2 applies");

    let mut no_rider = CompileConfig::new(LatencyPolicy::HloHints);
    no_rider.fp_default_l2 = false;
    let c2 = compile_loop_with_profile(&lp, &machine(), &no_rider, 1000.0);
    assert_eq!(
        c2.stats.unwrap().boosted_loads,
        0,
        "without the rider: none"
    );
}

#[test]
fn chase_load_is_always_critical() {
    let lp = mcf_refresh("m", 1 << 25);
    let m = machine();
    for policy in [
        LatencyPolicy::AllLoadsL3,
        LatencyPolicy::HloHints,
        LatencyPolicy::AllFpLoadsL2,
    ] {
        let cfg = CompileConfig::new(policy).with_threshold(0);
        let c = compile_loop_with_profile(&lp, &m, &cfg, 10_000.0);
        // InstId(0) is the chase load; it must stay at base latency.
        assert_eq!(
            c.scheduled_load_latency_of(&m, InstId(0)),
            Some(1),
            "{policy}: the chase must not be boosted"
        );
    }
}

#[test]
fn hint_surface_grows_when_prefetching_is_disabled() {
    let lp = gather_update("g", DataClass::Fp, 1 << 24);
    let m = machine();
    let on = compile_loop_with_profile(
        &lp,
        &m,
        &CompileConfig::new(LatencyPolicy::HloHints),
        1000.0,
    );
    let off = compile_loop_with_profile(
        &lp,
        &m,
        &CompileConfig::new(LatencyPolicy::HloHints).with_prefetch(false),
        1000.0,
    );
    assert!(on.hlo.prefetches_inserted > 0);
    assert_eq!(off.hlo.prefetches_inserted, 0);
    assert!(off.stats.unwrap().boosted_loads >= on.stats.unwrap().boosted_loads);
}
