//! Correctness properties of the content-addressed schedule cache as
//! the server uses it: a hit must be indistinguishable (byte-identical)
//! from a cold compile, and eviction under a starved byte budget must
//! never surface a stale answer after the configuration changes.

use proptest::prelude::*;

use ltsp::server::{parse_request, Engine, EngineConfig};
use ltsp::telemetry::{json, Telemetry};
use ltsp::workloads::random_loop;

fn request_line(op: &str, id: &str, loop_text: &str, policy: &str, trip: f64) -> String {
    format!(
        "{{\"op\":\"{op}\",\"id\":\"{id}\",\"loop\":\"{}\",\"policy\":\"{policy}\",\
         \"trip\":{trip},\"deadline_ms\":0}}",
        json::escape(loop_text)
    )
}

fn respond(engine: &Engine, line: &str) -> String {
    let tel = Telemetry::disabled();
    let req = parse_request(line).expect("well-formed request");
    engine.handle(&req, &tel).render()
}

/// Strips the envelope's `cache` tag, which is the only field allowed to
/// differ between a cold and a warm response.
fn without_cache_tag(rendered: &str) -> String {
    rendered
        .replacen("\"cache\":\"hit\"", "\"cache\":\"-\"", 1)
        .replacen("\"cache\":\"miss\"", "\"cache\":\"-\"", 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A warm hit returns the same bytes a cold compile produced, and the
    /// same bytes an entirely fresh engine produces — for every op.
    #[test]
    fn hits_are_byte_identical_to_cold_compiles(
        seed in 0u64..50_000,
        op_ix in 0usize..3,
        policy_ix in 0usize..4,
    ) {
        let op = ["compile", "verify", "oracle"][op_ix];
        let policy = ["hlo", "baseline", "l3", "fpl2"][policy_ix];
        let text = random_loop(seed).to_string();
        let line = request_line(op, "q", &text, policy, 100.0);

        let warm_engine = Engine::new(EngineConfig::default());
        let cold = respond(&warm_engine, &line);
        let warm = respond(&warm_engine, &line);
        prop_assert!(warm.contains("\"cache\":\"hit\""), "second request should hit: {warm}");
        prop_assert_eq!(without_cache_tag(&cold), without_cache_tag(&warm));

        let fresh_engine = Engine::new(EngineConfig::default());
        let fresh = respond(&fresh_engine, &line);
        prop_assert_eq!(without_cache_tag(&cold), without_cache_tag(&fresh));
    }

    /// Under a byte budget small enough to evict constantly, and with the
    /// run configuration (policy / trip estimate) flipping between
    /// requests, the cache never serves an answer computed for a
    /// different configuration: every response matches a cache-free
    /// ground truth engine's response for the same request.
    #[test]
    fn starved_cache_never_serves_stale_config(
        seeds in proptest::collection::vec(0u64..5_000, 2..5),
    ) {
        let starved = Engine::new(EngineConfig {
            compile_cache_bytes: 2_048,
            result_cache_bytes: 2_048,
            ..EngineConfig::default()
        });
        for (i, seed) in seeds.iter().enumerate() {
            let text = random_loop(*seed).to_string();
            for (policy, trip) in [("hlo", 100.0), ("baseline", 100.0), ("hlo", 7.0)] {
                for op in ["compile", "verify"] {
                    let line = request_line(op, "q", &text, policy, trip);
                    let got = respond(&starved, &line);
                    // Fresh engine per request: no cache state at all.
                    let truth = respond(&Engine::new(EngineConfig::default()), &line);
                    prop_assert_eq!(
                        without_cache_tag(&got),
                        without_cache_tag(&truth),
                        "request {} (seed {}, {} {} trip {}) diverged under eviction pressure",
                        i, seed, op, policy, trip
                    );
                }
            }
        }
    }
}
