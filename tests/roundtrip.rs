//! Loop-file round-trip property: parse → pretty-print → re-parse is
//! the identity, and pretty-printing is a fixpoint, for every `.loop`
//! file in the corpus and for generated kernels. This is the contract
//! that lets the server key its caches on the canonicalized text.

use proptest::prelude::*;

use ltsp::ir::parse_loop;
use ltsp::workloads::random_loop;

fn corpus_files() -> Vec<(String, String)> {
    let mut files: Vec<_> = std::fs::read_dir("loops")
        .expect("loops/ corpus directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "loop"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.display().to_string();
            let text = std::fs::read_to_string(&p).expect("readable corpus file");
            (name, text)
        })
        .collect()
}

#[test]
fn corpus_files_round_trip_exactly() {
    let files = corpus_files();
    assert!(
        files.len() >= 17,
        "expected the full corpus, found {} files",
        files.len()
    );
    for (name, text) in files {
        let lp = parse_loop(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = lp.to_string();
        let reparsed = parse_loop(&printed)
            .unwrap_or_else(|e| panic!("{name}: reparse of pretty-print failed: {e}\n{printed}"));
        assert_eq!(lp, reparsed, "{name}: parse→print→parse changed the loop");
        assert_eq!(
            printed,
            reparsed.to_string(),
            "{name}: pretty-print is not a fixpoint"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated kernels round-trip too: printing and reparsing is the
    /// identity and a second print produces the same bytes.
    #[test]
    fn generated_kernels_round_trip_exactly(seed in 0u64..100_000) {
        let lp = random_loop(seed);
        let printed = lp.to_string();
        let reparsed = parse_loop(&printed)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}\n{printed}")))?;
        prop_assert_eq!(&lp, &reparsed, "seed {}: round trip changed the loop", seed);
        prop_assert_eq!(printed, reparsed.to_string(), "seed {}: print not a fixpoint", seed);
    }
}
