//! End-to-end tests of the sharded serving layer (`ltsp_cluster`) over
//! real TCP: routing determinism, byte-identity through the router,
//! failover under dead/draining/killed shards, drain propagation,
//! aggregated metrics, and the persistent warm-start cache tier.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use ltsp::cluster::ring::DEFAULT_VNODES;
use ltsp::cluster::{routing_key, spawn_router, Ring, RouterConfig, RouterHandle};
use ltsp::server::{spawn, ServerConfig, ServerHandle};
use ltsp::telemetry::json;
use ltsp::telemetry::prom::PromSnapshot;
use ltsp::workloads::{random_loop, saxpy};

fn start_shard() -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        ..ServerConfig::default()
    })
    .expect("bind shard")
}

fn start_cluster(n: usize) -> (RouterHandle, Vec<ServerHandle>) {
    let shards: Vec<ServerHandle> = (0..n).map(|_| start_shard()).collect();
    let router = spawn_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shard_addrs: shards.iter().map(|s| s.addr().to_string()).collect(),
        cooldown: Duration::from_millis(200),
        ..RouterConfig::default()
    })
    .expect("bind router");
    (router, shards)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect_addr(addr: &str) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        writer.set_nodelay(true).expect("nodelay");
        writer
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(!line.is_empty(), "connection closed mid-conversation");
        line
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn compile_request(id: &str, loop_text: &str) -> String {
    format!(
        "{{\"op\":\"compile\",\"id\":\"{id}\",\"loop\":\"{}\"}}",
        json::escape(loop_text)
    )
}

fn status_of(line: &str) -> String {
    json::parse(line.trim())
        .expect("valid response json")
        .get("status")
        .and_then(|s| s.as_str())
        .expect("status field")
        .to_string()
}

/// Routed responses are byte-for-byte what the owning shard produced —
/// and a warm hit through the router equals a warm hit taken directly
/// from the shard.
#[test]
fn router_responses_are_byte_identical_to_direct() {
    let (router, shards) = start_cluster(3);
    let line = compile_request("bi", &saxpy("bi").to_string());
    let owner = Ring::new(3, DEFAULT_VNODES).owner(routing_key(&line));

    let mut via_router = Client::connect_addr(&router.addr().to_string());
    let cold = via_router.round_trip(&line);
    let warm = via_router.round_trip(&line);
    assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
    assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
    assert_eq!(
        cold.replacen("\"cache\":\"miss\"", "\"cache\":\"hit\"", 1),
        warm,
        "hit and miss differ beyond the cache tag through the router"
    );

    // The same request sent straight to the owning shard must produce
    // the identical bytes the router proxied.
    let mut direct = Client::connect_addr(&shards[owner].addr().to_string());
    let direct_warm = direct.round_trip(&line);
    assert_eq!(direct_warm, warm, "router added or changed bytes");

    // Protocol errors are proxied too: a malformed line gets the exact
    // error the shard renders, not a router-invented one.
    let bad = "this is not json";
    let via = via_router.round_trip(bad);
    let owner_bad = Ring::new(3, DEFAULT_VNODES).owner(routing_key(bad));
    let mut direct_bad = Client::connect_addr(&shards[owner_bad].addr().to_string());
    assert_eq!(via, direct_bad.round_trip(bad));

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// The same loop always routes to the same shard (cache locality): N
/// distinct loops through the router leave exactly N result-cache
/// misses across all shards — repeats are all hits, never re-sharded.
#[test]
fn routing_is_sticky_per_loop() {
    let (router, shards) = start_cluster(3);
    let mut c = Client::connect_addr(&router.addr().to_string());
    let loops: Vec<String> = (0..12).map(|i| random_loop(i).to_string()).collect();
    for round in 0..3 {
        for (i, text) in loops.iter().enumerate() {
            let resp = c.round_trip(&compile_request(&format!("s{round}-{i}"), text));
            let want_hit = round > 0;
            assert_eq!(
                resp.contains("\"cache\":\"hit\""),
                want_hit,
                "round {round} loop {i}: {resp}"
            );
        }
    }
    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// Killing a shard's process mid-run must not wedge or drop requests:
/// every request is answered (re-routed to a live shard or an explicit
/// `error`), and the router records failovers.
#[test]
fn failover_survives_a_dead_shard() {
    let (router, mut shards) = start_cluster(3);
    let mut c = Client::connect_addr(&router.addr().to_string());

    // Abruptly take shard 0 down (drains and closes its listener).
    shards.remove(0).shutdown();

    let n = 24;
    let mut answered = 0;
    let mut failed_over_ok = 0;
    for i in 0..n {
        let resp = c.round_trip(&compile_request(
            &format!("f{i}"),
            &random_loop(100 + i).to_string(),
        ));
        let status = status_of(&resp);
        assert!(
            ["ok", "rejected", "error"].contains(&status.as_str()),
            "unexpected status {status}: {resp}"
        );
        answered += 1;
        if status != "error" {
            failed_over_ok += 1;
        }
    }
    assert_eq!(answered, n, "no request silently dropped");
    // With 2 of 3 shards alive, the bulk must still be served.
    assert!(
        failed_over_ok >= n - 1,
        "only {failed_over_ok}/{n} served with 2 live shards"
    );

    let stats = c.round_trip("{\"op\":\"stats\",\"id\":\"st\"}");
    let v = json::parse(stats.trim()).unwrap();
    let failovers = v
        .get("router_failovers")
        .and_then(|x| x.as_u64())
        .unwrap_or(0);
    assert!(failovers > 0, "dead shard produced no failovers: {stats}");

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// With every shard unreachable, requests get an explicit `error`
/// response — bounded retry, never a hang, never silence.
#[test]
fn exhausted_failover_answers_error() {
    // Grab ports that nothing listens on.
    let dead: Vec<String> = (0..2)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        })
        .collect();
    let router = spawn_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shard_addrs: dead,
        connect_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let mut c = Client::connect_addr(&router.addr().to_string());
    let t0 = Instant::now();
    let resp = c.round_trip(&compile_request("dead", &saxpy("d").to_string()));
    assert_eq!(status_of(&resp), "error", "{resp}");
    assert!(resp.contains("no shard available"), "{resp}");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "exhaustion took {:?} — retry is not bounded",
        t0.elapsed()
    );
    router.shutdown();
}

/// A client `shutdown` to the router drains the whole cluster: the ack
/// matches the daemon's shape, every shard drains, the router stops.
#[test]
fn shutdown_propagates_through_the_router() {
    let (router, shards) = start_cluster(2);
    let mut c = Client::connect_addr(&router.addr().to_string());
    let ack = c.round_trip("{\"op\":\"shutdown\",\"id\":\"sd\"}");
    assert!(ack.contains("\"status\":\"draining\""), "{ack}");
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    for s in shards {
        s.wait(); // drains because the router broadcast shutdown
    }
    router.wait();
}

/// The router's `metrics` op aggregates every shard's snapshot with
/// `shard="N"` labels plus its own routing counters, and the result is
/// a well-formed Prometheus exposition.
#[test]
fn metrics_aggregate_per_shard() {
    let (router, shards) = start_cluster(3);
    let mut c = Client::connect_addr(&router.addr().to_string());
    for i in 0..6 {
        let resp = c.round_trip(&compile_request(
            &format!("m{i}"),
            &random_loop(200 + i).to_string(),
        ));
        assert_eq!(status_of(&resp), "ok", "{resp}");
    }
    let line = c.round_trip("{\"op\":\"metrics\",\"id\":\"mx\"}");
    let v = json::parse(line.trim()).unwrap();
    let text = v.get("metrics").and_then(|m| m.as_str()).unwrap();
    let snap = PromSnapshot::parse(text).expect("well-formed aggregated exposition");

    assert_eq!(
        snap.value("ltsp_router_proxied_total", &[]),
        Some(6.0),
        "proxied counter"
    );
    let mut shard_requests = 0.0;
    for i in 0..3 {
        let idx = i.to_string();
        assert_eq!(
            snap.value("ltsp_shard_up", &[("shard", &idx)]),
            Some(1.0),
            "shard {i} up"
        );
        for st in ["ok", "rejected", "error", "overloaded", "draining"] {
            shard_requests += snap
                .value("ltsp_requests_total", &[("shard", &idx), ("status", st)])
                .unwrap_or(0.0);
        }
    }
    assert_eq!(shard_requests, 6.0, "per-shard request totals add up");

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// The persistent tier's warm-start contract at the wire level: a
/// restarted shard replaying its log serves a **byte-identical** hit to
/// the pre-restart in-memory hit, from its very first request.
#[test]
fn warm_restart_hits_are_byte_identical() {
    let dir = std::env::temp_dir().join(format!("ltsp-warm-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("shard.log");
    let _ = std::fs::remove_file(&log);

    let persist_cfg = || {
        let mut cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 1,
            ..ServerConfig::default()
        };
        cfg.engine.persist_path = Some(log.clone());
        cfg
    };

    let lines: Vec<String> = (0..5)
        .map(|i| compile_request(&format!("w{i}"), &random_loop(300 + i).to_string()))
        .collect();

    let first = spawn(persist_cfg()).expect("bind shard");
    let mut c = Client::connect_addr(&first.addr().to_string());
    let mut warm_before = Vec::new();
    for line in &lines {
        let cold = c.round_trip(line);
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        warm_before.push(c.round_trip(line)); // in-memory hit
    }
    first.shutdown();

    let second = spawn(persist_cfg()).expect("rebind shard");
    let mut c = Client::connect_addr(&second.addr().to_string());
    for (line, before) in lines.iter().zip(&warm_before) {
        let after = c.round_trip(line);
        assert!(
            after.contains("\"cache\":\"hit\""),
            "not warm from request one: {after}"
        );
        assert_eq!(
            &after, before,
            "warm-from-disk hit differs from in-memory hit"
        );
    }
    second.shutdown();
}

/// Chaos: a real worker process killed mid-load by the `shardkill`
/// fault site (exit 113). The router must fail over — every request
/// answered, zero wedged connections, nonzero failovers — and the
/// killed process must have exited with the fault's code.
#[test]
fn shardkill_fault_process_failover() {
    let exe = env!("CARGO_BIN_EXE_ltspc");
    let pick_port = || {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let (addr_kill, addr_ok) = (pick_port(), pick_port());

    // Shard 0 kills itself on the first handled request; shard 1 is
    // healthy. Ports were just free; the bind race window is tiny.
    let mut doomed = std::process::Command::new(exe)
        .args(["serve", "--addr", &addr_kill, "--jobs", "1"])
        .env("LTSP_FAULT", "shardkill:1.0,seed:7")
        .stdin(std::process::Stdio::null())
        .spawn()
        .expect("spawn doomed shard");
    let mut healthy = std::process::Command::new(exe)
        .args(["serve", "--addr", &addr_ok, "--jobs", "1"])
        .stdin(std::process::Stdio::null())
        .spawn()
        .expect("spawn healthy shard");

    let wait_listening = |addr: &str| {
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_secs(20) {
            if TcpStream::connect(addr).is_ok() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("shard on {addr} never started listening");
    };
    wait_listening(&addr_kill);
    wait_listening(&addr_ok);

    let router = spawn_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shard_addrs: vec![addr_kill.clone(), addr_ok.clone()],
        connect_timeout: Duration::from_secs(1),
        cooldown: Duration::from_secs(60), // once dead, stay dead for the test
        ..RouterConfig::default()
    })
    .expect("bind router");

    let mut c = Client::connect_addr(&router.addr().to_string());
    let n = 16;
    for i in 0..n {
        let resp = c.round_trip(&compile_request(
            &format!("k{i}"),
            &random_loop(400 + i).to_string(),
        ));
        let status = status_of(&resp);
        assert!(
            ["ok", "rejected", "error"].contains(&status.as_str()),
            "request {i} wedged or dropped: {resp}"
        );
    }

    let stats = c.round_trip("{\"op\":\"stats\",\"id\":\"cs\"}");
    let v = json::parse(stats.trim()).unwrap();
    assert!(
        v.get("router_failovers")
            .and_then(|x| x.as_u64())
            .unwrap_or(0)
            > 0,
        "shard kill produced no failovers: {stats}"
    );

    let killed = doomed.wait().expect("reap doomed shard");
    assert_eq!(
        killed.code(),
        Some(ltsp::server::SHARD_KILL_EXIT_CODE),
        "doomed shard exited with the wrong code"
    );

    // Drain the healthy worker and the router.
    let mut drain = Client::connect_addr(&addr_ok);
    let ack = drain.round_trip("{\"op\":\"shutdown\",\"id\":\"cleanup\"}");
    assert!(ack.contains("\"status\":\"draining\""), "{ack}");
    assert!(healthy.wait().expect("reap healthy shard").success());
    router.shutdown();
}
