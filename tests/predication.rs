//! End-to-end tests of if-converted (predicated) loops: the paper's
//! pipeliner input is explicitly if-converted code ("the loop is first
//! if-converted to remove control flow", Sec. 3.3), and its own Sec. 4.4
//! example contains an `if (node->orientation == UP)` branch.

use ltsp::core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp::ir::{parse_loop, DataClass, LoopBuilder};
use ltsp::machine::MachineModel;
use ltsp::memsim::{Executor, ExecutorConfig, StreamMode};
use ltsp::workloads::mcf_refresh_predicated;

fn machine() -> MachineModel {
    MachineModel::itanium2()
}

#[test]
fn predicated_mcf_compiles_and_pipelines() {
    let m = machine();
    let lp = mcf_refresh_predicated("mcf-pred", 32 << 20);
    // Both sides of the diamond are predicated; the join is a sel.
    let predicated = lp.insts().iter().filter(|i| i.qp().is_some()).count();
    assert!(predicated >= 4, "both branch bodies are predicated");
    assert!(lp.insts().iter().any(|i| i.op() == ltsp::ir::Opcode::Sel));

    let c = compile_loop_with_profile(&lp, &m, &CompileConfig::new(LatencyPolicy::HloHints), 2.3);
    assert!(c.pipelined, "the predicated loop pipelines");
    let stats = c.stats.unwrap();
    assert!(stats.critical_loads >= 1, "the chase stays critical");
    assert!(
        stats.boosted_loads >= 2,
        "the delinquent predicated fields are boosted: {stats:?}"
    );
}

#[test]
fn predicated_loops_round_trip_textually() {
    let lp = mcf_refresh_predicated("mcf-pred", 32 << 20);
    let text = lp.to_string();
    assert!(text.contains("(p0)"), "then-side predicate printed: {text}");
    assert!(text.contains("(!p0)"), "else-side negation printed: {text}");
    let reparsed = parse_loop(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert_eq!(lp, reparsed);
}

#[test]
fn predication_gates_memory_traffic() {
    // A loop whose store only fires when the compare is taken: with
    // taken probability 0 the store never reaches memory, with 1 it
    // always does.
    let m = machine();
    let mut b = LoopBuilder::new("gated");
    let x = b.affine_ref("x[i]", DataClass::Int, 0x10_0000, 4, 4);
    let y = b.affine_ref("y[i]", DataClass::Int, 0x4000_0000, 4, 4);
    let v = b.load(x);
    let t = b.live_in_gr("t");
    let p = b.cmp(v, t);
    b.begin_if(p);
    b.store(y, v);
    b.end_if();
    let lp = b.build().unwrap();

    let c = compile_loop_with_profile(
        &lp,
        &m,
        &CompileConfig::new(LatencyPolicy::Baseline).with_prefetch(false),
        1000.0,
    );
    let run = |prob: f64| {
        let mut ex = Executor::new(
            &c.lp,
            &c.kernel,
            &m,
            c.regs_total,
            ExecutorConfig {
                stream_mode: StreamMode::Progressive,
                cmp_taken_prob: prob,
                ..ExecutorConfig::default()
            },
        );
        ex.run_entry(1000);
        ex.counters().stores
    };
    assert_eq!(run(0.0), 0, "never-taken predicate squashes every store");
    assert_eq!(
        run(1.0),
        1000,
        "always-taken predicate stores every iteration"
    );
    let half = run(0.5);
    assert!(
        (300..700).contains(&half),
        "half-taken predicate stores about half the time: {half}"
    );
}

#[test]
fn predicated_schedule_still_honors_dependences() {
    // The qualifying predicate is a register dependence: the cmp must be
    // scheduled before (modulo II) any instruction it predicates.
    let m = machine();
    let lp = mcf_refresh_predicated("mcf-pred", 32 << 20);
    let c = compile_loop_with_profile(&lp, &m, &CompileConfig::new(LatencyPolicy::Baseline), 100.0);
    let ii = i64::from(c.kernel.ii());
    for inst in c.lp.insts() {
        if let Some((qp, _)) = inst.qp() {
            if let Some(def) = c.lp.def_of(qp.reg) {
                assert!(
                    c.kernel.time(def) < c.kernel.time(inst.id()) + ii * i64::from(qp.omega),
                    "predicate def must precede its use"
                );
            }
        }
    }
}

#[test]
fn predication_off_path_loads_save_time() {
    // With a never-taken predicate the then-side delinquent loads never
    // issue, so the loop runs faster than with an always-taken one.
    let m = machine();
    let lp = mcf_refresh_predicated("mcf-pred", 32 << 20);
    let c = compile_loop_with_profile(&lp, &m, &CompileConfig::new(LatencyPolicy::Baseline), 3.0);
    let run = |prob: f64| {
        let mut ex = Executor::new(
            &c.lp,
            &c.kernel,
            &m,
            c.regs_total,
            ExecutorConfig {
                stream_mode: StreamMode::Progressive,
                cmp_taken_prob: prob,
                ..ExecutorConfig::default()
            },
        );
        for _ in 0..200 {
            ex.run_entry(3);
        }
        ex.counters().total
    };
    // The then-side carries the delinquent loads; never taking it skips
    // them entirely.
    assert!(
        run(1.0) > run(0.0),
        "the load-bearing path must cost more: {} vs {}",
        run(1.0),
        run(0.0)
    );
}
