//! End-to-end smoke test for the telemetry artifacts: run the `ltspc`
//! binary on a small loop with `--trace-out`/`--metrics-out`, then parse
//! what it wrote and validate the event schema and the cycle-accounting
//! partition invariant.

use std::process::Command;

use ltsp::telemetry::json::{parse, JsonValue};

const LOOP_TEXT: &str = r#"loop chase {
  live_in g0
  m0: "a[i]" [int affine(base=0x1000, stride=256) 4B]
  m1: "y[i]" [int affine(base=0x2000000, stride=4) 4B]
  i0: ld g1 = @m0
  i1: add g2 = g1, g0
  i2: st g2 @m1
}
"#;

fn counter(metrics: &JsonValue, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("metrics counter {name} missing"))
}

#[test]
fn ltspc_emits_parseable_decision_trace_and_metrics() {
    let dir = std::env::temp_dir().join(format!("ltsp-tel-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let loop_path = dir.join("chase.loop");
    let trace_path = dir.join("trace.jsonl");
    let metrics_path = dir.join("metrics.json");
    let chrome_path = dir.join("chrome.json");
    std::fs::write(&loop_path, LOOP_TEXT).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_ltspc"))
        .arg(&loop_path)
        .args(["--policy", "l3", "--trip", "1000", "--simulate", "2000"])
        .arg("--trace-out")
        .arg(&trace_path)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .arg("--chrome-trace")
        .arg(&chrome_path)
        .status()
        .expect("ltspc runs");
    assert!(status.success(), "ltspc exited with {status}");

    // --- JSONL trace: every line parses; the decision events carry the
    // fields the schema promises.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let mut boosts = 0;
    let mut spans = 0;
    let mut kinds = Vec::new();
    for line in trace.lines() {
        let v = parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        let ty = v
            .get("type")
            .and_then(JsonValue::as_str)
            .expect("type field");
        kinds.push(ty.to_string());
        match ty {
            "span" => {
                spans += 1;
                assert!(v.get("name").and_then(JsonValue::as_str).is_some());
                assert!(v.get("dur_us").and_then(JsonValue::as_u64).is_some());
            }
            "boost_assigned" => {
                boosts += 1;
                for field in ["loop", "load", "heuristic"] {
                    assert!(
                        v.get(field).and_then(JsonValue::as_str).is_some(),
                        "boost_assigned missing string field {field}: {line}"
                    );
                }
                for field in ["base_latency", "scheduled_latency", "k", "boost", "ii"] {
                    assert!(
                        v.get(field).and_then(JsonValue::as_u64).is_some(),
                        "boost_assigned missing numeric field {field}: {line}"
                    );
                }
                assert!(v.get("slack").and_then(JsonValue::as_f64).is_some());
                let k = v.get("k").and_then(JsonValue::as_u64).unwrap();
                let ii = v.get("ii").and_then(JsonValue::as_u64).unwrap();
                let boost = v.get("boost").and_then(JsonValue::as_u64).unwrap();
                assert_eq!(boost, (k - 1) * ii, "d = (k-1)*II");
            }
            _ => {
                assert!(
                    v.get("ts_us").and_then(JsonValue::as_u64).is_some(),
                    "event without timestamp: {line}"
                );
            }
        }
    }
    assert!(boosts >= 1, "at least one boosted load traced: {kinds:?}");
    assert!(
        spans >= 3,
        "hlo + pipeline + simulate spans expected: {kinds:?}"
    );
    assert!(
        kinds.iter().any(|k| k == "criticality_verdict"),
        "criticality verdicts traced: {kinds:?}"
    );
    assert!(
        kinds.iter().any(|k| k == "schedule_attempt"),
        "schedule attempts traced: {kinds:?}"
    );

    // --- Metrics snapshot: the stall buckets partition the total, exactly
    // as CycleCounters::is_consistent checks in-process.
    let metrics = parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    let total = counter(&metrics, "sim.cycles.total");
    let partition = counter(&metrics, "sim.cycles.unstalled")
        + counter(&metrics, "sim.cycles.be_exe_bubble")
        + counter(&metrics, "sim.cycles.be_l1d_fpu_bubble")
        + counter(&metrics, "sim.cycles.be_rse_bubble")
        + counter(&metrics, "sim.cycles.be_flush_bubble")
        + counter(&metrics, "sim.cycles.fe_bubble");
    assert_eq!(total, partition, "stall buckets partition total cycles");
    assert!(counter(&metrics, "compile.boosted_loads") >= 1);

    // --- Chrome trace: valid JSON with a traceEvents array of phases.
    let chrome = parse(&std::fs::read_to_string(&chrome_path).unwrap()).unwrap();
    let events = chrome
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X")));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disabled_telemetry_is_bit_identical() {
    use ltsp::core::{CompileConfig, LatencyPolicy, RunConfig};
    use ltsp::machine::MachineModel;
    use ltsp::telemetry::Telemetry;
    use ltsp::workloads::find_benchmark;

    let m = MachineModel::itanium2();
    let bench = find_benchmark("429.mcf").unwrap();
    let rc_off = RunConfig::new(CompileConfig::new(LatencyPolicy::HloHints)).with_entry_scale(0.05);
    let tel = Telemetry::enabled();
    let rc_on = RunConfig::new(CompileConfig::new(LatencyPolicy::HloHints))
        .with_entry_scale(0.05)
        .with_telemetry(&tel);

    let off = ltsp::core::run_benchmark(&bench, &m, &rc_off);
    let on = ltsp::core::run_benchmark(&bench, &m, &rc_on);
    assert_eq!(
        off.loop_cycles, on.loop_cycles,
        "telemetry is observational: identical simulated cycles"
    );
    for (a, b) in off.loops.iter().zip(&on.loops) {
        assert_eq!(a.counters, b.counters, "loop {} counters differ", a.name);
    }
    assert!(!tel.events().is_empty(), "the traced run recorded events");
    let metrics = tel.metrics();
    assert_eq!(
        metrics.counter("sim.cycles.total"),
        on.counters().total,
        "exported totals match the harness counters"
    );
}
