//! End-to-end tests of the `ltspd` serving stack over real TCP: cache
//! warm/cold byte-identity, `--jobs` determinism, backpressure, protocol
//! errors, and drain semantics.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use ltsp::server::{spawn, ServerConfig, ServerHandle};
use ltsp::telemetry::json;
use ltsp::workloads::{random_loop, saxpy};

fn start(jobs: usize, queue_high_water: usize) -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        queue_high_water,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let writer = TcpStream::connect(handle.addr()).expect("connect");
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn compile_request(id: &str, loop_text: &str) -> String {
    format!(
        "{{\"op\":\"compile\",\"id\":\"{id}\",\"loop\":\"{}\"}}",
        json::escape(loop_text)
    )
}

#[test]
fn warm_hit_is_byte_identical_to_cold_miss() {
    let handle = start(2, 256);
    let mut c = Client::connect(&handle);
    let line = compile_request("r", &saxpy("s").to_string());
    let cold = c.round_trip(&line);
    let warm = c.round_trip(&line);
    assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
    assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
    assert_eq!(
        cold.replacen("\"cache\":\"miss\"", "\"cache\":\"hit\"", 1),
        warm,
        "hit and miss responses differ beyond the cache tag"
    );
    handle.shutdown();
}

/// The determinism contract behind `--jobs`: the same pipelined request
/// stream produces the same response bytes whether the server schedules
/// batches on one worker or four.
#[test]
fn responses_are_byte_identical_across_jobs() {
    let run = |jobs: usize| {
        let handle = start(jobs, 1024);
        let mut c = Client::connect(&handle);
        // Pipeline everything first so multi-request batches actually form.
        let mut expected = 0;
        for i in 0..3 {
            for seed in 0..8u64 {
                let text = random_loop(seed).to_string();
                for op in ["compile", "verify", "oracle"] {
                    c.send(&format!(
                        "{{\"op\":\"{op}\",\"id\":\"{op}-{seed}-{i}\",\"loop\":\"{}\",\
                         \"deadline_ms\":0}}",
                        json::escape(&text)
                    ));
                    expected += 1;
                }
            }
        }
        let out: String = (0..expected).map(|_| c.recv()).collect();
        handle.shutdown();
        out
    };
    assert_eq!(run(1), run(4), "response bytes depend on --jobs");
}

#[test]
fn overload_answers_instead_of_hanging() {
    let handle = start(1, 2);
    let mut c = Client::connect(&handle);
    let n = 64;
    for i in 0..n {
        c.send(&compile_request(
            &format!("b{i}"),
            &random_loop(i).to_string(),
        ));
    }
    let responses: Vec<String> = (0..n).map(|_| c.recv()).collect();
    let overloaded = responses
        .iter()
        .filter(|r| r.contains("\"status\":\"overloaded\""))
        .count();
    let ok = responses
        .iter()
        .filter(|r| r.contains("\"status\":\"ok\""))
        .count();
    assert!(
        overloaded > 0,
        "a 2-deep queue under a 64-request burst should shed load"
    );
    assert!(ok > 0, "admitted requests should still complete");
    assert_eq!(overloaded + ok, n as usize);
    handle.shutdown();
}

#[test]
fn malformed_requests_fail_soft() {
    let handle = start(1, 256);
    let mut c = Client::connect(&handle);
    let bad = c.round_trip("{\"op\":\"compile\",\"id\":\"x\",\"loop\":\"not a loop\"}");
    assert!(bad.contains("\"status\":\"error\""), "{bad}");
    assert!(
        bad.contains("\"id\":\"x\""),
        "error echoes the request id: {bad}"
    );
    let not_json = c.round_trip("this is not json");
    assert!(not_json.contains("\"status\":\"error\""), "{not_json}");
    // The connection survives both and still serves work.
    let ok = c.round_trip(&compile_request("y", &saxpy("s").to_string()));
    assert!(ok.contains("\"status\":\"ok\""), "{ok}");
    handle.shutdown();
}

#[test]
fn shutdown_acknowledges_then_drains() {
    let handle = start(2, 256);
    let addr = handle.addr();
    let mut c = Client::connect(&handle);
    c.send(&compile_request("w", &saxpy("s").to_string()));
    let first = c.recv();
    assert!(first.contains("\"status\":\"ok\""), "{first}");
    let ack = c.round_trip("{\"op\":\"shutdown\",\"id\":\"bye\"}");
    assert!(ack.contains("\"status\":\"draining\""), "{ack}");
    handle.wait(); // returns only once the listener closed and work drained
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener should be closed after drain"
    );
}
