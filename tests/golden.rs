//! Golden snapshot tests: every committed `.loop` corpus file is compiled
//! under the Baseline and HloHints policies and its full kernel artifact —
//! II, stage count, per-slot placement, register assignment and emitted
//! kernel code — is compared byte-for-byte against a fixture in
//! `tests/golden/`.
//!
//! Any intentional change to scheduling, allocation or emission must
//! re-bless the fixtures (and the diff lands in review, where it belongs):
//!
//! ```text
//! LTSP_BLESS=1 cargo test --test golden
//! ```

use ltsp::core::{compile_loop_with_profile_traced, CompileConfig, LatencyPolicy};
use ltsp::machine::MachineModel;
use ltsp::pipeliner::{assign_registers, emit_kernel};
use ltsp::telemetry::Telemetry;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The trip-count estimate every snapshot compiles against (long enough
/// that thresholds never suppress a policy's boosts).
const TRIP: f64 = 100.0;

fn repo_dir() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn corpus() -> Vec<(String, ltsp::ir::LoopIr)> {
    let dir = repo_dir().join("loops");
    let mut loops: Vec<(String, ltsp::ir::LoopIr)> = std::fs::read_dir(&dir)
        .expect("loops/ corpus exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "loop"))
        .map(|e| {
            let stem = e
                .path()
                .file_stem()
                .expect("loop file has a stem")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(e.path()).expect("readable");
            let lp = ltsp::ir::parse_loop(&text)
                .unwrap_or_else(|err| panic!("{}: {err}", e.path().display()));
            (stem, lp)
        })
        .collect();
    loops.sort_by(|a, b| a.0.cmp(&b.0));
    loops
}

/// Renders one loop × policy snapshot: the complete, deterministic kernel
/// artifact a compiler engineer would diff after a scheduler change.
fn snapshot(lp: &ltsp::ir::LoopIr, machine: &MachineModel, policy: LatencyPolicy) -> String {
    let cfg = CompileConfig::new(policy);
    let compiled =
        compile_loop_with_profile_traced(lp, machine, &cfg, TRIP, &Telemetry::disabled());
    let mut s = String::new();
    let _ = writeln!(s, "loop: {}", lp.name());
    let _ = writeln!(s, "policy: {policy}");
    let _ = writeln!(s, "trip-estimate: {TRIP}");
    let _ = writeln!(s, "pipelined: {}", compiled.pipelined);
    let _ = writeln!(s, "II: {}", compiled.kernel.ii());
    let _ = writeln!(s, "stages: {}", compiled.kernel.stage_count());
    if let Some(stats) = &compiled.stats {
        let _ = writeln!(
            s,
            "mii: res={} rec={}  boosted={} critical={} attempts={}",
            stats.res_mii,
            stats.rec_mii,
            stats.boosted_loads,
            stats.critical_loads,
            stats.schedule_attempts
        );
    }
    if let Some(regs) = &compiled.regs {
        let _ = writeln!(
            s,
            "registers: GR {} FR {} PR {} (rotating)",
            regs.rotating_gr, regs.rotating_fr, regs.rotating_pr
        );
    }
    let _ = writeln!(s, "--- kernel ---");
    s.push_str(&compiled.kernel.dump(&compiled.lp));
    let _ = writeln!(s, "--- emitted ---");
    match assign_registers(&compiled.lp, &compiled.kernel, machine) {
        Ok(assign) => s.push_str(&emit_kernel(&compiled.lp, &compiled.kernel, &assign)),
        Err(e) => {
            let _ = writeln!(s, "register assignment failed: {e}");
        }
    }
    s
}

fn fixture_path(stem: &str, policy: LatencyPolicy) -> PathBuf {
    let tag = match policy {
        LatencyPolicy::Baseline => "baseline",
        LatencyPolicy::HloHints => "hlo",
        other => panic!("no fixture tag for policy {other}"),
    };
    repo_dir().join(format!("tests/golden/{stem}__{tag}.txt"))
}

fn check_policy(policy: LatencyPolicy) {
    let machine = MachineModel::itanium2();
    let bless = std::env::var("LTSP_BLESS").is_ok_and(|v| v == "1");
    let corpus = corpus();
    assert!(corpus.len() >= 17, "corpus should cover the kernel library");
    let mut mismatches = Vec::new();
    for (stem, lp) in &corpus {
        let got = snapshot(lp, &machine, policy);
        let path = fixture_path(stem, policy);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir tests/golden");
            std::fs::write(&path, &got).expect("write fixture");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\nrun `LTSP_BLESS=1 cargo test --test golden` to generate fixtures",
                path.display()
            )
        });
        if got != want {
            mismatches.push(format!(
                "{}: snapshot drifted from fixture.\n--- fixture\n{want}\n--- actual\n{got}",
                path.display()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} golden mismatches (re-bless with LTSP_BLESS=1 if intentional):\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn golden_baseline_kernels() {
    check_policy(LatencyPolicy::Baseline);
}

#[test]
fn golden_hlo_kernels() {
    check_policy(LatencyPolicy::HloHints);
}

/// The fixture directory must not accumulate orphans: every file there
/// corresponds to a current corpus loop × policy.
#[test]
fn golden_fixtures_have_no_orphans() {
    let dir = repo_dir().join("tests/golden");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // not yet blessed; the snapshot tests will say so
    };
    let corpus = corpus();
    let expected: std::collections::BTreeSet<String> = corpus
        .iter()
        .flat_map(|(stem, _)| ["baseline", "hlo"].map(|tag| format!("{stem}__{tag}.txt")))
        .collect();
    for e in entries.filter_map(Result::ok) {
        let name = e.file_name().to_string_lossy().into_owned();
        assert!(
            expected.contains(&name),
            "orphan fixture tests/golden/{name}: no matching loops/*.loop"
        );
    }
}
