//! The adaptive loop's contract over the whole kernel library: the
//! refinement fixpoint lands within the round cap, every intermediate
//! schedule is validator-certified, the converged II never regresses
//! the static heuristic, and the round-by-round trace is byte-identical
//! at any `--jobs` level — locally and through the server's
//! `"mode":"adaptive"` upgrade path.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use ltsp::adaptive::{compile_loop_adaptive, AdaptiveOptions};
use ltsp::core::{CompileConfig, LatencyPolicy};
use ltsp::machine::MachineModel;
use ltsp::server::{render_adaptive_report, spawn, EngineConfig, ServerConfig, ServerHandle};
use ltsp::telemetry::{json, Telemetry};
use ltsp::workloads::kernel_library;

const TRIP: f64 = 256.0;

fn adaptive_report(lp: &ltsp::ir::LoopIr) -> ltsp::adaptive::AdaptiveResult {
    let machine = MachineModel::itanium2();
    let cfg = CompileConfig::new(LatencyPolicy::HloHints);
    compile_loop_adaptive(
        lp,
        &machine,
        &cfg,
        TRIP,
        &AdaptiveOptions::default(),
        &Telemetry::disabled(),
    )
}

/// Every library kernel reaches the observation fixpoint within the
/// round cap (`1 + max_rounds` compiles), rather than being cut off.
#[test]
fn library_reaches_fixpoint_within_the_round_cap() {
    let opts = AdaptiveOptions::default();
    let lib = kernel_library();
    assert!(lib.len() >= 17, "library shrank to {}", lib.len());
    for (name, lp) in &lib {
        let res = adaptive_report(lp);
        assert!(
            res.rounds.len() <= 1 + opts.max_rounds as usize,
            "{name}: {} rounds exceeds the 1+{} cap",
            res.rounds.len(),
            opts.max_rounds
        );
        assert!(
            res.converged,
            "{name}: hit the round cap without reaching a fixpoint"
        );
    }
}

/// The safety half of the contract: every round of every kernel is
/// certified by the independent validator, and the chosen (converged)
/// schedule never regresses the static heuristic's II.
#[test]
fn converged_ii_never_regresses_and_every_round_is_certified() {
    for (name, lp) in &kernel_library() {
        let res = adaptive_report(lp);
        assert!(res.all_certified(), "{name}: an uncertified round survived");
        assert!(res.chosen().certified, "{name}: chose an uncertified round");
        assert!(
            res.ii() <= res.static_ii(),
            "{name}: adaptive II {} regressed static II {}",
            res.ii(),
            res.static_ii()
        );
    }
}

/// The full rendered round trace (round indices, IIs, overlay coverage,
/// stall counts) is byte-identical whether the library is compiled on a
/// 1-worker or a 4-worker pool: nothing in the adaptive loop samples
/// the host or its scheduling.
#[test]
fn round_traces_are_byte_identical_across_jobs() {
    let run = |jobs: usize| -> Vec<String> {
        let lib = kernel_library();
        ltsp::par::Pool::new(jobs).map(&lib, |_, (_, lp)| {
            render_adaptive_report(&adaptive_report(lp), LatencyPolicy::HloHints, TRIP)
        })
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a, b, "round trace diverged across --jobs");
    }
}

fn start(jobs: usize) -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let writer = TcpStream::connect(handle.addr()).expect("connect");
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { writer, reader }
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
        let mut out = String::new();
        self.reader.read_line(&mut out).expect("read response");
        out
    }
}

/// The response body after the envelope (`id`/`status`/`cache` fields),
/// so bodies compare across differing ids and cache tags.
fn body_after_cache(line: &str) -> &str {
    let cache = line.find("\"cache\":\"").expect("cache field");
    let rest = &line[cache + 9..];
    let end = rest.find('"').expect("cache tag closes");
    &rest[end + 1..]
}

/// Over TCP at `--jobs` 1 and 4: an adaptive compile answers instantly
/// with the static schedule, the refine worker upgrades the entry in
/// place, and the upgraded bytes are byte-identical across worker
/// counts (the serving layer adds no nondeterminism on top of the
/// already-deterministic refinement).
#[test]
fn adaptive_upgrade_bytes_are_jobs_invariant() {
    let run = |jobs: usize| -> (String, String) {
        let handle = start(jobs);
        let mut c = Client::connect(&handle);
        let text = ltsp::workloads::saxpy("s").to_string();
        let line = format!(
            "{{\"op\":\"compile\",\"id\":\"a\",\"loop\":\"{}\",\"mode\":\"adaptive\"}}",
            json::escape(&text)
        );
        let cold = c.round_trip(&line);
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        assert!(cold.contains("\"mode\":\"adaptive\""), "{cold}");
        assert!(cold.contains("\"refined\":false"), "{cold}");
        let static_body = body_after_cache(&cold).to_string();
        let mut upgraded = String::new();
        for _ in 0..400 {
            let warm = c.round_trip(&line);
            if warm.contains("\"cache\":\"upgraded\"") {
                upgraded = body_after_cache(&warm).to_string();
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(!upgraded.is_empty(), "upgrade never landed at jobs={jobs}");
        assert_ne!(upgraded, static_body, "the upgrade really changed bytes");
        assert!(upgraded.contains("\"refined\":true"), "{upgraded}");
        assert!(upgraded.contains("\"certified\":true"), "{upgraded}");
        handle.shutdown();
        (static_body, upgraded)
    };
    let (s1, u1) = run(1);
    let (s4, u4) = run(4);
    assert_eq!(s1, s4, "static bytes diverged across --jobs");
    assert_eq!(u1, u4, "upgraded bytes diverged across --jobs");
}
