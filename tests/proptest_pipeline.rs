//! Property-based tests over the full compile-and-simulate pipeline on
//! randomly generated loops.

use proptest::prelude::*;

use ltsp::core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp::ddg::Ddg;
use ltsp::ir::Opcode;
use ltsp::machine::MachineModel;
use ltsp::memsim::{Executor, ExecutorConfig, StreamMode};
use ltsp::workloads::random_loop;

fn policies() -> impl Strategy<Value = LatencyPolicy> {
    prop_oneof![
        Just(LatencyPolicy::Baseline),
        Just(LatencyPolicy::AllLoadsL3),
        Just(LatencyPolicy::AllFpLoadsL2),
        Just(LatencyPolicy::HloHints),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated loop compiles; pipelined kernels respect both II
    /// lower bounds and never exceed the rotating-register supply.
    #[test]
    fn compiled_kernels_respect_lower_bounds(seed in 0u64..10_000, policy in policies()) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let cfg = CompileConfig::new(policy).with_threshold(0);
        let c = compile_loop_with_profile(&lp, &m, &cfg, 500.0);

        // Resource II holds for the *post-HLO* loop (prefetches included).
        let res_mii = m.res_mii(&c.lp);
        prop_assert!(c.kernel.ii() >= res_mii.min(c.kernel.ii()));
        if c.pipelined {
            prop_assert!(c.kernel.ii() >= res_mii,
                "II {} below ResMII {}", c.kernel.ii(), res_mii);
            let regs = c.regs.expect("pipelined loops carry an allocation");
            for class in [ltsp::ir::RegClass::Gr, ltsp::ir::RegClass::Fr, ltsp::ir::RegClass::Pr] {
                prop_assert!(
                    regs.rotating(class) <= m.registers().rotating(class),
                    "class {class} over-allocated"
                );
            }
        }
    }

    /// The final schedule honors every dependence edge of the DDG built
    /// with the exact latencies the compiler assumed.
    #[test]
    fn schedules_honor_all_dependences(seed in 0u64..10_000, policy in policies()) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let cfg = CompileConfig::new(policy).with_threshold(0);
        let c = compile_loop_with_profile(&lp, &m, &cfg, 500.0);
        if !c.pipelined {
            return Ok(()); // the acyclic fallback is list-scheduled (checked in-crate)
        }
        let ddg = Ddg::build(&c.lp, &m, &|id| {
            match c.lp.inst(id).op() {
                Opcode::Load(_) => c
                    .scheduled_load_latency_of(&m, id)
                    .expect("loads have latencies"),
                _ => 0,
            }
        });
        let ii = i64::from(c.kernel.ii());
        for e in ddg.edges() {
            prop_assert!(
                c.kernel.time(e.from) + i64::from(e.latency)
                    <= c.kernel.time(e.to) + ii * i64::from(e.omega),
                "edge {:?} violated at II {}", e, ii
            );
        }
    }

    /// Simulated executions keep the cycle-accounting invariant and the
    /// II·iterations lower bound, for any policy and trip count.
    #[test]
    fn simulation_counters_are_consistent(
        seed in 0u64..5_000,
        policy in policies(),
        trip in 1u64..300,
    ) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let cfg = CompileConfig::new(policy);
        let c = compile_loop_with_profile(&lp, &m, &cfg, trip as f64);
        let mut ex = Executor::new(
            &c.lp, &c.kernel, &m, c.regs_total,
            ExecutorConfig { stream_mode: StreamMode::Progressive, ..ExecutorConfig::default() },
        );
        ex.run_entry(trip);
        let counters = *ex.counters();
        prop_assert!(counters.is_consistent(), "{counters:?}");
        prop_assert_eq!(counters.source_iters, trip);
        prop_assert!(
            counters.total >= counters.kernel_iters * u64::from(c.kernel.ii()),
            "ran faster than the II allows"
        );
    }

    /// Boosting non-critical loads never changes the II (the definition of
    /// non-critical), for any random loop.
    #[test]
    fn boosting_never_raises_ii(seed in 0u64..10_000) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let base = compile_loop_with_profile(
            &lp, &m, &CompileConfig::new(LatencyPolicy::Baseline), 1000.0);
        let boost = compile_loop_with_profile(
            &lp, &m,
            &CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(0), 1000.0);
        if base.pipelined && boost.pipelined {
            prop_assert!(boost.kernel.ii() <= base.kernel.ii(),
                "boost raised II from {} to {}", base.kernel.ii(), boost.kernel.ii());
            prop_assert!(boost.kernel.stage_count() >= base.kernel.stage_count());
        }
    }

    /// Determinism: compile + simulate twice, get identical results.
    #[test]
    fn full_stack_determinism(seed in 0u64..3_000) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let cfg = CompileConfig::new(LatencyPolicy::HloHints);
        let a = compile_loop_with_profile(&lp, &m, &cfg, 100.0);
        let b = compile_loop_with_profile(&lp, &m, &cfg, 100.0);
        prop_assert_eq!(&a.kernel, &b.kernel);
        let runner = |c: &ltsp::core::CompiledLoop| {
            let mut ex = Executor::new(&c.lp, &c.kernel, &m, c.regs_total,
                ExecutorConfig::default());
            ex.run_entry(64);
            *ex.counters()
        };
        prop_assert_eq!(runner(&a), runner(&b));
    }
}
