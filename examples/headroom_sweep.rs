//! The Fig. 7 experiment in miniature: sweep the trip-count threshold and
//! watch low-trip loops flip from regression to neutrality while high-trip
//! delinquent loops keep their gains.
//!
//! Run with: `cargo run --release --example headroom_sweep`

use ltsp::core::{benchmark_gain, run_benchmark, CompileConfig, LatencyPolicy, RunConfig};
use ltsp::machine::MachineModel;
use ltsp::workloads::find_benchmark;

fn main() {
    let machine = MachineModel::itanium2();
    let names = ["464.h264ref", "429.mcf", "462.libquantum", "177.mesa"];
    let thresholds = [0u32, 8, 16, 32, 64];

    println!("headroom experiment (all loads hinted L3, PGO trip counts)\n");
    print!("{:<16}", "benchmark");
    for n in thresholds {
        print!(" {:>8}", format!("n={n}"));
    }
    println!();

    for name in names {
        let bench = find_benchmark(name).expect("benchmark exists");
        let base = run_benchmark(
            &bench,
            &machine,
            &RunConfig::new(CompileConfig::new(LatencyPolicy::Baseline)),
        );
        print!("{name:<16}");
        for n in thresholds {
            let rc =
                RunConfig::new(CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(n));
            let var = run_benchmark(&bench, &machine, &rc);
            print!(" {:>7.2}%", benchmark_gain(&bench, &base, &var));
        }
        println!();
    }

    println!(
        "\n464.h264ref (hot loop trip ≈ 10, L1-warm) regresses until the\n\
         threshold excludes it; 429.mcf keeps its high-trip gather gains;\n\
         177.mesa is the PGO train/ref mismatch: its profile says trip 154,\n\
         reality is 8, so no threshold saves it (Sec. 4.2)."
    );
}
