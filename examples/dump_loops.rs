//! Writes the workload kernel library to disk in the textual IR format
//! (one `.loop` file per kernel) — a corpus for `ltspc` and external
//! tools. Files are written to `loops/` (or the first argument).
//!
//! Run with: `cargo run --release --example dump_loops [dir]`

use ltsp::ir::DataClass;
use ltsp::workloads::{
    compute_heavy, gather_update, hash_walk, mcf_refresh, mcf_refresh_predicated,
    memory_recurrence, motion_search, pointer_array_walk, reduction_int, saxpy, stencil3,
    stream_sum, symbolic_walk, texture_span, triad,
};

fn main() -> std::io::Result<()> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "loops".to_string());
    std::fs::create_dir_all(&dir)?;
    let kernels = vec![
        ("stream_fp", stream_sum("stream_fp", DataClass::Fp, 8)),
        ("stream_int", stream_sum("stream_int", DataClass::Int, 256)),
        ("saxpy", saxpy("saxpy")),
        ("triad", triad("triad")),
        ("stencil3", stencil3("stencil3")),
        (
            "gather_fp",
            gather_update("gather_fp", DataClass::Fp, 1 << 24),
        ),
        (
            "gather_int",
            gather_update("gather_int", DataClass::Int, 1 << 22),
        ),
        ("mcf_refresh", mcf_refresh("mcf_refresh", 1 << 25)),
        (
            "mcf_refresh_predicated",
            mcf_refresh_predicated("mcf_refresh_predicated", 1 << 25),
        ),
        ("motion_search", motion_search("motion_search")),
        ("texture_span", texture_span("texture_span")),
        ("hash_walk", hash_walk("hash_walk", 1 << 17)),
        ("symbolic_walk", symbolic_walk("symbolic_walk", 4096)),
        (
            "pointer_array",
            pointer_array_walk("pointer_array", 1 << 24),
        ),
        ("compute_heavy", compute_heavy("compute_heavy")),
        ("reduction_int", reduction_int("reduction_int", 4)),
        ("memory_recurrence", memory_recurrence("memory_recurrence")),
    ];
    for (name, lp) in kernels {
        let path = format!("{dir}/{name}.loop");
        std::fs::write(&path, lp.to_string())?;
        println!("wrote {path}");
    }
    println!("\ncompile one with:  ltspc {dir}/mcf_refresh.loop --policy hlo --asm");
    Ok(())
}
