//! Writes the workload kernel library to disk in the textual IR format
//! (one `.loop` file per kernel) — a corpus for `ltspc` and external
//! tools. Files are written to `loops/` (or the first argument).
//!
//! Run with: `cargo run --release --example dump_loops [dir]`

use ltsp::workloads::kernel_library;

fn main() -> std::io::Result<()> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "loops".to_string());
    std::fs::create_dir_all(&dir)?;
    for (name, lp) in kernel_library() {
        let path = format!("{dir}/{name}.loop");
        std::fs::write(&path, lp.to_string())?;
        println!("wrote {path}");
    }
    println!("\ncompile one with:  ltspc {dir}/mcf_refresh.loop --policy hlo --asm");
    Ok(())
}
