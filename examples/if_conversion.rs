//! Predication end to end: the paper's Sec. 4.4 loop with its *actual*
//! control flow (`if (node->orientation == UP) ... else ...`),
//! if-converted through the builder's `begin_if`/`begin_else`/`sel` API,
//! pipelined, and executed at different branch probabilities.
//!
//! Run with: `cargo run --release --example if_conversion`

use ltsp::core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp::ir::SplitMix64;
use ltsp::machine::MachineModel;
use ltsp::memsim::{Executor, ExecutorConfig, StreamMode};
use ltsp::pipeliner::{assign_registers, emit_kernel};
use ltsp::workloads::{mcf_refresh_predicated, TripDistribution};

fn main() {
    let machine = MachineModel::itanium2();
    let lp = mcf_refresh_predicated("refresh_potential", 32 << 20);
    println!("{lp}\n");

    let cfg = CompileConfig::new(LatencyPolicy::HloHints);
    let compiled = compile_loop_with_profile(&lp, &machine, &cfg, 2.3);
    let stats = compiled.stats.expect("pipelines");
    println!(
        "pipelined: II={} stages={} boosted={} critical={}\n",
        compiled.kernel.ii(),
        compiled.kernel.stage_count(),
        stats.boosted_loads,
        stats.critical_loads
    );

    if let Ok(assign) = assign_registers(&compiled.lp, &compiled.kernel, &machine) {
        println!("{}", emit_kernel(&compiled.lp, &compiled.kernel, &assign));
    }

    // The branch probability shifts how often each side's loads issue.
    let trips = TripDistribution::Mixture(vec![(0.75, 2), (0.25, 3)]);
    println!("branch-probability sweep (UP fraction of nodes):");
    for prob in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut ex = Executor::new(
            &compiled.lp,
            &compiled.kernel,
            &machine,
            compiled.regs_total,
            ExecutorConfig {
                stream_mode: StreamMode::Progressive,
                cmp_taken_prob: prob,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = SplitMix64::new(7);
        for _ in 0..400 {
            ex.run_entry(trips.sample(&mut rng));
        }
        let c = ex.counters();
        println!(
            "  p(UP)={prob:.2}: {:>8} cycles, {:>5} loads issued, stalls {:.1}%",
            c.total,
            c.loads,
            100.0 * c.be_exe_bubble as f64 / c.total as f64
        );
    }
    println!(
        "\nPredicated-off instructions are squashed: they occupy their issue\n\
         slots (the kernel is fixed) but generate no memory traffic — the\n\
         if-converted input the paper's pipeliner operates on (Sec. 3.3)."
    );
}
