//! Explore the closed-form model of Sec. 2: coverage ratios, clustering
//! factors, and the stall-reduction surface of Eq. 2 (Fig. 5), plus the
//! cost side — extra stages and rotating registers per boosted cycle.
//!
//! Run with: `cargo run --release --example theory_explorer`

use ltsp::core::theory::{
    clustering_factor, coverage_ratio, required_extra_latency, stall_cycles,
    stall_reduction_percent,
};

fn main() {
    println!("Eq. 2 — stall reduction %, by coverage ratio c and clustering k\n");
    print!("{:>6}", "c\\k");
    for k in 1..=8u32 {
        print!(" {k:>7}");
    }
    println!();
    for c in [1.0, 0.75, 0.5, 0.25, 0.1, 0.05, 0.01] {
        print!("{c:>6.2}");
        for k in 1..=8 {
            print!(" {:>6.1}%", stall_reduction_percent(c, k));
        }
        println!();
    }

    println!("\nEq. 3 — additional scheduled latency d needed for clustering k:");
    for ii in [1u32, 2, 3, 4] {
        print!("  II={ii}:");
        for k in 2..=6 {
            print!("  k={k} -> d={}", required_extra_latency(k, ii));
        }
        println!();
    }

    // The paper's worked example (Sec. 2.1): L = 13 exposable cycles
    // (the L3 latency minus the single covered cycle), d = 2, II = 1.
    let (l, d, ii, n) = (13u32, 2u32, 1u32, 3000u64);
    let c = coverage_ratio(d, l);
    let k = clustering_factor(d, ii);
    let (without, with) = stall_cycles(n, l, d, ii);
    println!(
        "\nworked example (Sec. 2.1): L={l}, d={d}, II={ii} -> c={c:.3}, k={k}\n\
         stalls over {n} kernel iterations: {without} -> {with} ({:.1}% reduction)",
        100.0 * (1.0 - with as f64 / without as f64)
    );
    println!("predicted by Eq. 2: {:.1}%", stall_reduction_percent(c, k));

    println!(
        "\ncost side: each boosted cycle beyond the base latency adds\n\
         ~1/II pipeline stages (one extra kernel iteration each per loop\n\
         execution) and extends the load's register lifetime by one\n\
         rotating register per II cycles — negligible at high trip counts,\n\
         dominant at low ones (Sec. 2.2)."
    );
}
