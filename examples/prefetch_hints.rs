//! Inside the HLO: run the software prefetcher over loops with different
//! access patterns and print the prefetch plans and latency hints it
//! assigns (the heuristics of the paper's Sec. 3.2).
//!
//! Run with: `cargo run --release --example prefetch_hints`

use ltsp::hlo::{run_hlo, HloConfig};
use ltsp::ir::DataClass;
use ltsp::machine::MachineModel;
use ltsp::workloads::{gather_update, hash_walk, mcf_refresh, saxpy, stencil3, symbolic_walk};

fn main() {
    let machine = MachineModel::itanium2();
    let loops = vec![
        ("saxpy (plain FP streams)", saxpy("saxpy")),
        ("stencil3 (overlapping streams)", stencil3("stencil3")),
        (
            "gather a[b[i]] (indirect, 2b)",
            gather_update("gather", DataClass::Fp, 1 << 24),
        ),
        (
            "symbolic stride a[i*n] (TLB clamp, 2a)",
            symbolic_walk("symbolic", 4096),
        ),
        (
            "mcf pointer chase (unprefetchable, 1)",
            mcf_refresh("mcf", 1 << 25),
        ),
        (
            "wide integer scan (OzQ pressure, 3)",
            hash_walk("hash", 1 << 20),
        ),
    ];

    for (label, mut lp) in loops {
        let report = run_hlo(&mut lp, &machine, Some(1000.0), &HloConfig::default());
        println!("== {label}");
        println!(
            "   II estimate {}, {} prefetches inserted, {} refs hinted",
            report.ii_estimate, report.prefetches_inserted, report.hinted
        );
        for d in &report.decisions {
            let mr = lp.memref(d.memref);
            print!("   {:<24} {:<9}", mr.name(), mr.pattern().kind_name());
            if d.deduped {
                print!(" covered-by-leading-ref");
            }
            if let Some(p) = d.plan {
                print!(
                    " prefetch(d={}, {}{})",
                    p.distance,
                    p.target,
                    if p.distance_reduced { ", reduced" } else { "" }
                );
            }
            if let Some(h) = d.hint {
                print!(" hint={h} [{:?}]", d.reason.expect("hint has a reason"));
            }
            println!();
        }
        println!();
    }
}
