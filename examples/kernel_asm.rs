//! Emit the pipelined kernel as Itanium-style assembly with concrete
//! rotating registers and stage predicates — the paper's Figs. 3 and 6.
//!
//! Run with: `cargo run --release --example kernel_asm`

use ltsp::core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp::ir::{DataClass, LoopBuilder};
use ltsp::machine::MachineModel;
use ltsp::pipeliner::{assign_registers, emit_kernel};

fn main() {
    // The paper's running example (Fig. 1).
    let mut b = LoopBuilder::new("fig1");
    let src = b.affine_ref("r5", DataClass::Int, 0x1000, 4, 4);
    let dst = b.affine_ref("r6", DataClass::Int, 0x80_0000, 4, 4);
    let r9 = b.live_in_gr("r9");
    let v = b.load(src);
    let s = b.add(v, r9);
    b.store(dst, s);
    let lp = b.build().expect("well-formed");

    let machine = MachineModel::itanium2();

    println!("=== baseline pipeline (paper Fig. 3: II=1, 3 stages) ===");
    let cfg = CompileConfig::new(LatencyPolicy::Baseline).with_prefetch(false);
    let base = compile_loop_with_profile(&lp, &machine, &cfg, 1000.0);
    let assign = assign_registers(&base.lp, &base.kernel, &machine).expect("fits");
    println!("{}", emit_kernel(&base.lp, &base.kernel, &assign));

    println!("=== load scheduled for a 3-cycle latency (paper Figs. 4/6) ===");
    // Build a machine whose L3 "typical" latency is 3 so the blanket hint
    // reproduces the paper's d = 2 example exactly.
    let mut caches = *machine.caches();
    caches.l3.typical_latency = 3;
    let mach3 = MachineModel::new(
        *machine.issue(),
        *machine.latencies(),
        caches,
        *machine.registers(),
    );
    let cfg3 = CompileConfig::new(LatencyPolicy::AllLoadsL3)
        .with_threshold(0)
        .with_prefetch(false);
    let boosted = compile_loop_with_profile(&lp, &mach3, &cfg3, 1000.0);
    let assign3 = assign_registers(&boosted.lp, &boosted.kernel, &mach3).expect("fits");
    println!("{}", emit_kernel(&boosted.lp, &boosted.kernel, &assign3));
    println!(
        "Note the two extra latency-buffer stages: the add moved from (p17)\n\
         to (p19) and reads a register two rotations further down, exactly\n\
         as in the paper's Fig. 6."
    );
}
