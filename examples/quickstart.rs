//! Quickstart: build a loop, compile it with latency-tolerant software
//! pipelining, and watch the schedule and simulated stalls change.
//!
//! Run with: `cargo run --release --example quickstart`

use ltsp::core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp::ir::{DataClass, LoopBuilder};
use ltsp::machine::MachineModel;
use ltsp::memsim::{Executor, ExecutorConfig, StreamMode};

fn main() {
    // The paper's running example: ld4 / add / st4 with post-increment —
    // but with a large stride, so every load misses the caches.
    let mut b = LoopBuilder::new("quickstart");
    let src = b.affine_ref("a[i]", DataClass::Int, 0x10_0000, 256, 4);
    let dst = b.affine_ref("y[i]", DataClass::Int, 0x4000_0000, 4, 4);
    let nine = b.live_in_gr("r9");
    let v = b.load(src);
    let sum = b.add(v, nine);
    b.store(dst, sum);
    let lp = b.build().expect("well-formed loop");
    println!("{lp}\n");

    let machine = MachineModel::itanium2();
    let trip = 2000u64;

    for policy in [LatencyPolicy::Baseline, LatencyPolicy::AllLoadsL3] {
        let cfg = CompileConfig::new(policy)
            .with_threshold(0)
            .with_prefetch(false); // expose the raw latency, as in Sec. 2
        let compiled = compile_loop_with_profile(&lp, &machine, &cfg, trip as f64);
        println!(
            "policy {policy}: II={} stages={} boosted-loads={}",
            compiled.kernel.ii(),
            compiled.kernel.stage_count(),
            compiled.stats.map_or(0, |s| s.boosted_loads),
        );
        println!("{}", compiled.kernel.dump(&compiled.lp));

        let mut ex = Executor::new(
            &compiled.lp,
            &compiled.kernel,
            &machine,
            compiled.regs_total,
            ExecutorConfig {
                stream_mode: StreamMode::Progressive,
                ..ExecutorConfig::default()
            },
        );
        ex.run_entry(trip);
        let c = ex.counters();
        println!(
            "  {} cycles for {} iterations ({:.2} cycles/iter); data stalls {} ({:.1}%)\n",
            c.total,
            trip,
            c.total as f64 / trip as f64,
            c.be_exe_bubble,
            100.0 * c.be_exe_bubble as f64 / c.total as f64
        );
    }

    println!(
        "The boosted schedule runs the same II with more stages; the load\n\
         latency is covered by the schedule and clustered across kernel\n\
         iterations, so the stall share collapses — the effect the paper\n\
         quantifies in Eq. 2 and measures in Sec. 4."
    );
}
