//! The paper's Sec. 6 outlook, implemented: trip-count versioning and
//! dynamic cache-miss sampling.
//!
//! Run with: `cargo run --release --example versioned_dispatch`

use ltsp::core::{
    benchmark_gain, run_benchmark, run_benchmark_sampled, run_benchmark_versioned,
    sample_miss_hints, CompileConfig, LatencyPolicy, RunConfig,
};
use ltsp::machine::MachineModel;
use ltsp::memsim::StreamMode;
use ltsp::workloads::{find_benchmark, hash_walk, mcf_refresh};

fn main() {
    let machine = MachineModel::itanium2();

    println!("== dynamic cache-miss sampling (Sec. 6) ==\n");
    println!("per-reference sampled hints:");
    for (label, lp, trip, mode) in [
        (
            "429.mcf refresh_potential (memory-resident chase)",
            mcf_refresh("rp", 48 << 20),
            3u64,
            StreamMode::Progressive,
        ),
        (
            "445.gobmk board-scan (L1/L2-resident gather)",
            hash_walk("bs", 8 * 1024),
            6,
            StreamMode::Restart,
        ),
    ] {
        let hints = sample_miss_hints(&lp, &machine, trip, 40, mode, 7);
        println!("  {label}:");
        for (i, h) in hints.iter().enumerate() {
            println!(
                "    {:<22} -> {}",
                lp.memrefs()[i].name(),
                h.map_or("no hint".to_string(), |h| format!("hint {h}"))
            );
        }
    }
    println!(
        "\nSampling sees the truth static heuristics cannot: mcf's fields\n\
         really miss (hints), gobmk's gathers really hit (no hints).\n"
    );

    println!("== benchmark-level comparison (no PGO) ==\n");
    for name in ["429.mcf", "445.gobmk", "464.h264ref"] {
        let bench = find_benchmark(name).expect("exists");
        let base = run_benchmark(
            &bench,
            &machine,
            &RunConfig::new(CompileConfig::new(LatencyPolicy::Baseline).with_pgo(false)),
        );
        let hlo = run_benchmark(
            &bench,
            &machine,
            &RunConfig::new(CompileConfig::new(LatencyPolicy::HloHints).with_pgo(false)),
        );
        let sampled = run_benchmark_sampled(
            &bench,
            &machine,
            &RunConfig::new(CompileConfig::new(LatencyPolicy::MissSampled).with_pgo(false)),
            20,
        );
        let versioned = run_benchmark_versioned(
            &bench,
            &machine,
            &RunConfig::new(CompileConfig::new(LatencyPolicy::AllLoadsL3).with_pgo(false)),
        );
        println!(
            "  {name:<14} HLO {:+6.2}%   sampled {:+6.2}%   versioned {:+6.2}%",
            benchmark_gain(&bench, &base, &hlo),
            benchmark_gain(&bench, &base, &sampled),
            benchmark_gain(&bench, &base, &versioned),
        );
    }
    println!(
        "\nVersioning dispatches per entry on the *actual* trip count;\n\
         sampling replaces guessed latencies with measured ones. Both\n\
         remove the static-information failure modes of Fig. 9."
    );
}
