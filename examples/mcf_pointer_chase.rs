//! The paper's Sec. 4.4 case study: 429.mcf's `refresh_potential()` loop.
//!
//! A pointer chase (`node = node->child`) cannot be prefetched and forms a
//! recurrence, so it stays at its base latency; the delinquent field loads
//! hanging off the chase have slack and are boosted. At an average trip
//! count of only 2.3, clustering two instances per entry still wins big.
//!
//! Run with: `cargo run --release --example mcf_pointer_chase`

use ltsp::core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp::ir::SplitMix64;
use ltsp::machine::MachineModel;
use ltsp::memsim::{Executor, ExecutorConfig, StreamMode};
use ltsp::workloads::{mcf_refresh, TripDistribution};

fn main() {
    let machine = MachineModel::itanium2();
    let lp = mcf_refresh("refresh_potential", 48 << 20);
    println!("{lp}\n");

    let trips = TripDistribution::Mixture(vec![(0.75, 2), (0.25, 3)]); // mean 2.25
    let entries = 800u32;

    let mut totals = Vec::new();
    for policy in [LatencyPolicy::Baseline, LatencyPolicy::HloHints] {
        let cfg = CompileConfig::new(policy); // threshold 32, PGO defaults
        let compiled = compile_loop_with_profile(&lp, &machine, &cfg, trips.mean());
        let stats = compiled.stats.expect("pipelines");
        println!(
            "policy {policy}: II={} stages={} boosted={} critical={}",
            compiled.kernel.ii(),
            compiled.kernel.stage_count(),
            stats.boosted_loads,
            stats.critical_loads
        );

        let mut ex = Executor::new(
            &compiled.lp,
            &compiled.kernel,
            &machine,
            compiled.regs_total,
            ExecutorConfig {
                stream_mode: StreamMode::Progressive,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = SplitMix64::new(2024);
        for _ in 0..entries {
            ex.run_entry(trips.sample(&mut rng));
        }
        let c = ex.counters();
        println!(
            "  {} cycles over {} entries; data stalls {:.1}%\n",
            c.total,
            entries,
            100.0 * c.be_exe_bubble as f64 / c.total as f64
        );
        totals.push(c.total);
    }

    println!(
        "loop speedup from HLO-directed hints: {:+.1}% (paper reports ~40%)",
        100.0 * (totals[0] as f64 / totals[1] as f64 - 1.0)
    );
    println!(
        "Note the chase load itself stays at base latency (critical), and\n\
         the trip-count threshold (32) is overridden for the unprefetchable\n\
         fields: expected long latencies justify boosting even at trip 2.3\n\
         (Sec. 3.1)."
    );
}
