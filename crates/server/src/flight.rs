//! The flight recorder: a bounded ring of recent request lifecycles,
//! dumped to disk when something goes wrong.
//!
//! Every handled request appends one [`FlightRecord`] — id, op, request
//! fingerprint, status, cache disposition, and the full per-phase timing
//! breakdown — to a fixed-capacity ring (`Mutex` + [`lock_unpoisoned`];
//! the recorder must keep working after a contained handler panic, which
//! is exactly when it is needed). When a `request_panic`, an injected
//! fault, a dispatcher death, or a write-deadline shed fires, the daemon
//! calls [`FlightRecorder::dump`], which writes the ring as JSONL into
//! `--flight-dir` under a deterministic sequence-numbered name. With no
//! `--flight-dir` configured, dumps are no-ops and the ring still serves
//! in-process inspection.
//!
//! Determinism: record *content* other than the `*_us` phase values is a
//! pure function of the request stream (ids, ops, fingerprints, statuses,
//! cache tags, ring order), and records carry no worker attribution at
//! all. [`normalize_flight_dump`] zeroes every `*_us` field so dumps from
//! the same request sequence compare byte-identical across runs and
//! `--jobs` levels — the chaos suite's jobs-1-vs-4 assertion.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ltsp_cache::Fingerprint;
use ltsp_telemetry::json::{self, JsonValue};
use ltsp_telemetry::lock_unpoisoned;
use ltsp_telemetry::phase::PhaseTimer;

use crate::proto::Request;

/// One request lifecycle as the recorder keeps it.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Request id (client-supplied or content-derived).
    pub id: String,
    /// Request op tag.
    pub op: &'static str,
    /// Content fingerprint of the request (op + loop text), hex.
    pub fingerprint: String,
    /// Response status (`ok` | `rejected` | `error` | ...).
    pub status: &'static str,
    /// Cache disposition (`hit` | `miss` | `-`).
    pub cache: &'static str,
    /// Per-phase microseconds, every phase in fixed order (zeros kept so
    /// the record's shape is deterministic).
    pub phases: Vec<(&'static str, u64)>,
}

impl FlightRecord {
    /// Builds a record from a request's outcome and its phase timer.
    pub fn capture(
        req: &Request,
        status: &'static str,
        cache: &'static str,
        phases: &PhaseTimer,
    ) -> FlightRecord {
        FlightRecord {
            id: req.id.clone(),
            op: req.op.tag(),
            fingerprint: request_fingerprint(req.op.tag(), &req.loop_text).short_hex(),
            status,
            cache,
            phases: phases
                .snapshot()
                .into_iter()
                .map(|(p, us)| (p.name(), us))
                .collect(),
        }
    }

    /// The record as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"id\":\"{}\",\"op\":\"{}\",\"fingerprint\":\"{}\",\"status\":\"{}\",\"cache\":\"{}\",\"phases\":{{",
            json::escape(&self.id),
            self.op,
            self.fingerprint,
            self.status,
            self.cache,
        );
        for (i, (name, us)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}_us\":{us}"));
        }
        out.push_str("}}");
        out
    }
}

/// The bounded ring plus its dump configuration.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<FlightRecord>>,
    cap: usize,
    dir: Option<PathBuf>,
    dumps: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` request lifecycles, dumping
    /// into `dir` when triggered (`None` disables dumping).
    pub fn new(cap: usize, dir: Option<PathBuf>) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            cap: cap.max(1),
            dir,
            dumps: AtomicU64::new(0),
        }
    }

    /// Appends one lifecycle, evicting the oldest past capacity.
    pub fn record(&self, rec: FlightRecord) {
        let mut ring = lock_unpoisoned(&self.ring);
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Records recorded and retained so far.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.ring).len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dumps taken so far (attempted; a missing `--flight-dir` means
    /// triggers fire without producing files).
    pub fn dump_count(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// The current ring contents, oldest first, as JSONL.
    pub fn render_jsonl(&self) -> String {
        let ring = lock_unpoisoned(&self.ring);
        let mut out = String::new();
        for rec in ring.iter() {
            out.push_str(&rec.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Writes the ring to `<dir>/flight-<seq>-<reason>.jsonl` and
    /// returns the path. `None` when no dump directory is configured;
    /// I/O failures are contained (observability must never take the
    /// daemon down) and reported as `None` too.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let seq = self.dumps.fetch_add(1, Ordering::Relaxed) + 1;
        let path = dir.join(format!("flight-{seq:04}-{reason}.jsonl"));
        if std::fs::create_dir_all(dir).is_err() {
            return None;
        }
        match std::fs::write(&path, self.render_jsonl()) {
            Ok(()) => Some(path),
            Err(_) => None,
        }
    }
}

fn zero_us_fields(v: JsonValue) -> JsonValue {
    match v {
        JsonValue::Obj(fields) => JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| {
                    if k.ends_with("_us") {
                        (k, JsonValue::Num(0.0))
                    } else {
                        (k, zero_us_fields(v))
                    }
                })
                .collect(),
        ),
        JsonValue::Arr(items) => JsonValue::Arr(items.into_iter().map(zero_us_fields).collect()),
        other => other,
    }
}

/// Normalizes a flight-recorder dump for cross-run comparison: every
/// `*_us` field (at any nesting depth) is zeroed; ids, ops,
/// fingerprints, statuses, cache tags, field order, and line order are
/// preserved. The flight-recorder analogue of
/// [`ltsp_telemetry::normalize_trace`].
#[must_use]
pub fn normalize_flight_dump(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        match json::parse(line) {
            Ok(v) => zero_us_fields(v).render(&mut out),
            Err(_) => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// Reads every `flight-*.jsonl` dump in a directory, sorted by file
/// name (i.e. dump sequence), as `(file_name, contents)` pairs. Test
/// and tooling helper.
pub fn read_dumps(dir: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("flight-") && name.ends_with(".jsonl") {
            out.push((name, std::fs::read_to_string(entry.path())?));
        }
    }
    out.sort();
    Ok(out)
}

/// The fingerprint helper used for records (exposed for tests).
pub fn request_fingerprint(op_tag: &str, loop_text: &str) -> Fingerprint {
    let mut h = ltsp_cache::FingerprintHasher::new();
    h.write_str("flight-v1");
    h.write_str(op_tag);
    h.write_str(loop_text);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_telemetry::phase::Phase;

    fn rec(i: usize) -> FlightRecord {
        let req = Request {
            id: format!("r-{i}"),
            op: crate::proto::ReqOp::Compile,
            loop_text: format!("loop l{i} {{}}"),
            ..Request::default()
        };
        let t = PhaseTimer::new();
        t.add_us(Phase::Sched, 40 + i as u64);
        t.add_us(Phase::Handler, 100 + i as u64);
        FlightRecord::capture(&req, "ok", "miss", &t)
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let fr = FlightRecorder::new(3, None);
        for i in 0..5 {
            fr.record(rec(i));
        }
        assert_eq!(fr.len(), 3);
        let jsonl = fr.render_jsonl();
        let ids: Vec<&str> = jsonl
            .lines()
            .inspect(|l| {
                json::parse(l).unwrap();
            })
            .collect();
        assert!(ids[0].contains("\"r-2\"") && ids[2].contains("\"r-4\""));
        // No dump dir: triggers are no-ops.
        assert_eq!(fr.dump("test"), None);
    }

    #[test]
    fn records_parse_and_carry_all_phases() {
        let line = rec(0).to_json_line();
        let v = json::parse(&line).expect("valid json");
        assert_eq!(v.get("id").unwrap().as_str(), Some("r-0"));
        assert_eq!(v.get("op").unwrap().as_str(), Some("compile"));
        let phases = v.get("phases").unwrap();
        assert_eq!(phases.get("sched_us").unwrap().as_u64(), Some(40));
        assert_eq!(phases.get("parse_us").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn normalization_zeroes_only_timings() {
        let a = rec(1);
        let mut b = rec(1);
        b.phases = b.phases.iter().map(|&(n, us)| (n, us * 3 + 1)).collect();
        let na = normalize_flight_dump(&a.to_json_line());
        let nb = normalize_flight_dump(&b.to_json_line());
        assert_eq!(na, nb, "same lifecycle, different wall clock");
        let nc = normalize_flight_dump(&rec(2).to_json_line());
        assert_ne!(na, nc, "different requests stay distinct");
    }

    #[test]
    fn dump_writes_jsonl_to_dir() {
        let dir = std::env::temp_dir().join(format!("ltsp-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(8, Some(dir.clone()));
        fr.record(rec(0));
        fr.record(rec(1));
        let p1 = fr.dump("request-panic").expect("dump path");
        let p2 = fr.dump("write-shed").expect("dump path");
        assert!(p1.file_name().unwrap().to_str().unwrap().contains("0001"));
        assert!(p2.file_name().unwrap().to_str().unwrap().contains("0002"));
        let dumps = read_dumps(&dir).expect("readable");
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].1.lines().count(), 2);
        for line in dumps[0].1.lines() {
            json::parse(line).expect("parseable JSONL");
        }
        assert_eq!(fr.dump_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
