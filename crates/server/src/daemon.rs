//! The threaded TCP daemon: connection readers, per-connection writers,
//! a bounded admission queue, one batching dispatcher, and graceful
//! drain — with every failure contained to the request or connection
//! that caused it.
//!
//! # Threading model
//!
//! ```text
//!             accept loop (non-blocking poll, watches drain flag)
//!                  │ one reader + one writer thread per connection
//!                  ▼
//!   reader: read line → parse → admit ──────────► bounded queue
//!           │            │                        (Mutex<VecDeque> + Condvar)
//!           │            └─ parse error → immediate "error" response
//!           └─ queue at high-water → immediate "overloaded" response
//!                  │
//!                  ▼ (single dispatcher thread)
//!   dispatcher: pop up to batch_max jobs → ltsp_par::Pool::map_traced
//!               → enqueue responses (admission order) on each conn's
//!                 bounded outbound queue
//!                  │
//!                  ▼ (per-connection writer thread)
//!   writer: pop outbound line → write under the write deadline
//!           └─ stalled past the deadline → shed the conn (close it)
//! ```
//!
//! # Backpressure state machine
//!
//! The queue has exactly three externally visible states:
//!
//! - **accepting** — `len < high_water`: requests are enqueued and will
//!   be answered in per-connection FIFO order.
//! - **overloaded** — `len ≥ high_water`: the reader answers
//!   `{"status":"overloaded"}` *immediately* (never blocks, never
//!   drops), so a client always learns its request's fate. Admission
//!   re-opens as soon as the dispatcher drains below the mark.
//! - **draining** — after a `shutdown` request or SIGTERM/SIGINT: no
//!   new admissions (late requests get `{"status":"draining"}`), queued
//!   and in-flight work completes, readers close once idle, the
//!   dispatcher exits when the queue is empty, and [`serve`] returns.
//!
//! # Fault containment
//!
//! Every blocking edge has a deadline and every failure has a contained
//! recovery (DESIGN.md §13):
//!
//! - **A panicking request** is caught (`catch_unwind` around
//!   [`Engine::handle`], on the fast path and per pool item), answered
//!   `status:"error"` with the panic payload, recorded as an
//!   [`Event::RequestPanic`], and forgotten — the daemon keeps serving.
//!   Locks are poison-tolerant ([`ltsp_telemetry::lock_unpoisoned`]),
//!   so an unwinding thread cannot cascade-abort the process.
//! - **A stalled client** sheds its *own* responses: the dispatcher
//!   only ever enqueues onto a bounded per-connection outbound queue
//!   (never blocks on a socket), and the connection's writer thread
//!   kills the connection once a write stalls past
//!   [`ServerConfig::write_deadline`] or the queue overflows
//!   [`ServerConfig::outbound_max`]. Other connections never wait.
//! - **A dying dispatcher** (the one per-process thread) is loud, not
//!   silent: drain trips immediately, an
//!   `Event::ServerLifecycle { phase: "dispatcher-died" }` fires, and
//!   every queued request is answered `error` — nothing is admitted
//!   into a queue nobody drains.
//! - **Injected faults** ([`FaultPlan`], `LTSP_FAULT`) exercise all of
//!   the above deterministically: handler panics and delays key on the
//!   request id, connection drops and torn writes on the response id —
//!   pure functions of the spec, independent of timing and batching.
//!
//! # Drain semantics
//!
//! The drain flag only ever flips **under the queue lock**, and the
//! dispatcher's exit check (`draining && queue empty`) also holds it.
//! Admission therefore observes a total order against drain: a request
//! either lands in the queue before the flip — and is guaranteed to be
//! served — or sees the flag and is answered `draining`. Nothing is
//! admitted and then abandoned.
//!
//! # Determinism
//!
//! Batch *composition* depends on arrival timing and is not
//! deterministic — but every response is a pure function of its request
//! (see [`crate::engine`]), results inside a batch are merged in
//! admission order by [`ltsp_par::Pool::map_traced`], and each
//! connection's outbound queue preserves admission order. The bytes
//! each client reads are therefore identical at any `--jobs`, which CI
//! enforces — and because fault decisions are also request-keyed, the
//! same holds for every *non-faulted* request under an active
//! [`FaultPlan`] (the chaos tests' core assertion).

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ltsp_telemetry::phase::{Phase, PhaseTimer};
use ltsp_telemetry::{lock_unpoisoned, Event, Telemetry};

use crate::engine::{Engine, EngineConfig};
use crate::fault::{FaultPlan, FaultSite};
use crate::flight::FlightRecord;
use crate::proto::{parse_request, ReqOp, Request, Response};

/// How often blocked loops (accept, idle reads, stalled writes) re-check
/// the drain flag.
const POLL: Duration = Duration::from_millis(25);

/// Exit code of a process killed by the injected `shardkill` fault, so
/// supervisors and chaos tests can tell an injected kill from a crash.
pub const SHARD_KILL_EXIT_CODE: i32 = 113;

/// Full daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads per dispatch batch.
    pub jobs: usize,
    /// Max requests fused into one pool batch.
    pub batch_max: usize,
    /// Admission-queue high-water mark: at or past it, new requests are
    /// answered `overloaded`.
    pub queue_high_water: usize,
    /// Per-connection outbound-queue cap: responses past it are shed
    /// (the client stopped reading; its own responses pay, nobody
    /// else's).
    pub outbound_max: usize,
    /// How long one response write may stall before the connection is
    /// declared dead and closed.
    pub write_deadline: Duration,
    /// Drain gracefully on SIGTERM/SIGINT. Process-global, so off by
    /// default; the `ltspd` / `ltspc serve` binaries turn it on.
    pub handle_signals: bool,
    /// Engine knobs (caches, oracle budgets).
    pub engine: EngineConfig,
    /// Deterministic fault injection (`LTSP_FAULT`); inactive by
    /// default.
    pub fault: FaultPlan,
    /// Telemetry sink for server events and cache metrics.
    pub telemetry: Telemetry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7099".to_string(),
            jobs: 1,
            batch_max: 32,
            queue_high_water: 256,
            outbound_max: 128,
            write_deadline: Duration::from_secs(5),
            handle_signals: false,
            engine: EngineConfig::default(),
            fault: FaultPlan::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// One admitted request plus where its response goes.
struct Job {
    req: Request,
    conn: Arc<Conn>,
    /// Admission time, for the `queue_wait` phase span.
    enqueued_at: Instant,
}

/// A connection's bounded outbound queue, drained by its writer thread.
#[derive(Default)]
struct Outbound {
    /// `(response id, rendered line)` in enqueue (= admission) order.
    queue: VecDeque<(String, String)>,
    /// The reader finished; the writer flushes what is queued (and what
    /// in-flight jobs still enqueue) and exits once it is the last
    /// holder.
    closed: bool,
    /// The connection was declared dead (stalled past the write
    /// deadline, injected drop, or a hard I/O error): discard
    /// everything, immediately.
    dead: bool,
    /// Responses dropped because the queue was full.
    shed: u64,
}

/// The sending half of a connection, shared by its reader thread
/// (admission responses), the dispatcher (batch responses), and its
/// writer thread (the only place that touches the socket for writes).
///
/// [`Conn::send`] only ever enqueues — it never blocks on the network —
/// so a client that stops reading can only stall its own writer thread,
/// never the dispatcher.
struct Conn {
    out: Mutex<Outbound>,
    ready: Condvar,
    max: usize,
}

impl Conn {
    fn new(max: usize) -> Conn {
        Conn {
            out: Mutex::new(Outbound::default()),
            ready: Condvar::new(),
            max: max.max(1),
        }
    }

    /// Enqueues a response for the writer thread. Never blocks: a full
    /// queue sheds the response (the client is not reading; shedding its
    /// own responses is the contained failure), a dead connection
    /// discards it.
    fn send(&self, resp: &Response) {
        let mut line = resp.render();
        line.push('\n');
        {
            let mut out = lock_unpoisoned(&self.out);
            if out.dead {
                return;
            }
            if out.queue.len() >= self.max {
                out.shed += 1;
                return;
            }
            out.queue.push_back((resp.id.clone(), line));
        }
        self.ready.notify_one();
    }

    /// Marks the reader side finished: the writer flushes and exits.
    fn close(&self) {
        lock_unpoisoned(&self.out).closed = true;
        self.ready.notify_all();
    }

    /// Declares the connection dead and discards everything queued.
    fn kill(&self) -> u64 {
        let mut out = lock_unpoisoned(&self.out);
        out.dead = true;
        let dropped = out.queue.len() as u64;
        out.queue.clear();
        out.shed += dropped;
        let shed = out.shed;
        drop(out);
        self.ready.notify_all();
        shed
    }
}

/// Shared daemon state.
struct State {
    engine: Engine,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    draining: AtomicBool,
    cfg: ServerConfig,
}

impl State {
    /// Admits a job, or answers immediately when overloaded/draining.
    /// The draining check happens under the queue lock — see the module
    /// docs' drain semantics.
    fn admit(&self, req: Request, conn: &Arc<Conn>, tel: &Telemetry) {
        let verdict = {
            let mut q = lock_unpoisoned(&self.queue);
            if self.draining.load(Ordering::SeqCst) {
                Some(("draining", "server is draining".to_string()))
            } else if q.len() >= self.cfg.queue_high_water {
                Some((
                    "overloaded",
                    format!(
                        "admission queue at high-water mark ({})",
                        self.cfg.queue_high_water
                    ),
                ))
            } else {
                q.push_back(Job {
                    req: req.clone(),
                    conn: Arc::clone(conn),
                    enqueued_at: Instant::now(),
                });
                self.engine
                    .gauges
                    .queue_depth
                    .store(q.len() as u64, Ordering::Relaxed);
                None
            }
        };
        match verdict {
            None => self.ready.notify_one(),
            Some((status, msg)) => {
                let resp = Response::error(&req.id, status, &msg);
                conn.send(&self.engine.finish(&req, resp, tel));
            }
        }
    }

    fn start_drain(&self, why: &str, tel: &Telemetry) {
        let flipped = {
            let _q = lock_unpoisoned(&self.queue);
            !self.draining.swap(true, Ordering::SeqCst)
        };
        if flipped && tel.is_enabled() {
            tel.emit(Event::ServerLifecycle {
                phase: "drain",
                detail: why.to_string(),
            });
        }
        self.ready.notify_all();
    }
}

/// A running server: the actually bound address plus a way to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    join: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates drain (as if a `shutdown` request arrived) and waits
    /// for the daemon to finish in-flight work and exit.
    pub fn shutdown(self) {
        let tel = self.state.cfg.telemetry.clone();
        self.state.start_drain("handle shutdown", &tel);
        let _ = self.join.join();
    }

    /// Waits for the daemon to exit on its own (client `shutdown`
    /// request or a signal).
    pub fn wait(self) {
        let _ = self.join.join();
    }
}

/// Binds and serves in a background thread; returns once the listener
/// is accepting. Used by in-process tests and `ltspc serve`/`ltspd`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(State {
        engine: Engine::new(cfg.engine.clone()),
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        draining: AtomicBool::new(false),
        cfg,
    });
    if state.cfg.handle_signals {
        install_signal_drain(&state);
    }
    let st = Arc::clone(&state);
    let join = thread::Builder::new()
        .name("ltspd-accept".to_string())
        .spawn(move || run(listener, st))
        .expect("spawn ltspd accept thread");
    Ok(ServerHandle { addr, state, join })
}

/// Binds and serves on the caller's thread until drained. This is the
/// blocking entry `ltspd` and `ltspc serve` use.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(cfg: ServerConfig) -> std::io::Result<()> {
    spawn(cfg)?.wait();
    Ok(())
}

/// Installs a SIGTERM/SIGINT hook that drains this server (Unix only;
/// signal handlers are process-global, hence the [`ServerConfig`] gate).
#[cfg(unix)]
fn install_signal_drain(state: &Arc<State>) {
    use std::sync::OnceLock;
    static TERM_FLAG: OnceLock<&'static AtomicBool> = OnceLock::new();
    // The handler only flips an atomic — async-signal-safe. A watcher
    // thread folds it into the server's drain state (the handler itself
    // cannot lock).
    extern "C" fn on_term(_sig: i32) {
        if let Some(flag) = TERM_FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let flag: &'static AtomicBool =
        TERM_FLAG.get_or_init(|| Box::leak(Box::new(AtomicBool::new(false))));
    let handler = on_term as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
    let st = Arc::downgrade(state);
    thread::Builder::new()
        .name("ltspd-signal".to_string())
        .spawn(move || loop {
            thread::sleep(POLL);
            let Some(state) = st.upgrade() else { return };
            if flag.load(Ordering::SeqCst) {
                let tel = state.cfg.telemetry.clone();
                state.start_drain("signal", &tel);
                return;
            }
            if state.draining.load(Ordering::SeqCst) {
                return;
            }
        })
        .ok();
}

#[cfg(not(unix))]
fn install_signal_drain(_state: &Arc<State>) {}

fn run(listener: TcpListener, state: Arc<State>) {
    let tel = state.cfg.telemetry.clone();
    if tel.is_enabled() {
        tel.emit(Event::ServerLifecycle {
            phase: "listen",
            detail: listener
                .local_addr()
                .map_or_else(|_| state.cfg.addr.clone(), |a| a.to_string()),
        });
    }
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");

    // The dispatcher is the one per-process serving thread: its death
    // must be loud and terminal, never a silently wedged queue. A panic
    // escaping `dispatch_loop` (worker spawn failure, a bug outside the
    // per-request containment) trips drain, announces itself, and
    // answers everything still queued with an error.
    let dispatcher = {
        let state = Arc::clone(&state);
        let tel = tel.clone();
        thread::Builder::new()
            .name("ltspd-dispatch".to_string())
            .spawn(move || {
                let died = catch_unwind(AssertUnwindSafe(|| dispatch_loop(&state, &tel)));
                if let Err(payload) = died {
                    let why = panic_message(payload.as_ref());
                    eprintln!("ltspd: dispatcher died: {why}");
                    state
                        .engine
                        .gauges
                        .dispatcher_deaths
                        .fetch_add(1, Ordering::Relaxed);
                    state.engine.flight.dump("dispatcher-died");
                    tel.emit(Event::ServerLifecycle {
                        phase: "dispatcher-died",
                        detail: why.clone(),
                    });
                    // Flip drain first (under the queue lock): after
                    // this, nothing new is admitted, so one sweep
                    // answers every job that beat the flip.
                    state.start_drain("dispatcher died", &tel);
                    let orphans: Vec<Job> = {
                        let mut q = lock_unpoisoned(&state.queue);
                        q.drain(..).collect()
                    };
                    for job in orphans {
                        let resp = Response::error(
                            &job.req.id,
                            "error",
                            &format!("dispatcher died ({why}); request abandoned"),
                        );
                        job.conn.send(&state.engine.finish(&job.req, resp, &tel));
                    }
                }
            })
            .expect("spawn ltspd dispatcher")
    };

    let mut readers = Vec::new();
    while !state.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(&state);
                let tel = tel.clone();
                readers.push(
                    thread::Builder::new()
                        .name("ltspd-conn".to_string())
                        .spawn(move || reader_loop(stream, &state, &tel))
                        .expect("spawn ltspd reader"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => break,
        }
    }
    drop(listener);
    for r in readers {
        let _ = r.join();
    }
    let _ = dispatcher.join();
    // Drain the refinement queue too: upgrades already scheduled still
    // land (and persist) before the process exits.
    state.engine.refine_shutdown();
    state.engine.export_metrics(&tel);
    if tel.is_enabled() {
        tel.emit(Event::ServerLifecycle {
            phase: "stopped",
            detail: String::new(),
        });
    }
}

/// Stringifies a panic payload (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs one request with its failure contained: injected delays and
/// panics fire here (keyed on the request id), and *any* panic out of
/// [`Engine::handle`] — injected or real — becomes a `status:"error"`
/// response plus an [`Event::RequestPanic`], never a dead daemon.
///
/// Also the head of the server-side lifecycle spans: `queue_wait`
/// (admission → batch pop), `dispatch` (pop → handler entry). A slow
/// fault's sleep lands in `dispatch` — the delay is real latency and
/// must not vanish from the breakdown — and a panicking request is
/// flight-recorded here (the engine's own observation point never ran)
/// and triggers a `request-panic` dump.
fn handle_contained(
    state: &State,
    req: &Request,
    enqueued_at: Instant,
    popped_at: Instant,
    tel: &Telemetry,
) -> Response {
    let phases = PhaseTimer::new();
    phases.add_us(
        Phase::QueueWait,
        popped_at.duration_since(enqueued_at).as_micros() as u64,
    );
    let fault = &state.cfg.fault;
    let mut fault_fired = false;
    if fault.is_active() && fault.fires(FaultSite::ShardKill, &req.id) {
        // The cluster chaos drill: die mid-request, before any response
        // bytes exist, exactly like a crashed shard. The router in front
        // must observe the dead connection and fail this request over.
        // Keyed on the request id, so tests can predict the kill point.
        eprintln!(
            "ltspd: injected shard kill at request {} (exiting {})",
            req.id, SHARD_KILL_EXIT_CODE
        );
        std::process::exit(SHARD_KILL_EXIT_CODE);
    }
    if fault.is_active() && fault.fires(FaultSite::Slow, &req.id) {
        fault_fired = true;
        state
            .engine
            .gauges
            .faults_injected
            .fetch_add(1, Ordering::Relaxed);
        if tel.is_enabled() {
            tel.emit(Event::FaultInjected {
                site: "slow",
                trace_id: req.id.clone(),
            });
        }
        thread::sleep(fault.slow);
    }
    phases.add_us(Phase::Dispatch, popped_at.elapsed().as_micros() as u64);
    let result = catch_unwind(AssertUnwindSafe(|| {
        if fault.is_active() && fault.fires(FaultSite::Panic, &req.id) {
            state
                .engine
                .gauges
                .faults_injected
                .fetch_add(1, Ordering::Relaxed);
            if tel.is_enabled() {
                tel.emit(Event::FaultInjected {
                    site: "panic",
                    trace_id: req.id.clone(),
                });
            }
            panic!("injected handler panic for request {}", req.id);
        }
        state.engine.handle_phased(req, tel, &phases)
    }));
    match result {
        Ok(resp) => {
            if fault_fired {
                state.engine.flight.dump("fault-injected");
            }
            resp
        }
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            state
                .engine
                .gauges
                .request_panics
                .fetch_add(1, Ordering::Relaxed);
            if tel.is_enabled() {
                tel.emit(Event::RequestPanic {
                    trace_id: req.id.clone(),
                    op: req.op.tag(),
                    payload: msg.clone(),
                });
            }
            let resp = Response::error(
                &req.id,
                "error",
                &format!("request handler panicked: {msg}"),
            );
            let resp = state.engine.finish(req, resp, tel);
            state
                .engine
                .flight
                .record(FlightRecord::capture(req, "error", "-", &phases));
            state.engine.flight.dump("request-panic");
            resp
        }
    }
}

/// Per-connection reader: frame lines, answer protocol errors and
/// `shutdown` inline, admit the rest.
///
/// Framing is done by hand on a byte buffer rather than
/// `BufReader::read_line` because reads run under a poll timeout, and
/// `read_line` discards partially read bytes when it returns an error —
/// a request split across TCP segments would be corrupted.
fn reader_loop(mut stream: TcpStream, state: &Arc<State>, tel: &Telemetry) {
    // Accepted sockets may inherit the listener's non-blocking mode on
    // some platforms; normalize to blocking-with-timeout. Nagle off:
    // responses are single small writes and latency is the product.
    if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Conn::new(state.cfg.outbound_max));
    state
        .engine
        .gauges
        .connections
        .fetch_add(1, Ordering::Relaxed);
    let writer = {
        let conn = Arc::clone(&conn);
        let state = Arc::clone(state);
        let tel = tel.clone();
        thread::Builder::new()
            .name("ltspd-write".to_string())
            .spawn(move || writer_loop(&conn, write_half, &state, &tel))
            .expect("spawn ltspd writer")
    };
    read_requests(&mut stream, &conn, state, tel);
    conn.close();
    // Drop our handle *before* joining: the writer exits once it is the
    // last holder (queued jobs done, outbound flushed).
    drop(conn);
    let _ = writer.join();
    state
        .engine
        .gauges
        .connections
        .fetch_sub(1, Ordering::Relaxed);
}

/// The reader's framing/admission loop (split out so [`reader_loop`]
/// can run cleanup — close + join the writer — on every exit path).
fn read_requests(stream: &mut TcpStream, conn: &Arc<Conn>, state: &Arc<State>, tel: &Telemetry) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle: close once the server is draining, else keep
                // waiting for the next request.
                if state.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // The writer may have declared the connection dead (stalled
        // past the write deadline); stop reading from it too.
        if lock_unpoisoned(&conn.out).dead {
            return;
        }
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_request(line) {
                Ok(req) if req.op == ReqOp::Shutdown => {
                    let resp = Response {
                        id: req.id.clone(),
                        status: "draining",
                        cache: "-",
                        body: ",\"op\":\"shutdown\"".to_string(),
                        timings: None,
                    };
                    conn.send(&state.engine.finish(&req, resp, tel));
                    state.start_drain("shutdown request", tel);
                    return;
                }
                Ok(req) => state.admit(req, conn, tel),
                Err(e) => {
                    let resp = Response::error(&e.id, "error", &e.message);
                    conn.send(&state.engine.finish_admission(&e.id, "proto", resp, tel));
                }
            }
        }
    }
}

/// Per-connection writer: drains the bounded outbound queue onto the
/// socket under the write deadline. This is the only thread that writes
/// to the socket, so a stalled client stalls exactly one thread — and
/// only until the deadline kills the connection.
fn writer_loop(conn: &Arc<Conn>, mut stream: TcpStream, state: &State, tel: &Telemetry) {
    let _ = stream.set_write_timeout(Some(POLL));
    let fault = &state.cfg.fault;
    loop {
        let next = {
            let mut out = lock_unpoisoned(&conn.out);
            loop {
                if out.dead {
                    return;
                }
                if let Some(item) = out.queue.pop_front() {
                    break Some(item);
                }
                // Flush complete: exit once nobody can enqueue anymore
                // (reader gone, no queued/in-flight job holds the conn).
                if out.closed && Arc::strong_count(conn) == 1 {
                    break None;
                }
                // Timed wait: job completions don't notify the condvar,
                // so re-check the strong count periodically.
                let (guard, _timeout) = conn
                    .ready
                    .wait_timeout(out, POLL)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                out = guard;
            }
        };
        let Some((id, line)) = next else { return };
        if fault.is_active() && fault.fires(FaultSite::Drop, &id) {
            state
                .engine
                .gauges
                .faults_injected
                .fetch_add(1, Ordering::Relaxed);
            if tel.is_enabled() {
                tel.emit(Event::FaultInjected {
                    site: "drop",
                    trace_id: id.clone(),
                });
            }
            shed_connection(conn, &stream, state, tel, "injected connection drop");
            state.engine.flight.dump("fault-injected");
            return;
        }
        let torn = fault.is_active() && fault.fires(FaultSite::ShortWrite, &id);
        let write_start = Instant::now();
        let wrote = if torn && line.len() >= 2 {
            state
                .engine
                .gauges
                .faults_injected
                .fetch_add(1, Ordering::Relaxed);
            if tel.is_enabled() {
                tel.emit(Event::FaultInjected {
                    site: "short-write",
                    trace_id: id.clone(),
                });
            }
            // A torn write: the same bytes in two TCP segments. Client
            // framing must reassemble them — the response is *not*
            // faulted, and chaos tests assert it stays byte-identical.
            let mid = line.len() / 2;
            write_with_deadline(&mut stream, line.as_bytes()[..mid].as_ref(), state)
                .and_then(|()| write_with_deadline(&mut stream, &line.as_bytes()[mid..], state))
        } else {
            write_with_deadline(&mut stream, line.as_bytes(), state)
        };
        match wrote {
            Ok(()) => {
                let _ = stream.flush();
                // The outbound write happens after the response is
                // rendered, so it can never ride on the request's own
                // timer — it feeds the phase histogram directly.
                state
                    .engine
                    .record_phase_sample(Phase::Write, write_start.elapsed().as_micros() as u64);
            }
            Err(e) => {
                // A vanished client is not a server error; a stalled one
                // is shed. Either way the connection is done.
                let why = if e.kind() == std::io::ErrorKind::TimedOut {
                    "write deadline exceeded (stalled client)"
                } else {
                    "client connection lost"
                };
                shed_connection(conn, &stream, state, tel, why);
                if e.kind() == std::io::ErrorKind::TimedOut {
                    state.engine.flight.dump("write-shed");
                }
                return;
            }
        }
    }
}

/// Declares a connection dead: discards its outbound queue, shuts the
/// socket down (which also unblocks its reader), and accounts the shed.
fn shed_connection(conn: &Conn, stream: &TcpStream, state: &State, tel: &Telemetry, why: &str) {
    let shed = conn.kill();
    let _ = stream.shutdown(Shutdown::Both);
    state
        .engine
        .gauges
        .conn_shed
        .fetch_add(1, Ordering::Relaxed);
    state
        .engine
        .gauges
        .responses_shed
        .fetch_add(shed, Ordering::Relaxed);
    if tel.is_enabled() {
        tel.warn(format!("connection shed: {why} ({shed} responses dropped)"));
        tel.counter_add("serve.conn.shed", 1);
        tel.counter_add("serve.responses.shed", shed);
    }
}

/// Writes the whole buffer, tolerating per-chunk timeouts as long as
/// the write makes progress, and giving up once a single stall lasts
/// past [`ServerConfig::write_deadline`].
fn write_with_deadline(stream: &mut TcpStream, buf: &[u8], state: &State) -> std::io::Result<()> {
    let mut off = 0;
    let mut stall_start = Instant::now();
    while off < buf.len() {
        match stream.write(&buf[off..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket closed mid-response",
                ))
            }
            Ok(n) => {
                off += n;
                stall_start = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stall_start.elapsed() >= state.cfg.write_deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "write deadline exceeded",
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The single dispatcher: pop up to `batch_max` jobs, run them on the
/// pool (forked telemetry, index-ordered merge), enqueue responses in
/// admission order. Each job runs under [`handle_contained`]; the
/// dispatcher itself never blocks on a socket and never unwinds past a
/// request.
fn dispatch_loop(state: &Arc<State>, tel: &Telemetry) {
    let pool = ltsp_par::Pool::new(state.cfg.jobs);
    let fault = &state.cfg.fault;
    loop {
        let batch: Vec<Job> = {
            let mut q = lock_unpoisoned(&state.queue);
            while q.is_empty() && !state.draining.load(Ordering::SeqCst) {
                let (guard, _timeout) = state
                    .ready
                    .wait_timeout(q, POLL)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
            }
            if q.is_empty() {
                // Draining and empty — and since drain flips under this
                // lock, nothing can be admitted after this observation.
                return;
            }
            // The dispatcher-death drill: fire *before* popping, so the
            // queue is intact for the died-handler's error sweep.
            if fault.is_active() {
                if let Some(front) = q.front() {
                    if fault.fires(FaultSite::Dispatch, &front.req.id) {
                        let id = front.req.id.clone();
                        drop(q);
                        if tel.is_enabled() {
                            tel.emit(Event::FaultInjected {
                                site: "dispatch",
                                trace_id: id.clone(),
                            });
                        }
                        panic!("injected dispatcher panic at request {id}");
                    }
                }
            }
            let n = q.len().min(state.cfg.batch_max);
            let batch: Vec<Job> = q.drain(..n).collect();
            state
                .engine
                .gauges
                .queue_depth
                .store(q.len() as u64, Ordering::Relaxed);
            batch
        };
        let popped_at = Instant::now();
        let gauges = &state.engine.gauges;
        gauges
            .inflight
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        // Fast path: a lone request runs on the dispatcher thread — no
        // worker spawn, so a cache hit costs microseconds, not a thread.
        // Telemetry still goes through fork/absorb, same as the pool.
        if let [job] = batch.as_slice() {
            let resp = if tel.is_enabled() {
                let child = tel.fork();
                let resp = handle_contained(state, &job.req, job.enqueued_at, popped_at, &child);
                tel.absorb(child, 0);
                resp
            } else {
                handle_contained(state, &job.req, job.enqueued_at, popped_at, tel)
            };
            job.conn.send(&resp);
            gauges.inflight.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        // Identical requests inside one batch must not race on the
        // result cache: the loser's "cache" tag would depend on worker
        // timing, a --jobs-dependent byte in the response stream. First
        // occurrences of each key run on the pool; duplicates replay
        // afterwards in admission order, where they hit the cache
        // exactly as a serial run would.
        let keys: Vec<_> = batch
            .iter()
            .map(|j| state.engine.request_key(&j.req))
            .collect();
        let follower: Vec<bool> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| k.is_some() && keys[..i].contains(k))
            .collect();
        let leader_idx: Vec<usize> = (0..batch.len()).filter(|&i| !follower[i]).collect();
        let leader_resps = pool.map_traced(tel, "serve-batch", &leader_idx, |tel, _i, &idx| {
            let job = &batch[idx];
            handle_contained(state, &job.req, job.enqueued_at, popped_at, tel)
        });
        let mut responses: Vec<Option<Response>> = batch.iter().map(|_| None).collect();
        for (&idx, resp) in leader_idx.iter().zip(leader_resps) {
            responses[idx] = Some(resp);
        }
        for (i, job) in batch.iter().enumerate() {
            if !follower[i] {
                continue;
            }
            let resp = if tel.is_enabled() {
                let child = tel.fork();
                let resp = handle_contained(state, &job.req, job.enqueued_at, popped_at, &child);
                tel.absorb(child, 0);
                resp
            } else {
                handle_contained(state, &job.req, job.enqueued_at, popped_at, tel)
            };
            responses[i] = Some(resp);
        }
        for (job, resp) in batch.iter().zip(&responses) {
            job.conn
                .send(resp.as_ref().expect("every batch job is answered"));
        }
        gauges
            .inflight
            .fetch_sub(batch.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a thread panicking while holding a daemon lock used
    /// to poison it, turning every later `.lock().unwrap()` into a
    /// cascading abort of the whole process. Poison-tolerant locking
    /// must shrug it off.
    #[test]
    fn a_poisoned_outbound_lock_does_not_cascade() {
        let conn = Arc::new(Conn::new(4));
        let poisoner = Arc::clone(&conn);
        let _ = thread::spawn(move || {
            let _guard = poisoner.out.lock().unwrap();
            panic!("poison the outbound lock");
        })
        .join();
        assert!(conn.out.lock().is_err(), "lock should be poisoned");
        // send/close/kill all reacquire the poisoned lock; none may panic.
        conn.send(&Response::error("x", "error", "after poison"));
        assert_eq!(lock_unpoisoned(&conn.out).queue.len(), 1);
        conn.close();
        assert_eq!(conn.kill(), 1, "the queued response is discarded");
        conn.send(&Response::error("y", "error", "dead conn"));
        assert!(lock_unpoisoned(&conn.out).queue.is_empty());
    }

    /// A full outbound queue sheds new responses instead of blocking.
    #[test]
    fn outbound_overflow_sheds_instead_of_blocking() {
        let conn = Conn::new(2);
        for i in 0..5 {
            conn.send(&Response::error(&format!("r{i}"), "error", "x"));
        }
        let out = lock_unpoisoned(&conn.out);
        assert_eq!(out.queue.len(), 2, "capacity respected");
        assert_eq!(out.shed, 3, "overflow accounted");
    }
}
