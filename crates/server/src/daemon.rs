//! The threaded TCP daemon: connection readers, a bounded admission
//! queue, one batching dispatcher, and graceful drain.
//!
//! # Threading model
//!
//! ```text
//!             accept loop (non-blocking poll, watches drain flag)
//!                  │ one reader thread per connection
//!                  ▼
//!   reader: read line → parse → admit ──────────► bounded queue
//!           │            │                        (Mutex<VecDeque> + Condvar)
//!           │            └─ parse error → immediate "error" response
//!           └─ queue at high-water → immediate "overloaded" response
//!                  │
//!                  ▼ (single dispatcher thread)
//!   dispatcher: pop up to batch_max jobs → ltsp_par::Pool::map_traced
//!               → write responses in admission order
//! ```
//!
//! # Backpressure state machine
//!
//! The queue has exactly three externally visible states:
//!
//! - **accepting** — `len < high_water`: requests are enqueued and will
//!   be answered in per-connection FIFO order.
//! - **overloaded** — `len ≥ high_water`: the reader answers
//!   `{"status":"overloaded"}` *immediately* (never blocks, never
//!   drops), so a client always learns its request's fate. Admission
//!   re-opens as soon as the dispatcher drains below the mark.
//! - **draining** — after a `shutdown` request or SIGTERM/SIGINT: no
//!   new admissions (late requests get `{"status":"draining"}`), queued
//!   and in-flight work completes, readers close once idle, the
//!   dispatcher exits when the queue is empty, and [`serve`] returns.
//!
//! # Drain semantics
//!
//! The drain flag only ever flips **under the queue lock**, and the
//! dispatcher's exit check (`draining && queue empty`) also holds it.
//! Admission therefore observes a total order against drain: a request
//! either lands in the queue before the flip — and is guaranteed to be
//! served — or sees the flag and is answered `draining`. Nothing is
//! admitted and then abandoned.
//!
//! # Determinism
//!
//! Batch *composition* depends on arrival timing and is not
//! deterministic — but every response is a pure function of its request
//! (see [`crate::engine`]), results inside a batch are merged in
//! admission order by [`ltsp_par::Pool::map_traced`], and responses per
//! connection are written in admission order. The bytes each client
//! reads are therefore identical at any `--jobs`, which CI enforces.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use ltsp_telemetry::{Event, Telemetry};

use crate::engine::{Engine, EngineConfig};
use crate::proto::{parse_request, ReqOp, Request, Response};

/// How often blocked loops (accept, idle reads) re-check the drain flag.
const POLL: Duration = Duration::from_millis(25);

/// Full daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads per dispatch batch.
    pub jobs: usize,
    /// Max requests fused into one pool batch.
    pub batch_max: usize,
    /// Admission-queue high-water mark: at or past it, new requests are
    /// answered `overloaded`.
    pub queue_high_water: usize,
    /// Drain gracefully on SIGTERM/SIGINT. Process-global, so off by
    /// default; the `ltspd` / `ltspc serve` binaries turn it on.
    pub handle_signals: bool,
    /// Engine knobs (caches, oracle budgets).
    pub engine: EngineConfig,
    /// Telemetry sink for server events and cache metrics.
    pub telemetry: Telemetry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7099".to_string(),
            jobs: 1,
            batch_max: 32,
            queue_high_water: 256,
            handle_signals: false,
            engine: EngineConfig::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// One admitted request plus where its response goes.
struct Job {
    req: Request,
    conn: Arc<Conn>,
}

/// A connection's write half, shared by its reader thread (admission
/// responses) and the dispatcher (batch responses).
struct Conn {
    stream: Mutex<TcpStream>,
}

impl Conn {
    fn send(&self, resp: &Response) {
        let mut line = resp.render();
        line.push('\n');
        let mut s = self.stream.lock().unwrap();
        // A vanished client is not a server error; drop the response.
        let _ = s.write_all(line.as_bytes());
        let _ = s.flush();
    }
}

/// Shared daemon state.
struct State {
    engine: Engine,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    draining: AtomicBool,
    cfg: ServerConfig,
}

impl State {
    /// Admits a job, or answers immediately when overloaded/draining.
    /// The draining check happens under the queue lock — see the module
    /// docs' drain semantics.
    fn admit(&self, req: Request, conn: &Arc<Conn>, tel: &Telemetry) {
        let verdict = {
            let mut q = self.queue.lock().unwrap();
            if self.draining.load(Ordering::SeqCst) {
                Some(("draining", "server is draining".to_string()))
            } else if q.len() >= self.cfg.queue_high_water {
                Some((
                    "overloaded",
                    format!(
                        "admission queue at high-water mark ({})",
                        self.cfg.queue_high_water
                    ),
                ))
            } else {
                q.push_back(Job {
                    req: req.clone(),
                    conn: Arc::clone(conn),
                });
                None
            }
        };
        match verdict {
            None => self.ready.notify_one(),
            Some((status, msg)) => {
                let resp = Response::error(&req.id, status, &msg);
                conn.send(&self.engine.finish(&req, resp, tel));
            }
        }
    }

    fn start_drain(&self, why: &str, tel: &Telemetry) {
        let flipped = {
            let _q = self.queue.lock().unwrap();
            !self.draining.swap(true, Ordering::SeqCst)
        };
        if flipped && tel.is_enabled() {
            tel.emit(Event::ServerLifecycle {
                phase: "drain",
                detail: why.to_string(),
            });
        }
        self.ready.notify_all();
    }
}

/// A running server: the actually bound address plus a way to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    join: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates drain (as if a `shutdown` request arrived) and waits
    /// for the daemon to finish in-flight work and exit.
    pub fn shutdown(self) {
        let tel = self.state.cfg.telemetry.clone();
        self.state.start_drain("handle shutdown", &tel);
        let _ = self.join.join();
    }

    /// Waits for the daemon to exit on its own (client `shutdown`
    /// request or a signal).
    pub fn wait(self) {
        let _ = self.join.join();
    }
}

/// Binds and serves in a background thread; returns once the listener
/// is accepting. Used by in-process tests and `ltspc serve`/`ltspd`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(State {
        engine: Engine::new(cfg.engine.clone()),
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        draining: AtomicBool::new(false),
        cfg,
    });
    if state.cfg.handle_signals {
        install_signal_drain(&state);
    }
    let st = Arc::clone(&state);
    let join = thread::Builder::new()
        .name("ltspd-accept".to_string())
        .spawn(move || run(listener, st))
        .expect("spawn ltspd accept thread");
    Ok(ServerHandle { addr, state, join })
}

/// Binds and serves on the caller's thread until drained. This is the
/// blocking entry `ltspd` and `ltspc serve` use.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(cfg: ServerConfig) -> std::io::Result<()> {
    spawn(cfg)?.wait();
    Ok(())
}

/// Installs a SIGTERM/SIGINT hook that drains this server (Unix only;
/// signal handlers are process-global, hence the [`ServerConfig`] gate).
#[cfg(unix)]
fn install_signal_drain(state: &Arc<State>) {
    use std::sync::OnceLock;
    static TERM_FLAG: OnceLock<&'static AtomicBool> = OnceLock::new();
    // The handler only flips an atomic — async-signal-safe. A watcher
    // thread folds it into the server's drain state (the handler itself
    // cannot lock).
    extern "C" fn on_term(_sig: i32) {
        if let Some(flag) = TERM_FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let flag: &'static AtomicBool =
        TERM_FLAG.get_or_init(|| Box::leak(Box::new(AtomicBool::new(false))));
    let handler = on_term as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
    let st = Arc::downgrade(state);
    thread::Builder::new()
        .name("ltspd-signal".to_string())
        .spawn(move || loop {
            thread::sleep(POLL);
            let Some(state) = st.upgrade() else { return };
            if flag.load(Ordering::SeqCst) {
                let tel = state.cfg.telemetry.clone();
                state.start_drain("signal", &tel);
                return;
            }
            if state.draining.load(Ordering::SeqCst) {
                return;
            }
        })
        .ok();
}

#[cfg(not(unix))]
fn install_signal_drain(_state: &Arc<State>) {}

fn run(listener: TcpListener, state: Arc<State>) {
    let tel = state.cfg.telemetry.clone();
    if tel.is_enabled() {
        tel.emit(Event::ServerLifecycle {
            phase: "listen",
            detail: listener
                .local_addr()
                .map_or_else(|_| state.cfg.addr.clone(), |a| a.to_string()),
        });
    }
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");

    let dispatcher = {
        let state = Arc::clone(&state);
        let tel = tel.clone();
        thread::Builder::new()
            .name("ltspd-dispatch".to_string())
            .spawn(move || dispatch_loop(&state, &tel))
            .expect("spawn ltspd dispatcher")
    };

    let mut readers = Vec::new();
    while !state.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(&state);
                let tel = tel.clone();
                readers.push(
                    thread::Builder::new()
                        .name("ltspd-conn".to_string())
                        .spawn(move || reader_loop(stream, &state, &tel))
                        .expect("spawn ltspd reader"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => break,
        }
    }
    drop(listener);
    for r in readers {
        let _ = r.join();
    }
    let _ = dispatcher.join();
    state.engine.export_metrics(&tel);
    if tel.is_enabled() {
        tel.emit(Event::ServerLifecycle {
            phase: "stopped",
            detail: String::new(),
        });
    }
}

/// Per-connection reader: frame lines, answer protocol errors and
/// `shutdown` inline, admit the rest.
///
/// Framing is done by hand on a byte buffer rather than
/// `BufReader::read_line` because reads run under a poll timeout, and
/// `read_line` discards partially read bytes when it returns an error —
/// a request split across TCP segments would be corrupted.
fn reader_loop(mut stream: TcpStream, state: &Arc<State>, tel: &Telemetry) {
    // Accepted sockets may inherit the listener's non-blocking mode on
    // some platforms; normalize to blocking-with-timeout. Nagle off:
    // responses are single small writes and latency is the product.
    stream.set_nonblocking(false).expect("set_nonblocking");
    stream
        .set_read_timeout(Some(POLL))
        .expect("set_read_timeout");
    let _ = stream.set_nodelay(true);
    let conn = Arc::new(Conn {
        stream: Mutex::new(stream.try_clone().expect("clone stream")),
    });
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle: close once the server is draining, else keep
                // waiting for the next request.
                if state.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_request(line) {
                Ok(req) if req.op == ReqOp::Shutdown => {
                    let resp = Response {
                        id: req.id.clone(),
                        status: "draining",
                        cache: "-",
                        body: ",\"op\":\"shutdown\"".to_string(),
                    };
                    conn.send(&state.engine.finish(&req, resp, tel));
                    state.start_drain("shutdown request", tel);
                    return;
                }
                Ok(req) => state.admit(req, &conn, tel),
                Err(e) => {
                    let resp = Response::error(&e.id, "error", &e.message);
                    conn.send(&state.engine.finish_admission(&e.id, "proto", resp, tel));
                }
            }
        }
    }
}

/// The single dispatcher: pop up to `batch_max` jobs, run them on the
/// pool (forked telemetry, index-ordered merge), write responses in
/// admission order.
fn dispatch_loop(state: &Arc<State>, tel: &Telemetry) {
    let pool = ltsp_par::Pool::new(state.cfg.jobs);
    loop {
        let batch: Vec<Job> = {
            let mut q = state.queue.lock().unwrap();
            while q.is_empty() && !state.draining.load(Ordering::SeqCst) {
                let (guard, _timeout) = state.ready.wait_timeout(q, POLL).unwrap();
                q = guard;
            }
            if q.is_empty() {
                // Draining and empty — and since drain flips under this
                // lock, nothing can be admitted after this observation.
                return;
            }
            let n = q.len().min(state.cfg.batch_max);
            q.drain(..n).collect()
        };
        // Fast path: a lone request runs on the dispatcher thread — no
        // worker spawn, so a cache hit costs microseconds, not a thread.
        // Telemetry still goes through fork/absorb, same as the pool.
        if let [job] = batch.as_slice() {
            let resp = if tel.is_enabled() {
                let child = tel.fork();
                let resp = state.engine.handle(&job.req, &child);
                tel.absorb(child, 0);
                resp
            } else {
                state.engine.handle(&job.req, tel)
            };
            job.conn.send(&resp);
            continue;
        }
        let responses = pool.map_traced(tel, "serve-batch", &batch, |tel, _idx, job| {
            state.engine.handle(&job.req, tel)
        });
        for (job, resp) in batch.iter().zip(&responses) {
            job.conn.send(resp);
        }
    }
}
