//! The `ltspd` wire protocol: line-delimited JSON, one request object in,
//! one response object out.
//!
//! # Grammar
//!
//! Every request is a single JSON object on one line (loop text travels
//! JSON-escaped, so embedded newlines are fine):
//!
//! ```text
//! {"op":"compile","id":"r1","loop":"loop s { ... }",
//!  "policy":"hlo","trip":100,"threshold":32,
//!  "prefetch":true,"balanced":false,"speculate":false}
//! {"op":"verify","id":"r2","loop":"..."}
//! {"op":"oracle","id":"r3","loop":"...","budget":200000,"deadline_ms":1000}
//! {"op":"ping"}          {"op":"stats"}          {"op":"shutdown"}
//! ```
//!
//! Every response is a single JSON object on one line, always starting
//! with the same three fields:
//!
//! ```text
//! {"id":"r1","status":"ok","cache":"hit", ...op-specific fields...}
//! ```
//!
//! - `id` echoes the request's `id`; when the client sends none, the
//!   server derives one from the request content (so identical requests
//!   get identical responses, byte for byte).
//! - `status` ∈ `ok` | `rejected` (validator violations or a
//!   budget-limited oracle verdict) | `error` (malformed request or loop)
//!   | `overloaded` (admission queue past its high-water mark) |
//!   `draining` (received after a shutdown was accepted).
//! - `cache` ∈ `hit` | `miss` | `upgraded` (a hit whose entry was
//!   upgraded in place by the tiered backend's exact refinement) | `-`
//!   (request classes that never cache).
//!
//! Compile requests may select a scheduling backend with
//! `"backend":"heuristic"|"exact"|"tiered"` (default `heuristic`):
//! `exact` runs the oracle's branch-and-bound emission synchronously
//! (deadline-bounded, falling back to the heuristic schedule when the
//! proof does not resolve), and `tiered` answers immediately with the
//! heuristic schedule while exact refinement runs asynchronously and
//! upgrades the cache entry — including its persisted bytes — in place.
//!
//! Compile requests may additionally select a serving mode with
//! `"mode":"static"|"adaptive"` (default `static`). `adaptive` — valid
//! only with the heuristic backend — answers immediately with the
//! static heuristic schedule while the feedback-directed refinement
//! loop (the `ltsp-adaptive` crate) runs asynchronously and upgrades
//! the cache entry (and its persisted bytes) in place with the
//! converged, validator-certified schedule.
//!
//! Responses carry no timestamps or worker attribution: a response is a
//! pure function of the request (plus, for `cache`, the request history
//! of the server instance), which is what makes the serving layer
//! byte-deterministic at any `--jobs` and what makes response bodies
//! cacheable at all. Wall-clock observability lives in the telemetry
//! metrics and the `{"op":"metrics"}` exposition, never on the wire —
//! with one explicit opt-out: a request carrying `"timings":true` gets a
//! trailing `"timings":{...}` object of per-phase microseconds appended
//! to its response *envelope* (never to the cached body, and never
//! folded into the cache key), so clients that ask for wall-clock
//! attribution knowingly leave the byte-identity contract for that
//! response.

use ltsp_cache::Fingerprint;
use ltsp_core::LatencyPolicy;
use ltsp_telemetry::json::{self, escape, JsonValue};

/// The request classes the daemon serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqOp {
    /// Full pipeline: parse → HLO → DDG → modulo schedule → regalloc.
    Compile,
    /// Compile at base latencies, then certify with the independent
    /// validator.
    Verify,
    /// `Verify` plus the exact-II oracle proof (budgeted).
    Oracle,
    /// Liveness probe.
    Ping,
    /// Server + cache counters (excluded from the determinism contract).
    Stats,
    /// Prometheus-text-format metrics snapshot (excluded from the
    /// determinism contract, like `Stats`).
    Metrics,
    /// Begin graceful drain: stop admitting, finish in-flight, exit.
    Shutdown,
}

impl ReqOp {
    /// The wire tag, also used for telemetry.
    pub fn tag(&self) -> &'static str {
        match self {
            ReqOp::Compile => "compile",
            ReqOp::Verify => "verify",
            ReqOp::Oracle => "oracle",
            ReqOp::Ping => "ping",
            ReqOp::Stats => "stats",
            ReqOp::Metrics => "metrics",
            ReqOp::Shutdown => "shutdown",
        }
    }
}

/// Which scheduling backend a compile request runs through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The production heuristic pipeliner (iterative modulo scheduling).
    #[default]
    Heuristic,
    /// The oracle's branch-and-bound emission, run synchronously: the
    /// response carries a validator-certified schedule at the proven
    /// minimal II when the search resolves in budget, else the heuristic
    /// schedule (flagged as unrefined).
    Exact,
    /// Heuristic answer now, exact refinement async: the cache entry
    /// (and its persisted bytes) are upgraded in place when the exact
    /// backend finds a strictly better schedule.
    Tiered,
}

impl Backend {
    /// The wire tag, also used in cache keys and telemetry.
    pub fn tag(&self) -> &'static str {
        match self {
            Backend::Heuristic => "heuristic",
            Backend::Exact => "exact",
            Backend::Tiered => "tiered",
        }
    }
}

/// Which serving mode a compile request runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// One-shot compilation: the response is final.
    #[default]
    Static,
    /// Feedback-directed refinement: the response carries the static
    /// heuristic schedule now, and the adaptive memsim → HLO →
    /// pipeliner loop upgrades the cache entry in place once it
    /// converges. Heuristic backend only.
    Adaptive,
}

impl Mode {
    /// The wire tag, also used in cache keys and telemetry.
    pub fn tag(&self) -> &'static str {
        match self {
            Mode::Static => "static",
            Mode::Adaptive => "adaptive",
        }
    }
}

/// One parsed request. Fields irrelevant to the op keep their defaults
/// (and still participate in the content-derived `id`, harmlessly).
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-supplied trace ID, or a content-derived one.
    pub id: String,
    /// Request class.
    pub op: ReqOp,
    /// The loop source text (compile/verify/oracle).
    pub loop_text: String,
    /// Latency policy (compile only; default `hlo`).
    pub policy: LatencyPolicy,
    /// Trip estimate (compile only; default 100).
    pub trip: f64,
    /// Trip threshold (compile only; default 32).
    pub threshold: u32,
    /// Software prefetching on (compile only; default true).
    pub prefetch: bool,
    /// Balanced-recurrence extension (compile only; default false).
    pub balanced: bool,
    /// Data speculation (compile only; default false).
    pub speculate: bool,
    /// Scheduling backend (compile only; default heuristic).
    pub backend: Backend,
    /// Serving mode (compile only; default static).
    pub mode: Mode,
    /// Oracle node budget (oracle only; default 200 000).
    pub budget: u64,
    /// Oracle wall-clock budget in ms (oracle only; `None` = server
    /// default).
    pub deadline_ms: Option<u64>,
    /// Opt-in per-phase wall-clock breakdown on the response envelope
    /// (default false; never part of any cache key).
    pub timings: bool,
}

impl Default for Request {
    fn default() -> Self {
        Request {
            id: String::new(),
            op: ReqOp::Ping,
            loop_text: String::new(),
            policy: LatencyPolicy::HloHints,
            trip: 100.0,
            threshold: 32,
            prefetch: true,
            balanced: false,
            speculate: false,
            backend: Backend::Heuristic,
            mode: Mode::Static,
            budget: 200_000,
            deadline_ms: None,
            timings: false,
        }
    }
}

/// A protocol-level parse failure: the best-effort request `id` (so the
/// error response can still be correlated) and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Echoed `id` if one could be extracted, else content-derived.
    pub id: String,
    /// What was wrong with the request.
    pub message: String,
}

/// Parses one request line.
///
/// # Errors
///
/// [`ProtoError`] on malformed JSON, an unknown `op`, a missing `loop`
/// for loop-carrying ops, or ill-typed fields.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let derived_id = || format!("q{}", Fingerprint::of_str(line.trim()).short_hex());
    let v = json::parse(line.trim()).map_err(|e| ProtoError {
        id: derived_id(),
        message: format!("malformed JSON: {e}"),
    })?;
    let id = v
        .get("id")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .unwrap_or_else(derived_id);
    let fail = |message: String| ProtoError {
        id: id.clone(),
        message,
    };

    let op = match v.get("op").and_then(JsonValue::as_str) {
        Some("compile") => ReqOp::Compile,
        Some("verify") => ReqOp::Verify,
        Some("oracle") => ReqOp::Oracle,
        Some("ping") => ReqOp::Ping,
        Some("stats") => ReqOp::Stats,
        Some("metrics") => ReqOp::Metrics,
        Some("shutdown") => ReqOp::Shutdown,
        Some(other) => return Err(fail(format!("unknown op '{other}'"))),
        None => return Err(fail("missing 'op'".to_string())),
    };

    let mut req = Request {
        id: id.clone(),
        op,
        ..Request::default()
    };
    if matches!(op, ReqOp::Compile | ReqOp::Verify | ReqOp::Oracle) {
        req.loop_text = v
            .get("loop")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail(format!("op '{}' needs a string 'loop'", op.tag())))?
            .to_string();
    }
    if let Some(p) = v.get("policy") {
        req.policy = match p.as_str() {
            Some("baseline") => LatencyPolicy::Baseline,
            Some("l3") => LatencyPolicy::AllLoadsL3,
            Some("fpl2") => LatencyPolicy::AllFpLoadsL2,
            Some("hlo") => LatencyPolicy::HloHints,
            _ => return Err(fail("policy must be baseline|l3|fpl2|hlo".to_string())),
        };
    }
    if let Some(t) = v.get("trip") {
        req.trip = t
            .as_f64()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| fail("trip must be a non-negative number".to_string()))?;
    }
    if let Some(t) = v.get("threshold") {
        req.threshold = t
            .as_u64()
            .and_then(|t| u32::try_from(t).ok())
            .ok_or_else(|| fail("threshold must be a u32".to_string()))?;
    }
    for (key, slot) in [
        ("prefetch", &mut req.prefetch as &mut bool),
        ("balanced", &mut req.balanced),
        ("speculate", &mut req.speculate),
        ("timings", &mut req.timings),
    ] {
        if let Some(b) = v.get(key) {
            *slot = match b {
                JsonValue::Bool(b) => *b,
                _ => return Err(fail(format!("{key} must be a boolean"))),
            };
        }
    }
    if let Some(b) = v.get("backend") {
        req.backend = match b.as_str() {
            Some("heuristic") => Backend::Heuristic,
            Some("exact") => Backend::Exact,
            Some("tiered") => Backend::Tiered,
            _ => return Err(fail("backend must be heuristic|exact|tiered".to_string())),
        };
    }
    if let Some(m) = v.get("mode") {
        req.mode = match m.as_str() {
            Some("static") => Mode::Static,
            Some("adaptive") => Mode::Adaptive,
            _ => return Err(fail("mode must be static|adaptive".to_string())),
        };
    }
    if req.mode == Mode::Adaptive && req.backend != Backend::Heuristic {
        return Err(fail(format!(
            "mode 'adaptive' requires the heuristic backend, not '{}'",
            req.backend.tag()
        )));
    }
    if let Some(b) = v.get("budget") {
        req.budget = b
            .as_u64()
            .ok_or_else(|| fail("budget must be a non-negative integer".to_string()))?;
    }
    if let Some(d) = v.get("deadline_ms") {
        req.deadline_ms = Some(
            d.as_u64()
                .ok_or_else(|| fail("deadline_ms must be a non-negative integer".to_string()))?,
        );
    }
    Ok(req)
}

/// One response, split so the cacheable part (`body`) excludes the
/// per-request envelope (`id`, `cache`): a response cache stores bodies,
/// and the envelope is re-spliced per request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request `id`.
    pub id: String,
    /// `ok` | `rejected` | `error` | `overloaded` | `draining`.
    pub status: &'static str,
    /// `hit` | `miss` | `upgraded` | `-`.
    pub cache: &'static str,
    /// JSON fragment appended after the envelope fields; either empty or
    /// starting with `,` (e.g. `,"op":"ping"`).
    pub body: String,
    /// Per-phase wall-clock breakdown as a rendered JSON object, present
    /// only when the request opted in with `"timings":true`. Lives on
    /// the envelope, after the body, and is never cached: the same
    /// cached body re-splices with whatever actually happened for *this*
    /// request (a hit reports its probe, not the original compile).
    pub timings: Option<String>,
}

impl Response {
    /// An error response with a message body.
    pub fn error(id: &str, status: &'static str, message: &str) -> Response {
        Response {
            id: id.to_string(),
            status,
            cache: "-",
            body: format!(",\"error\":\"{}\"", escape(message)),
            timings: None,
        }
    }

    /// Renders the single response line (no trailing newline).
    pub fn render(&self) -> String {
        let timings = match &self.timings {
            Some(obj) => format!(",\"timings\":{obj}"),
            None => String::new(),
        };
        format!(
            "{{\"id\":\"{}\",\"status\":\"{}\",\"cache\":\"{}\"{}{}}}",
            escape(&self.id),
            self.status,
            self.cache,
            self.body,
            timings
        )
    }
}

/// Appends a `"key":"string"` pair to a body fragment.
pub fn push_str_field(body: &mut String, key: &str, value: &str) {
    use std::fmt::Write as _;
    let _ = write!(body, ",\"{}\":\"{}\"", escape(key), escape(value));
}

/// Appends a `"key":N` pair to a body fragment.
pub fn push_u64_field(body: &mut String, key: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = write!(body, ",\"{}\":{}", escape(key), value);
}

/// Appends a `"key":true|false` pair to a body fragment.
pub fn push_bool_field(body: &mut String, key: &str, value: bool) {
    use std::fmt::Write as _;
    let _ = write!(body, ",\"{}\":{}", escape(key), value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_compile_request() {
        let r = parse_request(
            r#"{"op":"compile","id":"a","loop":"loop x {\n}","policy":"l3","trip":12.5,
               "threshold":0,"prefetch":false,"balanced":true,"speculate":true}"#,
        )
        .unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.op, ReqOp::Compile);
        assert_eq!(r.loop_text, "loop x {\n}");
        assert_eq!(r.policy, LatencyPolicy::AllLoadsL3);
        assert_eq!(r.trip, 12.5);
        assert_eq!(r.threshold, 0);
        assert!(!r.prefetch);
        assert!(r.balanced);
        assert!(r.speculate);
    }

    #[test]
    fn derives_deterministic_ids() {
        let a = parse_request(r#"{"op":"ping"}"#).unwrap();
        let b = parse_request(r#"{"op":"ping"}"#).unwrap();
        let c = parse_request(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(a.id, b.id, "same content, same id");
        assert_ne!(a.id, c.id);
        assert!(a.id.starts_with('q'));
    }

    #[test]
    fn rejects_bad_requests_with_the_right_id() {
        let e = parse_request(r#"{"op":"warp","id":"x"}"#).unwrap_err();
        assert_eq!(e.id, "x");
        assert!(e.message.contains("unknown op"));
        let e = parse_request(r#"{"op":"compile","id":"y"}"#).unwrap_err();
        assert!(e.message.contains("needs a string 'loop'"));
        let e = parse_request("not json").unwrap_err();
        assert!(e.message.contains("malformed JSON"));
        let e = parse_request(r#"{"op":"oracle","loop":"l","budget":-3}"#).unwrap_err();
        assert!(e.message.contains("budget"));
    }

    #[test]
    fn responses_render_as_one_json_line() {
        let mut body = String::new();
        push_str_field(&mut body, "op", "compile");
        push_u64_field(&mut body, "ii", 4);
        push_bool_field(&mut body, "pipelined", true);
        push_str_field(&mut body, "report", "two\nlines");
        let r = Response {
            id: "r1".to_string(),
            status: "ok",
            cache: "miss",
            body,
            timings: None,
        };
        let line = r.render();
        assert!(!line.contains('\n'), "newlines are escaped: {line}");
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(v.get("ii").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("report").unwrap().as_str(), Some("two\nlines"));
    }

    #[test]
    fn timings_flag_parses_and_renders_on_the_envelope() {
        let r = parse_request(r#"{"op":"compile","id":"t","loop":"loop x {\n}","timings":true}"#)
            .unwrap();
        assert!(r.timings);
        let off = parse_request(r#"{"op":"compile","id":"t","loop":"loop x {\n}"}"#).unwrap();
        assert!(!off.timings, "timings defaults to off");

        let mut resp = Response {
            id: "t".to_string(),
            status: "ok",
            cache: "hit",
            body: ",\"op\":\"compile\"".to_string(),
            timings: None,
        };
        let plain = resp.render();
        resp.timings = Some("{\"sched_us\":12}".to_string());
        let timed = resp.render();
        assert!(!plain.contains("timings"));
        let v = json::parse(&timed).unwrap();
        assert_eq!(
            v.get("timings").unwrap().get("sched_us").unwrap().as_u64(),
            Some(12)
        );
        // The envelope change is strictly additive.
        assert!(timed.starts_with(plain.trim_end_matches('}')));
    }

    #[test]
    fn backend_parses_and_defaults_to_heuristic() {
        let r = parse_request(r#"{"op":"compile","loop":"loop x {\n}"}"#).unwrap();
        assert_eq!(r.backend, Backend::Heuristic, "default backend");
        for (tag, want) in [
            ("heuristic", Backend::Heuristic),
            ("exact", Backend::Exact),
            ("tiered", Backend::Tiered),
        ] {
            let line = format!(r#"{{"op":"compile","loop":"l","backend":"{tag}"}}"#);
            let r = parse_request(&line).unwrap();
            assert_eq!(r.backend, want);
            assert_eq!(r.backend.tag(), tag);
        }
        let e = parse_request(r#"{"op":"compile","loop":"l","backend":"quantum"}"#).unwrap_err();
        assert!(e.message.contains("backend must be"));
    }

    #[test]
    fn mode_parses_and_defaults_to_static() {
        let r = parse_request(r#"{"op":"compile","loop":"loop x {\n}"}"#).unwrap();
        assert_eq!(r.mode, Mode::Static, "default mode");
        for (tag, want) in [("static", Mode::Static), ("adaptive", Mode::Adaptive)] {
            let line = format!(r#"{{"op":"compile","loop":"l","mode":"{tag}"}}"#);
            let r = parse_request(&line).unwrap();
            assert_eq!(r.mode, want);
            assert_eq!(r.mode.tag(), tag);
        }
        let e = parse_request(r#"{"op":"compile","loop":"l","mode":"psychic"}"#).unwrap_err();
        assert!(e.message.contains("mode must be"));
    }

    #[test]
    fn adaptive_mode_rejects_non_heuristic_backends() {
        for backend in ["exact", "tiered"] {
            let line = format!(
                r#"{{"op":"compile","id":"m","loop":"l","mode":"adaptive","backend":"{backend}"}}"#
            );
            let e = parse_request(&line).unwrap_err();
            assert_eq!(e.id, "m");
            assert!(
                e.message.contains("requires the heuristic backend"),
                "{}",
                e.message
            );
        }
        let ok =
            parse_request(r#"{"op":"compile","loop":"l","mode":"adaptive","backend":"heuristic"}"#)
                .unwrap();
        assert_eq!(ok.mode, Mode::Adaptive);
    }

    #[test]
    fn metrics_op_parses() {
        let r = parse_request(r#"{"op":"metrics","id":"m"}"#).unwrap();
        assert_eq!(r.op, ReqOp::Metrics);
        assert_eq!(r.op.tag(), "metrics");
    }

    #[test]
    fn error_responses_round_trip() {
        let r = Response::error("id-1", "error", "loop:3: bad \"thing\"");
        let v = json::parse(&r.render()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(
            v.get("error").unwrap().as_str(),
            Some("loop:3: bad \"thing\"")
        );
    }

    #[test]
    fn hostile_error_messages_stay_one_parseable_line() {
        // Error text can quote arbitrary client input: embedded quotes,
        // newlines, control bytes, and the U+FFFD replacement chars that
        // `from_utf8_lossy` leaves behind for invalid UTF-8. None of it
        // may break line framing or JSON syntax.
        let lossy = String::from_utf8_lossy(b"ld g1 = \xFF\xFE@m0").into_owned();
        let msg = format!("bad \"input\":\nline two\r\ttab \u{1F}unit {lossy}\u{0}end");
        let r = Response::error("evil\n\"id\"", "error", &msg);
        let line = r.render();
        assert!(!line.contains('\n'), "one line: {line}");
        assert!(
            line.bytes().all(|b| b >= 0x20),
            "control bytes are escaped: {line:?}"
        );
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("evil\n\"id\""));
        assert_eq!(v.get("error").unwrap().as_str(), Some(msg.as_str()));
    }
}
