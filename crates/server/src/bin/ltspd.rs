//! `ltspd` — the compilation-as-a-service daemon.
//!
//! ```text
//! ltspd [--addr HOST:PORT] [--jobs N] [--batch N] [--queue N]
//!       [--outbound N] [--write-deadline-ms MS]
//!       [--cache-bytes N] [--result-cache-bytes N]
//!       [--oracle-budget NODES] [--oracle-deadline-ms MS]
//!       [--flight-dir DIR] [--flight-len N] [--persist FILE]
//!       [--persist-warn-mb N]
//!       [--trace-out FILE] [--metrics-out FILE] [-v]
//! ```
//!
//! Serves the wire protocol documented in `ltsp_server::proto` until a
//! client sends `{"op":"shutdown"}` or the process receives
//! SIGTERM/SIGINT, then drains gracefully (in-flight and queued
//! requests complete) and exits 0. `--oracle-deadline-ms 0` removes the
//! default per-request oracle wall-clock budget. Telemetry artifacts
//! (request trace, cache counters) are written at drain.
//!
//! `--write-deadline-ms` bounds how long a single response write may
//! stall on a non-reading client before the connection is shed;
//! `--outbound` caps each connection's outbound response queue. The
//! `LTSP_FAULT` environment variable (see `ltsp_server::fault`) turns
//! on deterministic fault injection for chaos testing.
//!
//! `--persist FILE` puts an append-only disk tier (see
//! `ltsp_cache::persist`) behind the result cache: every newly computed
//! result is logged, and a restarted daemon replays the log before
//! accepting connections, serving warm from the first request.
//! `--persist-warn-mb N` logs one loud warning when the log grows past
//! N MiB (the size is always exported as `ltsp_persist_log_bytes`).
//!
//! `--flight-dir` enables the flight recorder's dump-to-disk path: the
//! last `--flight-len` request lifecycles (default 256) are written as
//! JSONL whenever a contained panic, injected fault, dispatcher death,
//! or write-deadline shed fires (see `ltsp_server::flight`). A live
//! Prometheus snapshot is always available via `{"op":"metrics"}` /
//! `ltspc remote ADDR --op metrics`.

use std::process::ExitCode;

use ltsp_par::parse_jobs;
use ltsp_server::{serve, EngineConfig, FaultPlan, ServerConfig};
use ltsp_telemetry::Telemetry;

fn usage() -> ! {
    eprintln!(
        "usage: ltspd [--addr HOST:PORT] [--jobs N] [--batch N] [--queue N]\n\
         \x20            [--outbound N] [--write-deadline-ms MS]\n\
         \x20            [--cache-bytes N] [--result-cache-bytes N]\n\
         \x20            [--oracle-budget NODES] [--oracle-deadline-ms MS]\n\
         \x20            [--flight-dir DIR] [--flight-len N] [--persist FILE]\n\
         \x20            [--persist-warn-mb N]\n\
         \x20            [--trace-out FILE] [--metrics-out FILE] [-v|--verbose]"
    );
    std::process::exit(2);
}

fn num<T: std::str::FromStr>(v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig {
        jobs: ltsp_par::default_parallelism(),
        handle_signals: true,
        ..ServerConfig::default()
    };
    let mut engine = EngineConfig::default();
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut verbose = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => cfg.addr = args.next().unwrap_or_else(|| usage()),
            "--jobs" => {
                cfg.jobs = parse_jobs(&args.next().unwrap_or_else(|| usage())).unwrap_or_else(|e| {
                    eprintln!("ltspd: {e}");
                    std::process::exit(2);
                })
            }
            "--batch" => cfg.batch_max = num::<usize>(args.next()).max(1),
            "--queue" => cfg.queue_high_water = num::<usize>(args.next()).max(1),
            "--outbound" => cfg.outbound_max = num::<usize>(args.next()).max(1),
            "--write-deadline-ms" => {
                cfg.write_deadline =
                    std::time::Duration::from_millis(num::<u64>(args.next()).max(1))
            }
            "--cache-bytes" => engine.compile_cache_bytes = num(args.next()),
            "--result-cache-bytes" => engine.result_cache_bytes = num(args.next()),
            "--oracle-budget" => engine.oracle_node_budget = num(args.next()),
            "--oracle-deadline-ms" => {
                engine.oracle_deadline_ms = match num::<u64>(args.next()) {
                    0 => None,
                    ms => Some(ms),
                }
            }
            "--flight-dir" => {
                engine.flight_dir = Some(args.next().unwrap_or_else(|| usage()).into())
            }
            "--flight-len" => engine.flight_len = num::<usize>(args.next()).max(1),
            "--persist" => {
                engine.persist_path = Some(args.next().unwrap_or_else(|| usage()).into())
            }
            "--persist-warn-mb" => {
                engine.persist_warn_bytes = Some(num::<u64>(args.next()).max(1) << 20)
            }
            "--trace-out" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-out" => metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "-v" | "--verbose" => verbose = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    cfg.engine = engine;
    cfg.fault = FaultPlan::from_env().unwrap_or_else(|e| {
        eprintln!("ltspd: {e}");
        std::process::exit(2);
    });
    if cfg.fault.is_active() {
        eprintln!("ltspd: LTSP_FAULT active — injecting deterministic faults");
    }
    let want_telemetry = trace_out.is_some() || metrics_out.is_some() || verbose;
    let tel = if want_telemetry {
        Telemetry::enabled_with(verbose)
    } else {
        Telemetry::disabled()
    };
    cfg.telemetry = tel.clone();

    eprintln!("ltspd: listening on {} (jobs={})", cfg.addr, cfg.jobs);
    if let Err(e) = serve(cfg) {
        eprintln!("ltspd: {e}");
        return ExitCode::from(3);
    }

    let mut ok = true;
    let mut write_artifact =
        |path: &Option<String>,
         what: &str,
         f: &dyn Fn(&mut dyn std::io::Write) -> std::io::Result<()>| {
            let Some(path) = path else { return };
            let res = std::fs::File::create(path)
                .map(std::io::BufWriter::new)
                .and_then(|mut w| f(&mut w));
            if let Err(e) = res {
                eprintln!("ltspd: cannot write {what} {path}: {e}");
                ok = false;
            }
        };
    write_artifact(&trace_out, "trace", &|w| tel.write_events_jsonl(w));
    write_artifact(&metrics_out, "metrics", &|w| tel.write_metrics_json(w));
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
