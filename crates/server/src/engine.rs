//! The request engine: the full compilation pipeline behind the wire
//! protocol, fronted by two content-addressed caches.
//!
//! - **Compile** requests go through [`ltsp_core::compile_loop_cached`]:
//!   the cache stores [`CompiledLoop`] artifacts keyed by canonicalized
//!   loop + full [`CompileConfig`] + machine + trip, and the response
//!   body is (deterministically) re-rendered from the artifact.
//! - **Verify** and **oracle** requests cache the *rendered response
//!   body* keyed by canonicalized loop + the request's oracle knobs —
//!   the expensive part is the search, not the rendering.
//!
//! Either way a hit returns bytes identical to what the cold path
//! produced, and a key covers every input that can change the answer, so
//! eviction can only ever cost time, never correctness.
//!
//! The engine is `Sync`: the daemon calls [`Engine::handle`] from many
//! pool workers at once. Every response is a pure function of the
//! request, which is what keeps batch composition (and therefore
//! `--jobs`) out of the bytes on the wire.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ltsp_adaptive::{compile_loop_adaptive, AdaptiveOptions};
use ltsp_cache::persist::CacheLog;
use ltsp_cache::{CacheConfig, Fingerprint, FingerprintHasher, ShardedLru};
use ltsp_core::{compile_loop_cached_phased, new_compile_cache, CompileCache, CompileConfig};
use ltsp_ir::{parse_loop, LoopIr, ParseError};
use ltsp_machine::MachineModel;
use ltsp_oracle::{differential_case, exact_case, IiVerdict, OracleOptions};
use ltsp_telemetry::phase::{Phase, PhaseTimer};
use ltsp_telemetry::{lock_unpoisoned, prom, Event, Histogram, Telemetry};

use crate::flight::{FlightRecord, FlightRecorder};
use crate::proto::{
    push_bool_field, push_str_field, push_u64_field, Backend, Mode, ReqOp, Request, Response,
};
use crate::report::{render_adaptive_report, render_compile_report, render_exact_report};

/// A cached request outcome: the response status plus the body fragment
/// (everything after the envelope), and whether the entry was upgraded
/// in place by the tiered backend's exact refinement (hits on upgraded
/// entries report `cache:"upgraded"`).
#[derive(Debug, Clone)]
struct CachedResult {
    status: &'static str,
    body: String,
    upgraded: bool,
}

/// Engine tuning knobs (the daemon forwards these from its CLI).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Byte budget for the compiled-artifact cache.
    pub compile_cache_bytes: usize,
    /// Byte budget for the verify/oracle response cache.
    pub result_cache_bytes: usize,
    /// Default oracle node budget when a request names none.
    pub oracle_node_budget: u64,
    /// Default oracle wall-clock budget when a request names none
    /// (`None` = unlimited).
    pub oracle_deadline_ms: Option<u64>,
    /// Flight-recorder dump directory (`None` = ring only, no dumps).
    pub flight_dir: Option<PathBuf>,
    /// Flight-recorder ring capacity (request lifecycles retained).
    pub flight_len: usize,
    /// Persistent result-cache log (`None` = in-memory only). When set,
    /// the engine replays the log into the result cache at construction
    /// and appends every newly computed result, so a restarted process
    /// serves warm from request one.
    pub persist_path: Option<PathBuf>,
    /// Warn loudly (once) when the persist log grows past this many
    /// bytes (`None` = never). The log is append-only, so unbounded
    /// growth is by design — this is the operator's tripwire.
    pub persist_warn_bytes: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            compile_cache_bytes: 64 << 20,
            result_cache_bytes: 16 << 20,
            oracle_node_budget: 200_000,
            oracle_deadline_ms: Some(10_000),
            flight_dir: None,
            flight_len: 256,
            persist_path: None,
            persist_warn_bytes: None,
        }
    }
}

/// Request counters by final status (monotonic, exposed via `stats`).
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// `status:"ok"` responses.
    pub ok: AtomicU64,
    /// `status:"rejected"` responses.
    pub rejected: AtomicU64,
    /// `status:"error"` responses.
    pub error: AtomicU64,
    /// `status:"overloaded"` responses (bumped by the daemon).
    pub overloaded: AtomicU64,
    /// `status:"draining"` responses (bumped by the daemon).
    pub draining: AtomicU64,
}

impl ServeCounters {
    fn bump(&self, status: &str) {
        match status {
            "ok" => &self.ok,
            "rejected" => &self.rejected,
            "overloaded" => &self.overloaded,
            "draining" => &self.draining,
            _ => &self.error,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// Live operational gauges and chaos counters, updated by the daemon's
/// threads and read by the `metrics` exposition. Plain atomics:
/// monotonically increasing for the `*_total` counters, last-write-wins
/// snapshots for the gauges.
#[derive(Debug, Default)]
pub struct ServerGauges {
    /// Requests sitting in the admission queue right now.
    pub queue_depth: AtomicU64,
    /// Requests currently being handled by the dispatcher batch.
    pub inflight: AtomicU64,
    /// Open client connections.
    pub connections: AtomicU64,
    /// Connections killed for missing the write deadline.
    pub conn_shed: AtomicU64,
    /// Responses dropped on shed/dead connections.
    pub responses_shed: AtomicU64,
    /// Handler panics contained (real or injected).
    pub request_panics: AtomicU64,
    /// Faults injected by the active [`crate::FaultPlan`].
    pub faults_injected: AtomicU64,
    /// Dispatcher deaths survived (drain-and-exit path).
    pub dispatcher_deaths: AtomicU64,
}

/// Persistence-tier counters (all zero when no log is configured).
#[derive(Debug, Default)]
pub struct PersistCounters {
    /// Records replayed into the result cache at startup (after
    /// last-writer-wins collapse).
    pub replayed: AtomicU64,
    /// Bad records dropped during startup replay (torn/corrupt tail).
    pub dropped: AtomicU64,
    /// Clean records superseded by a later append under the same key
    /// (in-place cache upgrades leave exactly one of these each).
    pub superseded: AtomicU64,
    /// Records appended since startup.
    pub appended: AtomicU64,
    /// Append failures (the response is still served; the entry is just
    /// not durable).
    pub append_errors: AtomicU64,
}

/// Async-refinement counters — exact upgrades for the tiered backend
/// and adaptive upgrades for `mode:"adaptive"` (exposed via `stats` and
/// the Prometheus snapshot).
#[derive(Debug, Default)]
pub struct UpgradeCounters {
    /// Refinement batches queued (one per cold refining compile whose
    /// work was not already in flight).
    pub scheduled: AtomicU64,
    /// Cold refining compiles coalesced onto an already-queued batch
    /// with the same refinement work (they get their own in-place
    /// upgrade, but the schedule is computed once).
    pub coalesced: AtomicU64,
    /// Upgrades applied in place (raw-request and tier body entries
    /// swapped to the refined bytes, persisted again) — one per waiter,
    /// coalesced or not.
    pub applied: AtomicU64,
    /// Applied upgrades whose refined schedule strictly improved the
    /// heuristic II.
    pub refined: AtomicU64,
    /// Refinement jobs that failed (parse, emission, or a rejected
    /// case) — the heuristic entry stays, correctness is unaffected.
    pub failed: AtomicU64,
}

/// Which refinement a queued job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefineKind {
    /// Tiered backend: the oracle's branch-and-bound exact emission.
    Exact,
    /// Adaptive mode: the memsim-fed hint-refinement loop to fixpoint.
    Adaptive,
}

/// One queued refinement: the cold request to refine, its raw request
/// key, the deadline resolved at admission time, and which refinement
/// to run.
struct RefineJob {
    raw_key: Fingerprint,
    deadline_ms: Option<u64>,
    kind: RefineKind,
    req: Request,
}

impl RefineJob {
    /// The key identical refinement *work* coalesces under: two
    /// in-flight jobs with the same dedup key compute the same refined
    /// schedule, so the second one waits on the first's batch instead
    /// of scheduling the computation twice. Covers exactly the inputs
    /// of the refined body — for `Exact` that is the loop text and the
    /// search budget/deadline (trip or policy variants share one exact
    /// schedule); for `Adaptive` the compile config matters too, since
    /// the refinement re-runs the pipeliner under it.
    fn dedup_key(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_str(&self.req.loop_text);
        h.write_u64(self.deadline_ms.map_or(u64::MAX, |d| d));
        match self.kind {
            RefineKind::Exact => {
                h.write_str("refine-exact");
                h.write_u64(self.req.budget);
            }
            RefineKind::Adaptive => {
                h.write_str("refine-adaptive");
                h.write_str(&self.req.policy.to_string());
                h.write_f64(self.req.trip);
                h.write_u64(u64::from(self.req.threshold));
                h.write_u64(
                    u64::from(self.req.prefetch)
                        | u64::from(self.req.balanced) << 1
                        | u64::from(self.req.speculate) << 2,
                );
            }
        }
        h.finish()
    }
}

/// In-flight refinement batches, keyed by [`RefineJob::dedup_key`]: the
/// leader (first job under a key) owns the queue slot; followers append
/// themselves as waiters. The worker removes the whole entry *before*
/// computing, so every waiter present at that point shares one
/// computation and later arrivals become fresh leaders.
type RefineInflight = Mutex<HashMap<Fingerprint, Vec<RefineJob>>>;

/// Everything the async refinement worker shares with the engine: the
/// caches and counters it upgrades, behind `Arc` so the worker outlives
/// any particular borrow of the engine.
struct RefineShared {
    machine: MachineModel,
    result_cache: Arc<ShardedLru<CachedResult>>,
    persist: Option<Arc<CacheLog>>,
    persist_counters: Arc<PersistCounters>,
    upgrades: Arc<UpgradeCounters>,
    inflight: Arc<RefineInflight>,
}

/// The shared, thread-safe request engine.
pub struct Engine {
    machine: MachineModel,
    compile_cache: CompileCache,
    result_cache: Arc<ShardedLru<CachedResult>>,
    /// The disk tier behind `result_cache` (`None` = in-memory only).
    persist: Option<Arc<CacheLog>>,
    cfg: EngineConfig,
    /// Per-status response tallies.
    pub counters: ServeCounters,
    /// Persistence-tier tallies (replay/append accounting).
    pub persist_counters: Arc<PersistCounters>,
    /// Tiered-backend upgrade tallies (refinement scheduling/outcomes).
    pub upgrades: Arc<UpgradeCounters>,
    /// Operational gauges (fed by the daemon, read by `metrics`).
    pub gauges: ServerGauges,
    /// The flight recorder (fed per request, dumped on faults).
    pub flight: FlightRecorder,
    /// Per-phase latency histograms behind the `metrics` op. Kept out
    /// of the telemetry registry on purpose: wall-clock buckets differ
    /// run to run, and the drain-time telemetry export participates in
    /// determinism comparisons.
    phase_hists: Mutex<BTreeMap<&'static str, Histogram>>,
    /// Queue into the refinement worker: each message is the dedup key
    /// of a batch the sender just made a leader for (`None` after
    /// shutdown).
    refine_tx: Mutex<Option<mpsc::Sender<Fingerprint>>>,
    /// The refinement worker's join handle (`None` after shutdown).
    refine_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Outstanding refinement jobs (waiters, not batches), for
    /// [`Engine::refine_wait_idle`].
    refine_pending: Arc<(Mutex<u64>, Condvar)>,
    /// In-flight refinement batches (dedup key → waiters).
    refine_inflight: Arc<RefineInflight>,
    /// Held by the worker across each batch's pop-and-process. Tests
    /// grab it to deterministically coalesce followers onto an already
    /// queued leader; uncontended otherwise.
    #[cfg_attr(not(test), allow(dead_code))]
    refine_gate: Arc<Mutex<()>>,
    /// Latch so the persist-size warning fires once, not per append.
    persist_warned: AtomicBool,
}

impl Engine {
    /// Builds an engine for the Itanium 2 machine model. When
    /// [`EngineConfig::persist_path`] is set, the log is replayed into
    /// the result cache *before* the engine is handed to any caller, so
    /// the very first request can hit warm. An unopenable log is loud
    /// but non-fatal — the engine degrades to in-memory-only caching.
    pub fn new(cfg: EngineConfig) -> Engine {
        let result_cache = Arc::new(ShardedLru::new(CacheConfig {
            byte_budget: cfg.result_cache_bytes,
            ..CacheConfig::default()
        }));
        let persist_counters = Arc::new(PersistCounters::default());
        let persist = cfg
            .persist_path
            .as_ref()
            .and_then(|path| match CacheLog::open(path) {
                Ok((log, report)) => {
                    // Last-writer-wins: an in-place upgrade is a second
                    // append under the same key, and a warm restart must
                    // serve the upgraded bytes, never the superseded ones.
                    let live = report.last_writer_wins();
                    persist_counters
                        .replayed
                        .store(live.len() as u64, Ordering::Relaxed);
                    persist_counters
                        .superseded
                        .store(report.superseded(), Ordering::Relaxed);
                    persist_counters
                        .dropped
                        .store(report.dropped, Ordering::Relaxed);
                    for rec in live {
                        let bytes = rec.body.len() + 64;
                        result_cache.insert(
                            rec.key,
                            CachedResult {
                                status: intern_status(&rec.status),
                                body: rec.body.clone(),
                                upgraded: false,
                            },
                            bytes,
                        );
                    }
                    Some(Arc::new(log))
                }
                Err(e) => {
                    eprintln!(
                        "ltspd: persist log {} unavailable: {e} (running without persistence)",
                        path.display()
                    );
                    None
                }
            });
        let machine = MachineModel::itanium2();
        let upgrades = Arc::new(UpgradeCounters::default());
        let refine_pending = Arc::new((Mutex::new(0u64), Condvar::new()));
        let refine_inflight: Arc<RefineInflight> = Arc::new(Mutex::new(HashMap::new()));
        let refine_gate = Arc::new(Mutex::new(()));
        let shared = RefineShared {
            machine: machine.clone(),
            result_cache: Arc::clone(&result_cache),
            persist: persist.clone(),
            persist_counters: Arc::clone(&persist_counters),
            upgrades: Arc::clone(&upgrades),
            inflight: Arc::clone(&refine_inflight),
        };
        let pending = Arc::clone(&refine_pending);
        let gate = Arc::clone(&refine_gate);
        let (tx, rx) = mpsc::channel::<Fingerprint>();
        let handle = std::thread::Builder::new()
            .name("ltspd-refine".to_string())
            .spawn(move || {
                while let Ok(dedup_key) = rx.recv() {
                    // Pop the whole waiter batch under the gate, before
                    // computing: every waiter present now shares one
                    // refinement; a request arriving after the pop finds
                    // no in-flight entry and becomes a fresh leader.
                    let _gate = lock_unpoisoned(&gate);
                    let waiters = lock_unpoisoned(&shared.inflight)
                        .remove(&dedup_key)
                        .unwrap_or_default();
                    // A panicking refinement must not strand waiters or
                    // kill the worker: contain it, count it, move on.
                    let contained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        refine_batch(&shared, &waiters)
                    }));
                    if contained.is_err() {
                        shared.upgrades.failed.fetch_add(1, Ordering::Relaxed);
                    }
                    let (lock, cv) = &*pending;
                    *lock_unpoisoned(lock) -= waiters.len() as u64;
                    cv.notify_all();
                }
            })
            .expect("spawn refinement worker");
        Engine {
            machine,
            compile_cache: new_compile_cache(cfg.compile_cache_bytes),
            result_cache,
            persist,
            flight: FlightRecorder::new(cfg.flight_len, cfg.flight_dir.clone()),
            cfg,
            counters: ServeCounters::default(),
            persist_counters,
            upgrades,
            gauges: ServerGauges::default(),
            phase_hists: Mutex::new(BTreeMap::new()),
            refine_tx: Mutex::new(Some(tx)),
            refine_handle: Mutex::new(Some(handle)),
            refine_pending,
            refine_inflight,
            refine_gate,
            persist_warned: AtomicBool::new(false),
        }
    }

    /// Appends a freshly computed result to the disk tier (no-op without
    /// one). Failures are counted and logged once — durability is
    /// best-effort, correctness never depends on it.
    fn persist_append(&self, key: Fingerprint, status: &str, body: &str) {
        append_record(
            self.persist.as_deref(),
            &self.persist_counters,
            key,
            status,
            body,
        );
        self.check_persist_size();
    }

    /// The operator tripwire behind `--persist-warn-mb`: one loud line
    /// the first time the append-only log crosses the threshold. The
    /// gauge (`persist_log_bytes` in `stats`, `ltsp_persist_log_bytes`
    /// in the Prometheus snapshot) keeps reporting after that.
    fn check_persist_size(&self) {
        let (Some(limit), Some(log)) = (self.cfg.persist_warn_bytes, self.persist.as_deref())
        else {
            return;
        };
        let bytes = log.log_bytes();
        if bytes > limit && !self.persist_warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "ltspd: WARNING: persist log {} is {:.1} MiB, past the {:.1} MiB warning \
                 threshold — the log is append-only and only ever grows; rotate or remove it \
                 to reclaim space (a fresh log re-warms from live traffic)",
                log.path().display(),
                bytes as f64 / (1 << 20) as f64,
                limit as f64 / (1 << 20) as f64,
            );
        }
    }

    /// Test hook: while the returned guard is held, the refine worker
    /// stalls before popping its next batch, so further requests with
    /// the same refinement inputs deterministically coalesce onto the
    /// queued leader.
    #[cfg(test)]
    fn refine_pause(&self) -> std::sync::MutexGuard<'_, ()> {
        lock_unpoisoned(&self.refine_gate)
    }

    /// Blocks until every scheduled refinement has completed (tests and
    /// drain use this to make upgrade effects observable deterministically).
    pub fn refine_wait_idle(&self) {
        let (lock, cv) = &*self.refine_pending;
        let mut n = lock_unpoisoned(lock);
        while *n > 0 {
            n = cv.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops the refinement worker: queued jobs drain, then the thread
    /// exits and is joined. Idempotent; called on drop and by the
    /// daemon's drain path.
    pub fn refine_shutdown(&self) {
        drop(lock_unpoisoned(&self.refine_tx).take());
        if let Some(h) = lock_unpoisoned(&self.refine_handle).take() {
            let _ = h.join();
        }
    }

    /// Handles one admitted request. Emits an [`Event::ServerRequest`]
    /// on `tel` and tallies the status. `shutdown` is the daemon's
    /// business and answers `error` here.
    pub fn handle(&self, req: &Request, tel: &Telemetry) -> Response {
        let phases = PhaseTimer::new();
        self.handle_phased(req, tel, &phases)
    }

    /// [`Engine::handle`] against a caller-owned [`PhaseTimer`] (the
    /// daemon pre-loads `queue_wait`/`dispatch` before calling). Records
    /// total handler time, feeds the per-phase histograms and the flight
    /// recorder, and — when the request opted in with `"timings":true` —
    /// attaches the breakdown to the response envelope.
    pub fn handle_phased(&self, req: &Request, tel: &Telemetry, phases: &PhaseTimer) -> Response {
        let t0 = Instant::now();
        let resp = match req.op {
            ReqOp::Ping => Response {
                id: req.id.clone(),
                status: "ok",
                cache: "-",
                body: ",\"op\":\"ping\"".to_string(),
                timings: None,
            },
            ReqOp::Stats => self.stats_response(req),
            ReqOp::Metrics => self.metrics_response(req),
            ReqOp::Shutdown => Response::error(&req.id, "error", "shutdown not admitted here"),
            ReqOp::Compile | ReqOp::Verify | ReqOp::Oracle => {
                self.cached_response(req, tel, phases)
            }
        };
        phases.add_us(Phase::Handler, t0.elapsed().as_micros() as u64);
        let mut resp = self.finish(req, resp, tel);
        if req.timings {
            resp.timings = Some(phases.to_json_object());
        }
        self.observe(req, &resp, phases);
        resp
    }

    /// Feeds a finished request into the phase histograms and the flight
    /// recorder.
    fn observe(&self, req: &Request, resp: &Response, phases: &PhaseTimer) {
        {
            let mut hists = lock_unpoisoned(&self.phase_hists);
            for (p, us) in phases.snapshot() {
                // Handler always records (it is the request-total KPI);
                // other phases record only when they actually ran, so a
                // phase histogram's count is "times this phase ran".
                if us > 0 || p == Phase::Handler {
                    hists.entry(p.name()).or_default().record(us);
                }
            }
        }
        self.flight
            .record(FlightRecord::capture(req, resp.status, resp.cache, phases));
    }

    /// Records a single out-of-band phase sample (the outbound writer
    /// books `write` time here after the response envelope is sealed).
    pub fn record_phase_sample(&self, phase: Phase, us: u64) {
        lock_unpoisoned(&self.phase_hists)
            .entry(phase.name())
            .or_default()
            .record(us);
    }

    /// First-level cache in front of the pipeline, keyed on the *raw*
    /// request content (loop text byte-for-byte plus every knob). A hit
    /// skips even the loop parse; a miss falls through to the canonical
    /// per-op path, whose artifact/body caches still deduplicate requests
    /// that differ only in formatting. Responses are pure functions of
    /// their requests, so caching the whole outcome (including error
    /// outcomes) is sound.
    /// The first-level cache key of a request, or `None` for ops that
    /// bypass the result cache. The daemon uses this to dedupe identical
    /// requests *within* a parallel batch: without that, two same-key
    /// requests race on who populates the cache and the loser's
    /// `"cache"` tag depends on worker timing — a `--jobs`-dependent
    /// byte in an otherwise deterministic response stream.
    pub fn request_key(&self, req: &Request) -> Option<Fingerprint> {
        match req.op {
            ReqOp::Compile | ReqOp::Verify | ReqOp::Oracle => {}
            _ => return None,
        }
        let mut h = FingerprintHasher::new();
        h.write_str("request-v1");
        h.write_str(req.op.tag());
        h.write_str(req.backend.tag());
        h.write_str(req.mode.tag());
        h.write_str(&req.loop_text);
        h.write_str(&req.policy.to_string());
        h.write_f64(req.trip);
        h.write_u64(u64::from(req.threshold));
        h.write_u64(
            u64::from(req.prefetch) | u64::from(req.balanced) << 1 | u64::from(req.speculate) << 2,
        );
        h.write_u64(req.budget);
        h.write_u64(self.effective_deadline_ms(req).map_or(u64::MAX, |d| d));
        Some(h.finish())
    }

    fn cached_response(&self, req: &Request, tel: &Telemetry, phases: &PhaseTimer) -> Response {
        let key = self
            .request_key(req)
            .expect("cached_response only serves cacheable ops");
        let inner_tag = std::cell::Cell::new("miss");
        let t0 = Instant::now();
        let (cached, hit) = self.result_cache.get_or_insert_with(
            key,
            |r| r.body.len() + req.loop_text.len() + 64,
            || {
                let resp = match req.op {
                    ReqOp::Compile => self.compile(req, tel, phases),
                    _ => self.verify_or_oracle(req, tel, phases),
                };
                inner_tag.set(resp.cache);
                CachedResult {
                    status: resp.status,
                    body: resp.body,
                    upgraded: false,
                }
            },
        );
        if hit {
            // On a miss the probe time is dwarfed by (and attributed to)
            // the compile phases the closure just ran.
            phases.add_us(Phase::CacheLookup, t0.elapsed().as_micros() as u64);
        } else {
            self.persist_append(key, cached.status, &cached.body);
            // A cold refining compile answered with the heuristic
            // schedule: queue the async refinement — exact emission for
            // the tiered backend, the adaptive feedback loop for
            // `mode:"adaptive"` — which upgrades this entry (and the
            // tier body entry) in place when it lands.
            if req.op == ReqOp::Compile && cached.status == "ok" {
                if req.backend == Backend::Tiered {
                    self.schedule_refine(req, key, RefineKind::Exact);
                } else if req.mode == Mode::Adaptive {
                    self.schedule_refine(req, key, RefineKind::Adaptive);
                }
            }
        }
        Response {
            id: req.id.clone(),
            status: cached.status,
            cache: if hit {
                if cached.upgraded {
                    "upgraded"
                } else {
                    "hit"
                }
            } else {
                inner_tag.get()
            },
            body: cached.body.clone(),
            timings: None,
        }
    }

    /// Queues one refinement job for a cold refining compile,
    /// coalescing identical in-flight work: the first job under a dedup
    /// key becomes the batch leader and takes the queue slot; a second
    /// cold compile needing the same refinement (e.g. two tiered
    /// requests for one loop at different trip estimates, whose exact
    /// schedule is the same) appends itself as a waiter instead of
    /// scheduling the computation twice — each waiter still gets its
    /// own in-place upgrade. Failure to queue (worker already shut
    /// down) is counted, never surfaced: the heuristic answer stands.
    fn schedule_refine(&self, req: &Request, raw_key: Fingerprint, kind: RefineKind) {
        let job = RefineJob {
            raw_key,
            deadline_ms: self.effective_deadline_ms(req),
            kind,
            req: req.clone(),
        };
        let dedup_key = job.dedup_key();
        let (lock, cv) = &*self.refine_pending;
        {
            let mut inflight = lock_unpoisoned(&self.refine_inflight);
            if let Some(waiters) = inflight.get_mut(&dedup_key) {
                waiters.push(job);
                drop(inflight);
                self.upgrades.coalesced.fetch_add(1, Ordering::Relaxed);
                *lock_unpoisoned(lock) += 1;
                return;
            }
            inflight.insert(dedup_key, vec![job]);
        }
        self.upgrades.scheduled.fetch_add(1, Ordering::Relaxed);
        *lock_unpoisoned(lock) += 1;
        let sent = lock_unpoisoned(&self.refine_tx)
            .as_ref()
            .is_some_and(|tx| tx.send(dedup_key).is_ok());
        if !sent {
            // Shutdown race: reclaim the batch (the leader plus any
            // follower that squeezed in) — nobody will process it.
            let reclaimed = lock_unpoisoned(&self.refine_inflight)
                .remove(&dedup_key)
                .map_or(0, |w| w.len() as u64);
            self.upgrades.failed.fetch_add(1, Ordering::Relaxed);
            *lock_unpoisoned(lock) -= reclaimed;
            cv.notify_all();
        }
    }

    /// Tallies and traces a response (also used by the daemon for
    /// admission-path responses: overloaded / draining / parse errors).
    pub fn finish(&self, req: &Request, resp: Response, tel: &Telemetry) -> Response {
        self.counters.bump(resp.status);
        if tel.is_enabled() {
            tel.emit(Event::ServerRequest {
                trace_id: req.id.clone(),
                op: req.op.tag(),
                status: resp.status,
                cache: resp.cache,
                loop_name: loop_name_of(&req.loop_text),
            });
        }
        resp
    }

    /// Like [`Engine::finish`] for responses produced before a
    /// [`Request`] exists (protocol parse failures): tallies the status
    /// and traces under the given op tag.
    pub fn finish_admission(
        &self,
        trace_id: &str,
        op: &'static str,
        resp: Response,
        tel: &Telemetry,
    ) -> Response {
        self.counters.bump(resp.status);
        if tel.is_enabled() {
            tel.emit(Event::ServerRequest {
                trace_id: trace_id.to_string(),
                op,
                status: resp.status,
                cache: resp.cache,
                loop_name: String::new(),
            });
        }
        resp
    }

    /// Exports both caches' counters into `tel`'s metrics registry.
    pub fn export_metrics(&self, tel: &Telemetry) {
        self.compile_cache
            .export_metrics(tel, "serve.compile_cache");
        self.result_cache.export_metrics(tel, "serve.result_cache");
        tel.counter_add(
            "serve.requests.ok",
            self.counters.ok.load(Ordering::Relaxed),
        );
        tel.counter_add(
            "serve.requests.rejected",
            self.counters.rejected.load(Ordering::Relaxed),
        );
        tel.counter_add(
            "serve.requests.error",
            self.counters.error.load(Ordering::Relaxed),
        );
        tel.counter_add(
            "serve.requests.overloaded",
            self.counters.overloaded.load(Ordering::Relaxed),
        );
    }

    fn parse(&self, req: &Request, phases: &PhaseTimer) -> Result<LoopIr, Response> {
        match phases.time(Phase::Parse, || parse_loop(&req.loop_text)) {
            Ok(lp) => Ok(lp),
            Err(ParseError::Syntax { line, message }) => {
                let mut body = String::new();
                push_str_field(&mut body, "op", req.op.tag());
                push_str_field(&mut body, "error_kind", "syntax");
                push_u64_field(&mut body, "line", line as u64);
                push_str_field(&mut body, "error", &message);
                Err(Response {
                    id: req.id.clone(),
                    status: "error",
                    cache: "-",
                    body,
                    timings: None,
                })
            }
            Err(ParseError::Invalid(e)) => {
                let mut body = String::new();
                push_str_field(&mut body, "op", req.op.tag());
                push_str_field(&mut body, "error_kind", "invalid");
                push_str_field(&mut body, "error", &e.to_string());
                Err(Response {
                    id: req.id.clone(),
                    status: "error",
                    cache: "-",
                    body,
                    timings: None,
                })
            }
        }
    }

    /// Dispatches a compile on the request's backend: heuristic (the
    /// production pipeliner), exact (sync branch-and-bound emission), or
    /// tiered (heuristic now, exact refinement async). `mode:"adaptive"`
    /// layers on the heuristic backend only: heuristic now, adaptive
    /// hint refinement async.
    fn compile(&self, req: &Request, tel: &Telemetry, phases: &PhaseTimer) -> Response {
        if req.mode == Mode::Adaptive {
            return match req.backend {
                Backend::Heuristic => self.compile_adaptive_tier(req, tel, phases),
                // parse_request rejects the combination; a hand-built
                // Request gets the same answer here.
                _ => Response::error(
                    &req.id,
                    "error",
                    "mode 'adaptive' requires the heuristic backend",
                ),
            };
        }
        match req.backend {
            Backend::Heuristic => self.compile_heuristic(req, tel, phases),
            Backend::Exact => self.compile_exact(req, phases),
            Backend::Tiered => self.compile_tiered(req, tel, phases),
        }
    }

    /// Renders the heuristic compile body (shared by the heuristic and
    /// tiered paths; the tiered path appends its backend fields).
    fn render_heuristic_body(&self, req: &Request, compiled: &ltsp_core::CompiledLoop) -> String {
        let mut body = String::new();
        push_str_field(&mut body, "op", "compile");
        push_str_field(&mut body, "loop", compiled.lp.name());
        push_bool_field(&mut body, "pipelined", compiled.pipelined);
        push_u64_field(&mut body, "ii", u64::from(compiled.kernel.ii()));
        push_u64_field(
            &mut body,
            "stages",
            u64::from(compiled.kernel.stage_count()),
        );
        if let Some(stats) = compiled.stats {
            push_u64_field(&mut body, "res_mii", u64::from(stats.res_mii));
            push_u64_field(&mut body, "rec_mii", u64::from(stats.rec_mii));
        }
        if let Some(regs) = compiled.regs {
            use std::fmt::Write as _;
            let _ = write!(
                body,
                ",\"regs\":[{},{},{}]",
                regs.rotating_gr, regs.rotating_fr, regs.rotating_pr
            );
        }
        push_str_field(
            &mut body,
            "report",
            &render_compile_report(compiled, req.policy, req.trip),
        );
        body
    }

    fn compile_heuristic(&self, req: &Request, tel: &Telemetry, phases: &PhaseTimer) -> Response {
        let lp = match self.parse(req, phases) {
            Ok(lp) => lp,
            Err(resp) => return resp,
        };
        let cfg = CompileConfig::new(req.policy)
            .with_threshold(req.threshold)
            .with_prefetch(req.prefetch)
            .with_balanced_recurrences(req.balanced)
            .with_data_speculation(req.speculate);
        // Two-level: the artifact cache deduplicates the compile itself,
        // and the rendered body (kernel dump + JSON escaping, the bulk of
        // the per-hit cost for large kernels) is cached alongside the
        // verify/oracle results, keyed by the same inputs as the artifact.
        let body_key = {
            let mut h = FingerprintHasher::new();
            h.write_str("compile-body-v1");
            h.write_fingerprint(ltsp_core::compile_key(&lp, &self.machine, &cfg, req.trip));
            h.finish()
        };
        let artifact_hit = std::cell::Cell::new(false);
        let (cached, body_hit) = self.result_cache.get_or_insert_with(
            body_key,
            |r| r.body.len() + 32,
            || {
                let (compiled, hit) = compile_loop_cached_phased(
                    &self.compile_cache,
                    &lp,
                    &self.machine,
                    &cfg,
                    req.trip,
                    tel,
                    Some(phases),
                );
                artifact_hit.set(hit);
                phases.time(Phase::Render, || CachedResult {
                    status: "ok",
                    body: self.render_heuristic_body(req, &compiled),
                    upgraded: false,
                })
            },
        );
        if !body_hit {
            // Persist under the canonical body key too: a formatting
            // variant of a known loop replays to a parse-then-hit after
            // restart, not a recompile.
            self.persist_append(body_key, cached.status, &cached.body);
        }
        Response {
            id: req.id.clone(),
            status: cached.status,
            cache: if body_hit || artifact_hit.get() {
                "hit"
            } else {
                "miss"
            },
            body: cached.body.clone(),
            timings: None,
        }
    }

    /// The sync exact path: branch-and-bound emission at the proven
    /// minimal II, validator-certified, rendered once and cached under
    /// the exact body key (shared with the tiered refinement worker).
    fn compile_exact(&self, req: &Request, phases: &PhaseTimer) -> Response {
        let lp = match self.parse(req, phases) {
            Ok(lp) => lp,
            Err(resp) => return resp,
        };
        let deadline_ms = self.effective_deadline_ms(req);
        let body_key = exact_body_key(&self.machine, &lp, req.budget, deadline_ms);
        let (cached, hit) = self.result_cache.get_or_insert_with(
            body_key,
            |r| r.body.len() + 32,
            || compute_exact_body(&self.machine, &lp, req.budget, deadline_ms),
        );
        if !hit {
            self.persist_append(body_key, cached.status, &cached.body);
        }
        Response {
            id: req.id.clone(),
            status: cached.status,
            cache: if hit { "hit" } else { "miss" },
            body: cached.body.clone(),
            timings: None,
        }
    }

    /// The tiered initial answer: the heuristic compile, rendered under
    /// the tiered body key (which the refinement worker later upgrades
    /// in place). Tagged so clients can tell which tier they got.
    fn compile_tiered(&self, req: &Request, tel: &Telemetry, phases: &PhaseTimer) -> Response {
        let lp = match self.parse(req, phases) {
            Ok(lp) => lp,
            Err(resp) => return resp,
        };
        let cfg = CompileConfig::new(req.policy)
            .with_threshold(req.threshold)
            .with_prefetch(req.prefetch)
            .with_balanced_recurrences(req.balanced)
            .with_data_speculation(req.speculate);
        let deadline_ms = self.effective_deadline_ms(req);
        let body_key = tiered_body_key(&self.machine, &lp, &cfg, req.trip, req.budget, deadline_ms);
        let artifact_hit = std::cell::Cell::new(false);
        let (cached, body_hit) = self.result_cache.get_or_insert_with(
            body_key,
            |r| r.body.len() + 32,
            || {
                let (compiled, hit) = compile_loop_cached_phased(
                    &self.compile_cache,
                    &lp,
                    &self.machine,
                    &cfg,
                    req.trip,
                    tel,
                    Some(phases),
                );
                artifact_hit.set(hit);
                phases.time(Phase::Render, || {
                    let mut body = self.render_heuristic_body(req, &compiled);
                    push_str_field(&mut body, "backend", "tiered");
                    push_bool_field(&mut body, "refined", false);
                    CachedResult {
                        status: "ok",
                        body,
                        upgraded: false,
                    }
                })
            },
        );
        if !body_hit {
            self.persist_append(body_key, cached.status, &cached.body);
        }
        Response {
            id: req.id.clone(),
            status: cached.status,
            cache: if body_hit {
                if cached.upgraded {
                    "upgraded"
                } else {
                    "hit"
                }
            } else if artifact_hit.get() {
                "hit"
            } else {
                "miss"
            },
            body: cached.body.clone(),
            timings: None,
        }
    }

    /// The adaptive initial answer: the heuristic compile, rendered
    /// under the adaptive tier body key (which the refinement worker
    /// later upgrades in place with the converged schedule). Tagged
    /// `mode:"adaptive"` / `refined:false` so clients can tell they got
    /// the fast static tier.
    fn compile_adaptive_tier(
        &self,
        req: &Request,
        tel: &Telemetry,
        phases: &PhaseTimer,
    ) -> Response {
        let lp = match self.parse(req, phases) {
            Ok(lp) => lp,
            Err(resp) => return resp,
        };
        let cfg = CompileConfig::new(req.policy)
            .with_threshold(req.threshold)
            .with_prefetch(req.prefetch)
            .with_balanced_recurrences(req.balanced)
            .with_data_speculation(req.speculate);
        let body_key = adaptive_tier_body_key(&self.machine, &lp, &cfg, req.trip);
        let artifact_hit = std::cell::Cell::new(false);
        let (cached, body_hit) = self.result_cache.get_or_insert_with(
            body_key,
            |r| r.body.len() + 32,
            || {
                let (compiled, hit) = compile_loop_cached_phased(
                    &self.compile_cache,
                    &lp,
                    &self.machine,
                    &cfg,
                    req.trip,
                    tel,
                    Some(phases),
                );
                artifact_hit.set(hit);
                phases.time(Phase::Render, || {
                    let mut body = self.render_heuristic_body(req, &compiled);
                    push_str_field(&mut body, "mode", "adaptive");
                    push_bool_field(&mut body, "refined", false);
                    CachedResult {
                        status: "ok",
                        body,
                        upgraded: false,
                    }
                })
            },
        );
        if !body_hit {
            self.persist_append(body_key, cached.status, &cached.body);
        }
        Response {
            id: req.id.clone(),
            status: cached.status,
            cache: if body_hit {
                if cached.upgraded {
                    "upgraded"
                } else {
                    "hit"
                }
            } else if artifact_hit.get() {
                "hit"
            } else {
                "miss"
            },
            body: cached.body.clone(),
            timings: None,
        }
    }

    /// Verify and oracle share shape: pipeline + independent validation,
    /// oracle adds the exact-II proof. Outcomes are cached as rendered
    /// bodies keyed on the canonicalized loop and every knob that can
    /// change the answer.
    fn verify_or_oracle(&self, req: &Request, tel: &Telemetry, phases: &PhaseTimer) -> Response {
        let lp = match self.parse(req, phases) {
            Ok(lp) => lp,
            Err(resp) => return resp,
        };
        let mut h = FingerprintHasher::new();
        h.write_str(if req.op == ReqOp::Oracle {
            "oracle-v1"
        } else {
            "verify-v1"
        });
        h.write_str(&lp.to_string());
        h.write_fingerprint(Fingerprint::of_str(&format!("{:?}", self.machine)));
        if req.op == ReqOp::Oracle {
            h.write_u64(req.budget);
            h.write_u64(self.effective_deadline_ms(req).map_or(u64::MAX, |d| d));
        }
        let key = h.finish();
        let (cached, hit) = self.result_cache.get_or_insert_with(
            key,
            |r| r.body.len() + 32,
            || self.run_case(req, &lp, tel),
        );
        if !hit {
            self.persist_append(key, cached.status, &cached.body);
        }
        Response {
            id: req.id.clone(),
            status: cached.status,
            cache: if hit { "hit" } else { "miss" },
            body: cached.body.clone(),
            timings: None,
        }
    }

    fn effective_deadline_ms(&self, req: &Request) -> Option<u64> {
        match req.deadline_ms {
            Some(0) => None, // explicit 0 = no deadline
            Some(ms) => Some(ms),
            None if req.op == ReqOp::Oracle => self.cfg.oracle_deadline_ms,
            // Exact emission (sync or as tiered refinement) is bounded
            // by the same default deadline as the oracle proof.
            None if req.op == ReqOp::Compile && req.backend != Backend::Heuristic => {
                self.cfg.oracle_deadline_ms
            }
            None => None,
        }
    }

    fn run_case(&self, req: &Request, lp: &LoopIr, tel: &Telemetry) -> CachedResult {
        use std::fmt::Write as _;
        let opts = OracleOptions {
            node_budget: if req.op == ReqOp::Oracle {
                req.budget
            } else {
                OracleOptions::default().node_budget
            },
            time_budget: self.effective_deadline_ms(req).map(Duration::from_millis),
            ..OracleOptions::default()
        };
        let r = differential_case(lp, &self.machine, &opts, tel);
        let mut body = String::new();
        push_str_field(&mut body, "op", req.op.tag());
        push_str_field(&mut body, "loop", &r.name);
        push_bool_field(&mut body, "pipelined", r.pipelined);
        push_u64_field(&mut body, "ii", u64::from(r.heuristic_ii));
        body.push_str(",\"violations\":[");
        let mut report = String::new();
        for (i, v) in r.violations.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let line = format!("{}: violation [{}]: {v}", r.name, v.kind());
            let _ = write!(body, "\"{}\"", ltsp_telemetry::json::escape(&line));
        }
        body.push(']');
        let certified = r.violations.is_empty();
        let mut status: &'static str = if certified { "ok" } else { "rejected" };
        if req.op == ReqOp::Verify {
            if certified {
                let _ = writeln!(
                    report,
                    "{}: certified (II={}, {})",
                    r.name,
                    r.heuristic_ii,
                    if r.pipelined {
                        "modulo schedule"
                    } else {
                        "acyclic fallback"
                    }
                );
            }
        } else {
            match &r.verdict {
                IiVerdict::Exact {
                    optimal_ii, nodes, ..
                } => {
                    let gap = r.heuristic_ii - optimal_ii;
                    push_str_field(&mut body, "verdict", "exact");
                    push_u64_field(&mut body, "optimal_ii", u64::from(*optimal_ii));
                    push_u64_field(&mut body, "gap", u64::from(gap));
                    push_u64_field(&mut body, "nodes", *nodes);
                    let _ = writeln!(
                        report,
                        "{}: heuristic II={} optimal II={} gap={} ({} search nodes){}",
                        r.name,
                        r.heuristic_ii,
                        optimal_ii,
                        gap,
                        nodes,
                        if gap == 0 { " — proven optimal" } else { "" }
                    );
                }
                IiVerdict::BoundedUnknown {
                    proven_lower,
                    nodes,
                } => {
                    status = "rejected";
                    push_str_field(&mut body, "verdict", "bounded-unknown");
                    push_u64_field(&mut body, "proven_lower", u64::from(*proven_lower));
                    push_u64_field(&mut body, "nodes", *nodes);
                    let _ = writeln!(
                        report,
                        "{}: heuristic II={}, optimal II in [{}, {}] — budget exhausted \
                         after {} nodes",
                        r.name, r.heuristic_ii, proven_lower, r.heuristic_ii, nodes
                    );
                }
            }
        }
        push_str_field(&mut body, "report", &report);
        CachedResult {
            status,
            body,
            upgraded: false,
        }
    }

    fn stats_response(&self, req: &Request) -> Response {
        let mut body = String::new();
        push_str_field(&mut body, "op", "stats");
        for (key, v) in [
            ("requests_ok", self.counters.ok.load(Ordering::Relaxed)),
            (
                "requests_rejected",
                self.counters.rejected.load(Ordering::Relaxed),
            ),
            (
                "requests_error",
                self.counters.error.load(Ordering::Relaxed),
            ),
            (
                "requests_overloaded",
                self.counters.overloaded.load(Ordering::Relaxed),
            ),
        ] {
            push_u64_field(&mut body, key, v);
        }
        for (prefix, stats) in [
            ("compile_cache", self.compile_cache.stats()),
            ("result_cache", self.result_cache.stats()),
        ] {
            push_u64_field(&mut body, &format!("{prefix}_hits"), stats.hits);
            push_u64_field(&mut body, &format!("{prefix}_misses"), stats.misses);
            push_u64_field(&mut body, &format!("{prefix}_evictions"), stats.evictions);
            push_u64_field(&mut body, &format!("{prefix}_entries"), stats.entries);
            push_u64_field(&mut body, &format!("{prefix}_bytes"), stats.bytes);
        }
        for (key, v) in [
            ("persist_replayed", &self.persist_counters.replayed),
            ("persist_dropped", &self.persist_counters.dropped),
            ("persist_superseded", &self.persist_counters.superseded),
            ("persist_appended", &self.persist_counters.appended),
            (
                "persist_append_errors",
                &self.persist_counters.append_errors,
            ),
        ] {
            push_u64_field(&mut body, key, v.load(Ordering::Relaxed));
        }
        push_u64_field(
            &mut body,
            "persist_log_bytes",
            self.persist.as_deref().map_or(0, CacheLog::log_bytes),
        );
        for (key, v) in [
            ("upgrades_scheduled", &self.upgrades.scheduled),
            ("upgrades_coalesced", &self.upgrades.coalesced),
            ("upgrades_applied", &self.upgrades.applied),
            ("upgrades_refined", &self.upgrades.refined),
            ("upgrades_failed", &self.upgrades.failed),
        ] {
            push_u64_field(&mut body, key, v.load(Ordering::Relaxed));
        }
        Response {
            id: req.id.clone(),
            status: "ok",
            cache: "-",
            body,
            timings: None,
        }
    }

    /// The `{"op":"metrics"}` response: the Prometheus text snapshot
    /// escaped into a `"metrics"` string field. Bypasses every cache
    /// (like `stats`) and is excluded from the determinism contract.
    fn metrics_response(&self, req: &Request) -> Response {
        let mut body = String::new();
        push_str_field(&mut body, "op", "metrics");
        push_str_field(&mut body, "metrics", &self.render_prometheus());
        Response {
            id: req.id.clone(),
            status: "ok",
            cache: "-",
            body,
            timings: None,
        }
    }

    /// The full operational snapshot in Prometheus text format: request
    /// counters by status, cache counters and sizes, live gauges, chaos
    /// counters, and the per-phase latency histograms (cumulative
    /// `le` buckets in microseconds).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        prom::push_type(&mut out, "ltsp_requests_total", "counter");
        for (status, v) in [
            ("ok", self.counters.ok.load(Ordering::Relaxed)),
            ("rejected", self.counters.rejected.load(Ordering::Relaxed)),
            ("error", self.counters.error.load(Ordering::Relaxed)),
            (
                "overloaded",
                self.counters.overloaded.load(Ordering::Relaxed),
            ),
            ("draining", self.counters.draining.load(Ordering::Relaxed)),
        ] {
            prom::push_sample(
                &mut out,
                "ltsp_requests_total",
                &[("status", status)],
                v as f64,
            );
        }
        let caches = [
            ("compile", self.compile_cache.stats()),
            ("result", self.result_cache.stats()),
        ];
        for (name, kind, get) in [
            (
                "ltsp_cache_hits_total",
                "counter",
                (|s| s.hits) as fn(&ltsp_cache::CacheStats) -> u64,
            ),
            ("ltsp_cache_misses_total", "counter", |s| s.misses),
            ("ltsp_cache_evictions_total", "counter", |s| s.evictions),
            ("ltsp_cache_entries", "gauge", |s| s.entries),
            ("ltsp_cache_bytes", "gauge", |s| s.bytes),
        ] {
            prom::push_type(&mut out, name, kind);
            for (cache, stats) in &caches {
                prom::push_sample(&mut out, name, &[("cache", cache)], get(stats) as f64);
            }
        }
        for (name, v) in [
            ("ltsp_queue_depth", &self.gauges.queue_depth),
            ("ltsp_inflight", &self.gauges.inflight),
            ("ltsp_connections", &self.gauges.connections),
        ] {
            prom::push_type(&mut out, name, "gauge");
            prom::push_sample(&mut out, name, &[], v.load(Ordering::Relaxed) as f64);
        }
        for (name, v) in [
            ("ltsp_connections_shed_total", &self.gauges.conn_shed),
            ("ltsp_responses_shed_total", &self.gauges.responses_shed),
            ("ltsp_request_panics_total", &self.gauges.request_panics),
            ("ltsp_faults_injected_total", &self.gauges.faults_injected),
            (
                "ltsp_dispatcher_deaths_total",
                &self.gauges.dispatcher_deaths,
            ),
        ] {
            prom::push_type(&mut out, name, "counter");
            prom::push_sample(&mut out, name, &[], v.load(Ordering::Relaxed) as f64);
        }
        for (name, kind, v) in [
            (
                "ltsp_persist_replayed_records",
                "gauge",
                &self.persist_counters.replayed,
            ),
            (
                "ltsp_persist_dropped_records",
                "gauge",
                &self.persist_counters.dropped,
            ),
            (
                "ltsp_persist_superseded_records",
                "gauge",
                &self.persist_counters.superseded,
            ),
            (
                "ltsp_persist_appended_total",
                "counter",
                &self.persist_counters.appended,
            ),
            (
                "ltsp_persist_append_errors_total",
                "counter",
                &self.persist_counters.append_errors,
            ),
        ] {
            prom::push_type(&mut out, name, kind);
            prom::push_sample(&mut out, name, &[], v.load(Ordering::Relaxed) as f64);
        }
        prom::push_type(&mut out, "ltsp_persist_log_bytes", "gauge");
        prom::push_sample(
            &mut out,
            "ltsp_persist_log_bytes",
            &[],
            self.persist.as_deref().map_or(0, CacheLog::log_bytes) as f64,
        );
        prom::push_type(&mut out, "ltsp_upgrades_total", "counter");
        for (event, v) in [
            ("scheduled", &self.upgrades.scheduled),
            ("coalesced", &self.upgrades.coalesced),
            ("applied", &self.upgrades.applied),
            ("refined", &self.upgrades.refined),
            ("failed", &self.upgrades.failed),
        ] {
            prom::push_sample(
                &mut out,
                "ltsp_upgrades_total",
                &[("event", event)],
                v.load(Ordering::Relaxed) as f64,
            );
        }
        prom::push_type(&mut out, "ltsp_flight_records", "gauge");
        prom::push_sample(
            &mut out,
            "ltsp_flight_records",
            &[],
            self.flight.len() as f64,
        );
        prom::push_type(&mut out, "ltsp_flight_dumps_total", "counter");
        prom::push_sample(
            &mut out,
            "ltsp_flight_dumps_total",
            &[],
            self.flight.dump_count() as f64,
        );
        prom::push_type(&mut out, "ltsp_phase_us", "histogram");
        let hists = lock_unpoisoned(&self.phase_hists);
        for (name, h) in hists.iter() {
            prom::push_histogram(&mut out, "ltsp_phase_us", &[("phase", name)], h);
        }
        out
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.refine_shutdown();
    }
}

/// Appends one record to the disk tier (shared by the engine and the
/// refinement worker). Failures are counted and logged once.
fn append_record(
    log: Option<&CacheLog>,
    counters: &PersistCounters,
    key: Fingerprint,
    status: &str,
    body: &str,
) {
    let Some(log) = log else { return };
    match log.append(key, status, body) {
        Ok(()) => {
            counters.appended.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            if counters.append_errors.fetch_add(1, Ordering::Relaxed) == 0 {
                eprintln!(
                    "ltspd: persist append to {} failed: {e} (cache stays in-memory)",
                    log.path().display()
                );
            }
        }
    }
}

/// The canonical cache key of an exact-backend compile body: loop +
/// machine + search budget + deadline. Shared by sync `--backend exact`
/// requests and the tiered refinement worker, so either path warms the
/// other.
fn exact_body_key(
    machine: &MachineModel,
    lp: &LoopIr,
    budget: u64,
    deadline_ms: Option<u64>,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("compile-body-exact-v1");
    h.write_str(&lp.to_string());
    h.write_fingerprint(Fingerprint::of_str(&format!("{machine:?}")));
    h.write_u64(budget);
    h.write_u64(deadline_ms.map_or(u64::MAX, |d| d));
    h.finish()
}

/// The canonical cache key of a tiered compile body. Separate from the
/// heuristic `compile-body-v1` keyspace on purpose: in-place upgrades
/// swap *this* entry's bytes, and must never corrupt a plain heuristic
/// compile's cached body.
fn tiered_body_key(
    machine: &MachineModel,
    lp: &LoopIr,
    cfg: &CompileConfig,
    trip: f64,
    budget: u64,
    deadline_ms: Option<u64>,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("compile-body-tiered-v1");
    h.write_fingerprint(ltsp_core::compile_key(lp, machine, cfg, trip));
    h.write_u64(budget);
    h.write_u64(deadline_ms.map_or(u64::MAX, |d| d));
    h.finish()
}

/// The canonical cache key of an adaptive-mode tier body (the fast
/// static answer the refinement later upgrades in place). Separate from
/// both the heuristic and tiered keyspaces, same reasoning as
/// [`tiered_body_key`]. No oracle budget or deadline: the adaptive loop
/// runs a fixed deterministic refinement window, not a search.
fn adaptive_tier_body_key(
    machine: &MachineModel,
    lp: &LoopIr,
    cfg: &CompileConfig,
    trip: f64,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("compile-body-adaptive-tier-v1");
    h.write_fingerprint(ltsp_core::compile_key(lp, machine, cfg, trip));
    h.finish()
}

/// The canonical cache key of a *converged* adaptive compile body: the
/// same compile inputs as the tier key, under its own namespace. Every
/// refinement of the same (loop, config, trip) lands here first, so
/// coalesced-then-split request streams (and warm restarts) compute the
/// fixpoint once.
fn adaptive_body_key(
    machine: &MachineModel,
    lp: &LoopIr,
    cfg: &CompileConfig,
    trip: f64,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("compile-body-adaptive-v1");
    h.write_fingerprint(ltsp_core::compile_key(lp, machine, cfg, trip));
    h.finish()
}

/// Runs the adaptive refinement loop to its certified fixpoint and
/// renders the converged compile body: the chosen schedule's facts plus
/// the adaptive telemetry (`static_ii`, `rounds`, `chosen_round`,
/// `converged`, `certified`, `dropped_prefetches`, `refined`) and the
/// canonical [`render_adaptive_report`] text — the same renderer
/// `ltspc compile --adaptive` prints through, so the upgraded server
/// bytes and the local CLI report agree by construction. An uncertified
/// round (a scheduler bug by definition) renders as `rejected`, and the
/// fast static tier stays in place.
fn compute_adaptive_body(
    machine: &MachineModel,
    lp: &LoopIr,
    cfg: &CompileConfig,
    req: &Request,
) -> CachedResult {
    use std::fmt::Write as _;
    let res = compile_loop_adaptive(
        lp,
        machine,
        cfg,
        req.trip,
        &AdaptiveOptions::default(),
        &Telemetry::disabled(),
    );
    let certified = res.all_certified();
    let compiled = &res.compiled;
    let mut body = String::new();
    push_str_field(&mut body, "op", "compile");
    push_str_field(&mut body, "loop", compiled.lp.name());
    push_bool_field(&mut body, "pipelined", compiled.pipelined);
    push_u64_field(&mut body, "ii", u64::from(compiled.kernel.ii()));
    push_u64_field(
        &mut body,
        "stages",
        u64::from(compiled.kernel.stage_count()),
    );
    if let Some(stats) = compiled.stats {
        push_u64_field(&mut body, "res_mii", u64::from(stats.res_mii));
        push_u64_field(&mut body, "rec_mii", u64::from(stats.rec_mii));
    }
    if let Some(regs) = compiled.regs {
        let _ = write!(
            body,
            ",\"regs\":[{},{},{}]",
            regs.rotating_gr, regs.rotating_fr, regs.rotating_pr
        );
    }
    push_str_field(&mut body, "mode", "adaptive");
    push_u64_field(&mut body, "static_ii", u64::from(res.static_ii()));
    push_u64_field(&mut body, "rounds", res.rounds.len() as u64);
    push_u64_field(&mut body, "chosen_round", u64::from(res.chosen_round));
    push_bool_field(&mut body, "converged", res.converged);
    push_bool_field(&mut body, "certified", certified);
    push_u64_field(
        &mut body,
        "dropped_prefetches",
        res.chosen().overlay.dropped_prefetches() as u64,
    );
    push_bool_field(&mut body, "refined", res.ii() < res.static_ii());
    push_str_field(
        &mut body,
        "report",
        &render_adaptive_report(&res, req.policy, req.trip),
    );
    CachedResult {
        status: if certified { "ok" } else { "rejected" },
        body,
        upgraded: false,
    }
}

/// Runs the exact backend on `lp` and renders the compile body it
/// produces: the emitted schedule's facts plus the refinement telemetry
/// (`heuristic_ii`, `proven_optimal`, `refined`, `nodes`). A rejected
/// case (validator violations — a real bug somewhere) renders the
/// violations like the oracle op does.
fn compute_exact_body(
    machine: &MachineModel,
    lp: &LoopIr,
    budget: u64,
    deadline_ms: Option<u64>,
) -> CachedResult {
    use std::fmt::Write as _;
    let opts = OracleOptions {
        node_budget: budget,
        time_budget: deadline_ms.map(Duration::from_millis),
        ..OracleOptions::default()
    };
    match exact_case(lp, machine, &opts) {
        Ok(case) => {
            let mut body = String::new();
            push_str_field(&mut body, "op", "compile");
            push_str_field(&mut body, "loop", &case.name);
            // A refined schedule is a genuine modulo schedule even when
            // the heuristic had fallen back to the acyclic path.
            push_bool_field(
                &mut body,
                "pipelined",
                case.pipelined || case.result.refined,
            );
            push_u64_field(&mut body, "ii", u64::from(case.result.schedule.ii()));
            push_u64_field(
                &mut body,
                "stages",
                u64::from(case.result.schedule.stage_count()),
            );
            push_str_field(&mut body, "backend", "exact");
            push_u64_field(&mut body, "heuristic_ii", u64::from(case.heuristic_ii));
            push_bool_field(&mut body, "proven_optimal", case.result.proven_optimal);
            push_bool_field(&mut body, "refined", case.result.refined);
            push_u64_field(&mut body, "nodes", case.result.nodes);
            let regs = &case.result.regs;
            let _ = write!(
                body,
                ",\"regs\":[{},{},{}]",
                regs.rotating_gr, regs.rotating_fr, regs.rotating_pr
            );
            push_str_field(&mut body, "report", &render_exact_report(lp, &case));
            CachedResult {
                status: "ok",
                body,
                upgraded: false,
            }
        }
        Err(violations) => {
            let mut body = String::new();
            push_str_field(&mut body, "op", "compile");
            push_str_field(&mut body, "loop", lp.name());
            push_str_field(&mut body, "backend", "exact");
            body.push_str(",\"violations\":[");
            for (i, v) in violations.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let line = format!("{}: violation [{}]: {v}", lp.name(), v.kind());
                let _ = write!(body, "\"{}\"", ltsp_telemetry::json::escape(&line));
            }
            body.push(']');
            CachedResult {
                status: "rejected",
                body,
                upgraded: false,
            }
        }
    }
}

/// The compile configuration a refining request compiled under (the
/// same knobs the cold path used).
fn compile_config_of(req: &Request) -> CompileConfig {
    CompileConfig::new(req.policy)
        .with_threshold(req.threshold)
        .with_prefetch(req.prefetch)
        .with_balanced_recurrences(req.balanced)
        .with_data_speculation(req.speculate)
}

/// Processes one coalesced refinement batch: compute (or reuse) the
/// refined body *once* under its shared canonical key, then swap every
/// waiter's raw-request and tier body-key entries to it in place —
/// each insert replaces a whole `Arc`'d value, so readers observe
/// heuristic bytes or refined bytes, never a torn mix — and append the
/// upgrades under their keys so a warm restart replays the refined
/// bytes (last-writer-wins). All waiters share a dedup key, so the
/// first job's refinement inputs are the batch's.
fn refine_batch(sh: &RefineShared, jobs: &[RefineJob]) {
    let Some(first) = jobs.first() else { return };
    let req = &first.req;
    let Ok(lp) = parse_loop(&req.loop_text) else {
        // Unreachable in practice: the initial compiles parsed this text.
        sh.upgrades
            .failed
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        return;
    };
    let refined_key = match first.kind {
        RefineKind::Exact => exact_body_key(&sh.machine, &lp, req.budget, first.deadline_ms),
        RefineKind::Adaptive => {
            adaptive_body_key(&sh.machine, &lp, &compile_config_of(req), req.trip)
        }
    };
    let (refined, refined_hit) = sh.result_cache.get_or_insert_with(
        refined_key,
        |r| r.body.len() + 32,
        || match first.kind {
            RefineKind::Exact => {
                compute_exact_body(&sh.machine, &lp, req.budget, first.deadline_ms)
            }
            RefineKind::Adaptive => {
                compute_adaptive_body(&sh.machine, &lp, &compile_config_of(req), req)
            }
        },
    );
    if !refined_hit {
        append_record(
            sh.persist.as_deref(),
            &sh.persist_counters,
            refined_key,
            refined.status,
            &refined.body,
        );
    }
    if refined.status != "ok" {
        sh.upgrades
            .failed
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        return;
    }
    let strictly_refined = refined.body.contains("\"refined\":true");
    for job in jobs {
        let cfg = compile_config_of(&job.req);
        let tier_key = match job.kind {
            RefineKind::Exact => tiered_body_key(
                &sh.machine,
                &lp,
                &cfg,
                job.req.trip,
                job.req.budget,
                job.deadline_ms,
            ),
            RefineKind::Adaptive => adaptive_tier_body_key(&sh.machine, &lp, &cfg, job.req.trip),
        };
        let up = CachedResult {
            status: refined.status,
            body: refined.body.clone(),
            upgraded: true,
        };
        sh.result_cache.insert(
            job.raw_key,
            up.clone(),
            up.body.len() + job.req.loop_text.len() + 64,
        );
        let bytes = up.body.len() + 32;
        sh.result_cache.insert(tier_key, up, bytes);
        // Second appends under both keys: the in-place upgrade, durably.
        for key in [job.raw_key, tier_key] {
            append_record(
                sh.persist.as_deref(),
                &sh.persist_counters,
                key,
                refined.status,
                &refined.body,
            );
        }
        sh.upgrades.applied.fetch_add(1, Ordering::Relaxed);
        if strictly_refined {
            sh.upgrades.refined.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Maps a replayed status string back onto the engine's static status
/// vocabulary. Unknown strings (possible only via a hand-edited log)
/// degrade to `error` rather than inventing a status.
fn intern_status(s: &str) -> &'static str {
    match s {
        "ok" => "ok",
        "rejected" => "rejected",
        _ => "error",
    }
}

/// Best-effort loop name extraction for telemetry on requests that fail
/// before parsing completes: the token after the leading `loop` keyword.
fn loop_name_of(text: &str) -> String {
    let mut it = text.split_whitespace();
    match (it.next(), it.next()) {
        (Some("loop"), Some(name)) => name.trim_end_matches('{').to_string(),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;
    use ltsp_telemetry::json;

    fn req(line: &str) -> Request {
        parse_request(line).unwrap()
    }

    fn engine() -> Engine {
        Engine::new(EngineConfig::default())
    }

    fn loop_json(name: &str) -> String {
        json::escape(&ltsp_workloads::saxpy(name).to_string())
    }

    fn bool_of(v: &json::JsonValue, key: &str) -> bool {
        match v.get(key) {
            Some(json::JsonValue::Bool(b)) => *b,
            other => panic!("{key}: expected a bool, got {other:?}"),
        }
    }

    #[test]
    fn compile_misses_then_hits_with_identical_bytes() {
        let e = engine();
        let tel = Telemetry::disabled();
        let line = format!(
            r#"{{"op":"compile","id":"c1","loop":"{}"}}"#,
            loop_json("s")
        );
        let cold = e.handle(&req(&line), &tel);
        let warm = e.handle(&req(&line), &tel);
        assert_eq!(cold.status, "ok");
        assert_eq!(cold.cache, "miss");
        assert_eq!(warm.cache, "hit");
        assert_eq!(cold.body, warm.body, "hit body identical to cold body");
        let v = json::parse(&cold.render()).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("compile"));
        assert!(v.get("ii").unwrap().as_u64().unwrap() >= 1);
        assert!(v
            .get("report")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("pipelined: II="));
    }

    #[test]
    fn config_knobs_split_the_compile_key() {
        let e = engine();
        let tel = Telemetry::disabled();
        let a = format!(r#"{{"op":"compile","loop":"{}"}}"#, loop_json("s"));
        let b = format!(
            r#"{{"op":"compile","loop":"{}","policy":"baseline"}}"#,
            loop_json("s")
        );
        assert_eq!(e.handle(&req(&a), &tel).cache, "miss");
        assert_eq!(
            e.handle(&req(&b), &tel).cache,
            "miss",
            "policy changes the key"
        );
        assert_eq!(e.handle(&req(&a), &tel).cache, "hit");
    }

    #[test]
    fn verify_certifies_and_caches() {
        let e = engine();
        let tel = Telemetry::disabled();
        let line = format!(r#"{{"op":"verify","loop":"{}"}}"#, loop_json("s"));
        let cold = e.handle(&req(&line), &tel);
        assert_eq!(cold.status, "ok");
        assert_eq!(cold.cache, "miss");
        let v = json::parse(&cold.render()).unwrap();
        assert!(v
            .get("report")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("certified (II="));
        assert_eq!(v.get("violations").unwrap().as_array().unwrap().len(), 0);
        let warm = e.handle(&req(&line), &tel);
        assert_eq!(warm.cache, "hit");
        assert_eq!(cold.body, warm.body);
    }

    #[test]
    fn oracle_reports_verdict_and_respects_zero_deadline() {
        let e = engine();
        let tel = Telemetry::disabled();
        // deadline_ms:0 = unlimited, so the node budget decides.
        let line = format!(
            r#"{{"op":"oracle","loop":"{}","budget":200000,"deadline_ms":0}}"#,
            loop_json("s")
        );
        let r = e.handle(&req(&line), &tel);
        assert_eq!(r.status, "ok", "{}", r.render());
        let v = json::parse(&r.render()).unwrap();
        assert_eq!(v.get("verdict").unwrap().as_str(), Some("exact"));
        assert_eq!(v.get("gap").unwrap().as_u64(), Some(0));
    }

    /// A loop past the oracle's `max_insts` gate (24): the verdict is
    /// deterministically `BoundedUnknown` with zero search nodes.
    fn oversized_loop_json() -> String {
        let mut b = ltsp_ir::LoopBuilder::new("big");
        for k in 0..30u64 {
            let r = b.affine_ref(&format!("p{k}"), ltsp_ir::DataClass::Int, k << 22, 4, 4);
            let _ = b.load(r);
        }
        json::escape(&b.build().unwrap().to_string())
    }

    #[test]
    fn oracle_beyond_proof_reach_is_rejected_not_hung() {
        let e = engine();
        let tel = Telemetry::disabled();
        let line = format!(
            r#"{{"op":"oracle","loop":"{}","deadline_ms":0}}"#,
            oversized_loop_json()
        );
        let r = e.handle(&req(&line), &tel);
        assert_eq!(r.status, "rejected");
        let v = json::parse(&r.render()).unwrap();
        assert_eq!(v.get("verdict").unwrap().as_str(), Some("bounded-unknown"));
        assert!(v
            .get("report")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("budget exhausted"));
    }

    #[test]
    fn oracle_budget_splits_the_result_key() {
        let e = engine();
        let tel = Telemetry::disabled();
        let a = format!(
            r#"{{"op":"oracle","loop":"{}","budget":200000,"deadline_ms":0}}"#,
            loop_json("s")
        );
        let b = format!(
            r#"{{"op":"oracle","loop":"{}","budget":7,"deadline_ms":0}}"#,
            loop_json("s")
        );
        assert_eq!(e.handle(&req(&a), &tel).cache, "miss");
        let rb = e.handle(&req(&b), &tel);
        assert_eq!(rb.cache, "miss", "budget changes the key");
        assert_eq!(e.handle(&req(&a), &tel).cache, "hit", "no cross-budget hit");
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = engine();
        let tel = Telemetry::disabled();
        let r = e.handle(
            &req(r#"{"op":"compile","id":"x","loop":"loop b {\n  junk\n}"}"#),
            &tel,
        );
        assert_eq!(r.status, "error");
        let v = json::parse(&r.render()).unwrap();
        assert_eq!(v.get("error_kind").unwrap().as_str(), Some("syntax"));
        assert_eq!(v.get("line").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn requests_emit_trace_events_and_counters() {
        let e = engine();
        let tel = Telemetry::enabled();
        let line = format!(
            r#"{{"op":"verify","id":"t-9","loop":"{}"}}"#,
            loop_json("s")
        );
        e.handle(&req(&line), &tel);
        let events = tel.events();
        let ev = events
            .iter()
            .find(|e| e.event.kind() == "server_request")
            .expect("server_request event");
        let rendered = format!("{:?}", ev.event);
        assert!(rendered.contains("t-9"), "{rendered}");
        assert_eq!(e.counters.ok.load(Ordering::Relaxed), 1);
        let stats = e.handle(&req(r#"{"op":"stats"}"#), &tel);
        let v = json::parse(&stats.render()).unwrap();
        assert_eq!(v.get("requests_ok").unwrap().as_u64(), Some(1));
        // A cold verify misses twice: once on the raw-request key, once
        // on the canonical verify key.
        assert_eq!(v.get("result_cache_misses").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn exact_backend_compiles_with_optimality_telemetry() {
        let e = engine();
        let tel = Telemetry::disabled();
        let line = format!(
            r#"{{"op":"compile","id":"x1","loop":"{}","backend":"exact"}}"#,
            loop_json("s")
        );
        let cold = e.handle(&req(&line), &tel);
        assert_eq!(cold.status, "ok", "{}", cold.render());
        assert_eq!(cold.cache, "miss");
        let v = json::parse(&cold.render()).unwrap();
        assert_eq!(v.get("backend").unwrap().as_str(), Some("exact"));
        assert!(bool_of(&v, "proven_optimal"));
        let ii = v.get("ii").unwrap().as_u64().unwrap();
        let heur = v.get("heuristic_ii").unwrap().as_u64().unwrap();
        assert!(ii <= heur, "exact II never above the heuristic's");
        assert!(v
            .get("report")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("backend=exact"));
        let warm = e.handle(&req(&line), &tel);
        assert_eq!(warm.cache, "hit");
        assert_eq!(cold.body, warm.body);
    }

    #[test]
    fn backend_splits_the_request_key() {
        let e = engine();
        let tel = Telemetry::disabled();
        let heur = format!(r#"{{"op":"compile","loop":"{}"}}"#, loop_json("s"));
        let exact = format!(
            r#"{{"op":"compile","loop":"{}","backend":"exact"}}"#,
            loop_json("s")
        );
        assert_eq!(e.handle(&req(&heur), &tel).cache, "miss");
        assert_eq!(
            e.handle(&req(&exact), &tel).cache,
            "miss",
            "backend changes the key"
        );
        assert_eq!(e.handle(&req(&heur), &tel).cache, "hit");
    }

    #[test]
    fn tiered_compile_answers_heuristically_then_upgrades_in_place() {
        let e = engine();
        let tel = Telemetry::disabled();
        let line = format!(
            r#"{{"op":"compile","id":"t1","loop":"{}","backend":"tiered"}}"#,
            loop_json("s")
        );
        let cold = e.handle(&req(&line), &tel);
        assert_eq!(cold.status, "ok", "{}", cold.render());
        assert_eq!(cold.cache, "miss");
        let v = json::parse(&cold.render()).unwrap();
        assert_eq!(
            v.get("backend").unwrap().as_str(),
            Some("tiered"),
            "initial answer is the heuristic tier"
        );
        assert!(!bool_of(&v, "refined"));

        e.refine_wait_idle();
        assert_eq!(e.upgrades.scheduled.load(Ordering::Relaxed), 1);
        assert_eq!(e.upgrades.applied.load(Ordering::Relaxed), 1);
        assert_eq!(e.upgrades.failed.load(Ordering::Relaxed), 0);

        let warm = e.handle(&req(&line), &tel);
        assert_eq!(warm.cache, "upgraded", "hit on an upgraded entry");
        assert_ne!(warm.body, cold.body, "bytes were upgraded in place");
        let v = json::parse(&warm.render()).unwrap();
        assert_eq!(v.get("backend").unwrap().as_str(), Some("exact"));
        assert!(bool_of(&v, "proven_optimal"));

        // The upgraded bytes ARE the exact backend's bytes: a sync exact
        // request for the same loop returns the identical body.
        let exact_line = format!(
            r#"{{"op":"compile","id":"t2","loop":"{}","backend":"exact"}}"#,
            loop_json("s")
        );
        let exact = e.handle(&req(&exact_line), &tel);
        assert_eq!(exact.body, warm.body, "upgrade == exact, byte for byte");
    }

    #[test]
    fn tiered_upgrade_survives_warm_restart_with_zero_misses() {
        let dir =
            std::env::temp_dir().join(format!("ltsp-engine-tiered-restart-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.log");
        let _ = std::fs::remove_file(&path);
        let cfg = || EngineConfig {
            persist_path: Some(path.clone()),
            ..EngineConfig::default()
        };
        let tel = Telemetry::disabled();
        let line = format!(
            r#"{{"op":"compile","id":"t1","loop":"{}","backend":"tiered"}}"#,
            loop_json("s")
        );
        let upgraded_body = {
            let e = Engine::new(cfg());
            e.handle(&req(&line), &tel);
            e.refine_wait_idle();
            let warm = e.handle(&req(&line), &tel);
            assert_eq!(warm.cache, "upgraded");
            warm.body
        };
        // Warm restart: replay must collapse the duplicate-key appends
        // to the upgraded bytes (last-writer-wins) and serve them as
        // hits — no recompiles, no resurrections of the heuristic body.
        let e = Engine::new(cfg());
        assert!(
            e.persist_counters.superseded.load(Ordering::Relaxed) >= 2,
            "raw and tiered keys were each appended twice"
        );
        let replayed = e.handle(&req(&line), &tel);
        assert_eq!(replayed.cache, "hit", "replayed entries serve as hits");
        assert_eq!(replayed.body, upgraded_body, "upgraded bytes replay");
        let stats = e.handle(&req(r#"{"op":"stats"}"#), &tel);
        let v = json::parse(&stats.render()).unwrap();
        assert_eq!(
            v.get("result_cache_misses").unwrap().as_u64(),
            Some(0),
            "zero misses after a post-upgrade warm restart"
        );
    }

    #[test]
    fn mode_splits_the_request_key() {
        let e = engine();
        let tel = Telemetry::disabled();
        let stat = format!(r#"{{"op":"compile","loop":"{}"}}"#, loop_json("s"));
        let adpt = format!(
            r#"{{"op":"compile","loop":"{}","mode":"adaptive"}}"#,
            loop_json("s")
        );
        let rs = e.handle(&req(&stat), &tel);
        assert_eq!(rs.cache, "miss");
        // The adaptive request reuses the compiled artifact (a "hit")
        // but renders through its own keys: mode-stamped body, never
        // the static entry's bytes.
        let ra = e.handle(&req(&adpt), &tel);
        assert_ne!(ra.body, rs.body, "mode changes the key");
        assert!(ra.body.contains("\"mode\":\"adaptive\""));
        assert!(!rs.body.contains("\"mode\""));
        // And the refine worker's upgrade lands only on the adaptive
        // entries — the static bytes are untouched.
        e.refine_wait_idle();
        let rs2 = e.handle(&req(&stat), &tel);
        assert_eq!(rs2.cache, "hit");
        assert_eq!(rs2.body, rs.body, "static entry survives the upgrade");
        assert_eq!(e.handle(&req(&adpt), &tel).cache, "upgraded");
    }

    #[test]
    fn adaptive_compile_answers_statically_then_upgrades_in_place() {
        let e = engine();
        let tel = Telemetry::disabled();
        let line = format!(
            r#"{{"op":"compile","id":"a1","loop":"{}","mode":"adaptive"}}"#,
            loop_json("s")
        );
        let cold = e.handle(&req(&line), &tel);
        assert_eq!(cold.status, "ok", "{}", cold.render());
        assert_eq!(cold.cache, "miss");
        let v = json::parse(&cold.render()).unwrap();
        assert_eq!(
            v.get("mode").unwrap().as_str(),
            Some("adaptive"),
            "initial answer is stamped with the mode"
        );
        assert!(!bool_of(&v, "refined"), "first answer is the static tier");
        let static_ii = v.get("ii").unwrap().as_u64().unwrap();

        e.refine_wait_idle();
        assert_eq!(e.upgrades.scheduled.load(Ordering::Relaxed), 1);
        assert_eq!(e.upgrades.applied.load(Ordering::Relaxed), 1);
        assert_eq!(e.upgrades.failed.load(Ordering::Relaxed), 0);
        assert_eq!(e.upgrades.refined.load(Ordering::Relaxed), 1);

        let warm = e.handle(&req(&line), &tel);
        assert_eq!(warm.cache, "upgraded", "hit on an upgraded entry");
        assert_ne!(warm.body, cold.body, "bytes were upgraded in place");
        let v = json::parse(&warm.render()).unwrap();
        assert_eq!(v.get("mode").unwrap().as_str(), Some("adaptive"));
        assert!(
            bool_of(&v, "refined"),
            "converged schedule beat the static II"
        );
        assert!(
            bool_of(&v, "certified"),
            "every round was validator-certified"
        );
        assert!(bool_of(&v, "converged"));
        let adaptive_ii = v.get("ii").unwrap().as_u64().unwrap();
        assert!(adaptive_ii < static_ii, "{adaptive_ii} vs {static_ii}");
        let report = v.get("report").unwrap().as_str().unwrap();
        assert!(report.contains("mode=adaptive"), "{report}");
        assert!(report.contains("round 0: II="), "round trace in the report");
    }

    #[test]
    fn adaptive_upgrade_survives_warm_restart_with_zero_misses() {
        let dir = std::env::temp_dir().join(format!(
            "ltsp-engine-adaptive-restart-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.log");
        let _ = std::fs::remove_file(&path);
        let cfg = || EngineConfig {
            persist_path: Some(path.clone()),
            ..EngineConfig::default()
        };
        let tel = Telemetry::disabled();
        let line = format!(
            r#"{{"op":"compile","id":"a1","loop":"{}","mode":"adaptive"}}"#,
            loop_json("s")
        );
        let upgraded_body = {
            let e = Engine::new(cfg());
            e.handle(&req(&line), &tel);
            e.refine_wait_idle();
            let warm = e.handle(&req(&line), &tel);
            assert_eq!(warm.cache, "upgraded");
            warm.body
        };
        // Warm restart: the LWW replay collapses the duplicate-key
        // appends to the converged adaptive bytes and serves them as
        // hits — no recompiles, no resurrection of the static body.
        let e = Engine::new(cfg());
        assert!(
            e.persist_counters.superseded.load(Ordering::Relaxed) >= 2,
            "raw and adaptive-tier keys were each appended twice"
        );
        let replayed = e.handle(&req(&line), &tel);
        assert_eq!(replayed.cache, "hit", "replayed entries serve as hits");
        assert_eq!(replayed.body, upgraded_body, "adaptive bytes replay");
        let stats = e.handle(&req(r#"{"op":"stats"}"#), &tel);
        let v = json::parse(&stats.render()).unwrap();
        assert_eq!(
            v.get("result_cache_misses").unwrap().as_u64(),
            Some(0),
            "zero misses after a post-upgrade warm restart"
        );
        let log_bytes = v.get("persist_log_bytes").unwrap().as_u64().unwrap();
        assert_eq!(
            log_bytes,
            std::fs::metadata(&path).unwrap().len(),
            "the gauge tracks the on-disk log size"
        );
    }

    #[test]
    fn persist_warning_latches_once_past_the_threshold() {
        let dir =
            std::env::temp_dir().join(format!("ltsp-engine-persist-warn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.log");
        let _ = std::fs::remove_file(&path);
        let e = Engine::new(EngineConfig {
            persist_path: Some(path.clone()),
            persist_warn_bytes: Some(1), // any append crosses it
            ..EngineConfig::default()
        });
        let tel = Telemetry::disabled();
        assert!(
            !e.persist_warned.load(Ordering::Relaxed),
            "an empty log is under the threshold"
        );
        let line = |id: &str| {
            format!(
                r#"{{"op":"compile","id":"{id}","loop":"{}"}}"#,
                loop_json("s")
            )
        };
        e.handle(&req(&line("w1")), &tel);
        assert!(
            e.persist_warned.load(Ordering::Relaxed),
            "the first append past the threshold trips the warning"
        );
        // A generous threshold never warns.
        let _ = std::fs::remove_file(&path);
        let quiet = Engine::new(EngineConfig {
            persist_path: Some(path),
            persist_warn_bytes: Some(1 << 30),
            ..EngineConfig::default()
        });
        quiet.handle(&req(&line("w2")), &tel);
        assert!(!quiet.persist_warned.load(Ordering::Relaxed));
    }

    #[test]
    fn coalesced_refines_run_once_and_upgrade_every_waiter() {
        let e = engine();
        let tel = Telemetry::disabled();
        // Same loop text and budget, different trip estimates: distinct
        // raw and tiered keys, but one shared exact refinement.
        let a = format!(
            r#"{{"op":"compile","id":"c1","loop":"{}","backend":"tiered","trip":100}}"#,
            loop_json("s")
        );
        let b = format!(
            r#"{{"op":"compile","id":"c2","loop":"{}","backend":"tiered","trip":200}}"#,
            loop_json("s")
        );
        {
            let _gate = e.refine_pause();
            assert_eq!(e.handle(&req(&a), &tel).cache, "miss");
            assert_eq!(e.handle(&req(&b), &tel).cache, "miss");
        }
        e.refine_wait_idle();
        assert_eq!(
            e.upgrades.scheduled.load(Ordering::Relaxed),
            1,
            "one leader queued"
        );
        assert_eq!(
            e.upgrades.coalesced.load(Ordering::Relaxed),
            1,
            "the second request coalesced onto it"
        );
        assert_eq!(
            e.upgrades.applied.load(Ordering::Relaxed),
            2,
            "both waiters were upgraded"
        );
        assert_eq!(e.upgrades.failed.load(Ordering::Relaxed), 0);
        for line in [&a, &b] {
            let warm = e.handle(&req(line), &tel);
            assert_eq!(warm.cache, "upgraded", "{}", warm.render());
        }
        let stats = e.handle(&req(r#"{"op":"stats"}"#), &tel);
        let v = json::parse(&stats.render()).unwrap();
        assert_eq!(v.get("upgrades_coalesced").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn loop_names_extract_for_telemetry() {
        assert_eq!(loop_name_of("loop saxpy {\n}"), "saxpy");
        assert_eq!(loop_name_of("loop x{ }"), "x");
        assert_eq!(loop_name_of("not a loop"), "");
    }
}

#[cfg(test)]
mod warmprof {
    use super::*;
    use crate::proto::parse_request;
    use ltsp_telemetry::Telemetry;

    #[test]
    #[ignore]
    fn warm_profile() {
        let mut b = ltsp_ir::LoopBuilder::new("syn0");
        let c0 = b.live_in_fr("c0");
        let c1 = b.live_in_fr("c1");
        for s in 0..3u64 {
            let x = b.affine_ref(
                &format!("x{s}[i]"),
                ltsp_ir::DataClass::Fp,
                (s + 1) << 24,
                8,
                8,
            );
            let v = b.load(x);
            let mut t = b.fma(c0, v, c1);
            for _ in 0..12 {
                t = b.fma(c0, t, c1);
                t = b.fmul(t, t);
            }
            let y = b.affine_ref(
                &format!("y{s}[i]"),
                ltsp_ir::DataClass::Fp,
                ((s + 1) << 24) + (1 << 20),
                8,
                8,
            );
            b.store(y, t);
        }
        let lp = b.build().unwrap();
        let text = lp.to_string();
        let line = format!(
            "{{\"op\":\"compile\",\"id\":\"p\",\"loop\":\"{}\"}}",
            ltsp_telemetry::json::escape(&text)
        );
        let tel = Telemetry::disabled();
        let engine = Engine::new(EngineConfig::default());
        let req = parse_request(&line).unwrap();
        let r = engine.handle(&req, &tel);
        eprintln!("body bytes: {}", r.body.len());
        let t0 = std::time::Instant::now();
        let n = 2000;
        for _ in 0..n {
            let req = parse_request(&line).unwrap();
            let _ = engine.handle(&req, &tel);
        }
        eprintln!("warm handle+parse: {:?}/iter", t0.elapsed() / n);
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            let _ = parse_request(&line).unwrap();
        }
        eprintln!("parse_request alone: {:?}/iter", t0.elapsed() / n);
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            let lp2 = ltsp_ir::parse_loop(&text).unwrap();
            std::hint::black_box(lp2.to_string());
        }
        eprintln!("loop parse+tostring: {:?}/iter", t0.elapsed() / n);
    }
}
