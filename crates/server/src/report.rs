//! The canonical human-readable compile report.
//!
//! This is the exact text `ltspc <file.loop>` prints for a compile (sans
//! `--asm`/`--simulate` extras), factored out so the daemon's `compile`
//! responses and the local CLI render through one function. Remote and
//! local output being byte-identical is then true *by construction*, and
//! CI diffs the two directly.

use std::fmt::Write as _;

use ltsp_adaptive::AdaptiveResult;
use ltsp_core::{CompiledLoop, LatencyPolicy};
use ltsp_ir::LoopIr;
use ltsp_oracle::ExactCase;

/// Renders the compile report: the policy/HLO header line, the schedule
/// summary, the register line, a blank separator and the kernel dump.
pub fn render_compile_report(compiled: &CompiledLoop, policy: LatencyPolicy, trip: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: policy={} trip-estimate={} prefetches={} hinted-refs={}",
        compiled.lp.name(),
        policy,
        trip,
        compiled.hlo.prefetches_inserted,
        compiled.hlo.hinted
    );
    if let Some(stats) = compiled.stats {
        let _ = writeln!(
            out,
            "pipelined: II={} (ResMII={} RecMII={}) stages={} boosted={} critical={} speculated={}{}",
            compiled.kernel.ii(),
            stats.res_mii,
            stats.rec_mii,
            compiled.kernel.stage_count(),
            stats.boosted_loads,
            stats.critical_loads,
            stats.speculated_edges,
            if stats.dropped_boosts {
                " (boosts dropped by register pressure)"
            } else {
                ""
            }
        );
        if let Some(regs) = compiled.regs {
            let _ = writeln!(
                out,
                "registers: GR {} FR {} PR {} (rotating)",
                regs.rotating_gr, regs.rotating_fr, regs.rotating_pr
            );
        }
    } else {
        let _ = writeln!(
            out,
            "not pipelined (acyclic fallback): schedule length {}",
            compiled.kernel.ii()
        );
    }
    out.push('\n');
    out.push_str(&compiled.kernel.dump(&compiled.lp));
    out
}

/// Renders the exact backend's compile report: the optimality header,
/// the schedule/register summary, a blank separator and the kernel dump
/// — same shape as [`render_compile_report`], so `ltspc` and the daemon
/// print exact results through one function too.
pub fn render_exact_report(lp: &LoopIr, case: &ExactCase) -> String {
    let mut out = String::new();
    let r = &case.result;
    let _ = writeln!(
        out,
        "{}: backend=exact heuristic-II={} emitted-II={}{}{}",
        case.name,
        case.heuristic_ii,
        r.schedule.ii(),
        if r.proven_optimal {
            " (proven optimal)"
        } else {
            " (optimality unresolved in budget)"
        },
        if r.refined { " [refined]" } else { "" },
    );
    let _ = writeln!(
        out,
        "exact: II={} stages={} search-nodes={}",
        r.schedule.ii(),
        r.schedule.stage_count(),
        r.nodes
    );
    let _ = writeln!(
        out,
        "registers: GR {} FR {} PR {} (rotating)",
        r.regs.rotating_gr, r.regs.rotating_fr, r.regs.rotating_pr
    );
    out.push('\n');
    out.push_str(&r.schedule.dump(lp));
    out
}

/// Renders the adaptive compile report: the convergence header, one
/// line per refinement round (fixpoint trace), the chosen schedule's
/// summary and register lines, a blank separator and the kernel dump —
/// same shape as [`render_compile_report`], so `ltspc --adaptive` and
/// the daemon's refine worker print converged results through one
/// function, byte for byte.
pub fn render_adaptive_report(res: &AdaptiveResult, policy: LatencyPolicy, trip: f64) -> String {
    let mut out = String::new();
    let c = &res.compiled;
    let _ = writeln!(
        out,
        "{}: policy={} trip-estimate={} mode=adaptive static-II={} adaptive-II={} {}",
        c.lp.name(),
        policy,
        trip,
        res.static_ii(),
        res.ii(),
        if res.converged {
            "(fixpoint)"
        } else {
            "(round cap)"
        }
    );
    for r in &res.rounds {
        let _ = writeln!(
            out,
            "round {}: II={} covered={} deltas={} drops={} stalls={} cycles={}{}{}",
            r.round,
            r.ii,
            r.covered,
            r.hint_deltas,
            r.overlay.dropped_prefetches(),
            r.stall_cycles,
            r.total_cycles,
            if r.certified {
                " certified"
            } else {
                " UNCERTIFIED"
            },
            if r.round == res.chosen_round {
                " <= chosen"
            } else {
                ""
            }
        );
    }
    if c.pipelined {
        let _ = writeln!(
            out,
            "pipelined: II={} stages={}",
            c.kernel.ii(),
            c.kernel.stage_count()
        );
    } else {
        let _ = writeln!(
            out,
            "not pipelined (acyclic fallback): schedule length {}",
            c.kernel.ii()
        );
    }
    if let Some(regs) = c.regs {
        let _ = writeln!(
            out,
            "registers: GR {} FR {} PR {} (rotating)",
            regs.rotating_gr, regs.rotating_fr, regs.rotating_pr
        );
    }
    out.push('\n');
    out.push_str(&c.kernel.dump(&c.lp));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_core::{compile_loop_with_profile_traced, CompileConfig};
    use ltsp_machine::MachineModel;
    use ltsp_telemetry::Telemetry;

    #[test]
    fn report_has_header_summary_and_kernel() {
        let lp = ltsp_workloads::saxpy("s");
        let m = MachineModel::itanium2();
        let cfg = CompileConfig::new(LatencyPolicy::HloHints);
        let c = compile_loop_with_profile_traced(&lp, &m, &cfg, 100.0, &Telemetry::disabled());
        let r = render_compile_report(&c, LatencyPolicy::HloHints, 100.0);
        assert!(
            r.starts_with("s: policy=hlo-hints trip-estimate=100 "),
            "{r}"
        );
        assert!(r.contains("pipelined: II="));
        assert!(r.contains("\n\n"), "blank line before the kernel dump");
        assert!(r.ends_with('\n'));
    }

    #[test]
    fn exact_report_has_header_summary_and_kernel() {
        let lp = ltsp_workloads::saxpy("s");
        let m = MachineModel::itanium2();
        let case =
            ltsp_oracle::exact_case(&lp, &m, &ltsp_oracle::OracleOptions::default()).unwrap();
        let r = render_exact_report(&lp, &case);
        assert!(r.starts_with("s: backend=exact heuristic-II="), "{r}");
        assert!(r.contains("proven optimal"), "{r}");
        assert!(r.contains("registers: GR "), "{r}");
        assert!(r.contains("\n\n"), "blank line before the kernel dump");
    }

    #[test]
    fn adaptive_report_has_round_trace_and_kernel() {
        let lp = ltsp_workloads::saxpy("s");
        let m = MachineModel::itanium2();
        let cfg = CompileConfig::new(LatencyPolicy::HloHints);
        let res = ltsp_adaptive::compile_loop_adaptive(
            &lp,
            &m,
            &cfg,
            100.0,
            &ltsp_adaptive::AdaptiveOptions::default(),
            &Telemetry::disabled(),
        );
        let r = render_adaptive_report(&res, LatencyPolicy::HloHints, 100.0);
        assert!(
            r.starts_with("s: policy=hlo-hints trip-estimate=100 mode=adaptive static-II="),
            "{r}"
        );
        assert!(r.contains("round 0: II="), "{r}");
        assert!(r.contains("<= chosen"), "{r}");
        assert!(r.contains(" certified"), "{r}");
        assert!(!r.contains("UNCERTIFIED"), "{r}");
        assert!(r.contains("\n\n"), "blank line before the kernel dump");
    }
}
