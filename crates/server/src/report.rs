//! The canonical human-readable compile report.
//!
//! This is the exact text `ltspc <file.loop>` prints for a compile (sans
//! `--asm`/`--simulate` extras), factored out so the daemon's `compile`
//! responses and the local CLI render through one function. Remote and
//! local output being byte-identical is then true *by construction*, and
//! CI diffs the two directly.

use std::fmt::Write as _;

use ltsp_core::{CompiledLoop, LatencyPolicy};
use ltsp_ir::LoopIr;
use ltsp_oracle::ExactCase;

/// Renders the compile report: the policy/HLO header line, the schedule
/// summary, the register line, a blank separator and the kernel dump.
pub fn render_compile_report(compiled: &CompiledLoop, policy: LatencyPolicy, trip: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: policy={} trip-estimate={} prefetches={} hinted-refs={}",
        compiled.lp.name(),
        policy,
        trip,
        compiled.hlo.prefetches_inserted,
        compiled.hlo.hinted
    );
    if let Some(stats) = compiled.stats {
        let _ = writeln!(
            out,
            "pipelined: II={} (ResMII={} RecMII={}) stages={} boosted={} critical={} speculated={}{}",
            compiled.kernel.ii(),
            stats.res_mii,
            stats.rec_mii,
            compiled.kernel.stage_count(),
            stats.boosted_loads,
            stats.critical_loads,
            stats.speculated_edges,
            if stats.dropped_boosts {
                " (boosts dropped by register pressure)"
            } else {
                ""
            }
        );
        if let Some(regs) = compiled.regs {
            let _ = writeln!(
                out,
                "registers: GR {} FR {} PR {} (rotating)",
                regs.rotating_gr, regs.rotating_fr, regs.rotating_pr
            );
        }
    } else {
        let _ = writeln!(
            out,
            "not pipelined (acyclic fallback): schedule length {}",
            compiled.kernel.ii()
        );
    }
    out.push('\n');
    out.push_str(&compiled.kernel.dump(&compiled.lp));
    out
}

/// Renders the exact backend's compile report: the optimality header,
/// the schedule/register summary, a blank separator and the kernel dump
/// — same shape as [`render_compile_report`], so `ltspc` and the daemon
/// print exact results through one function too.
pub fn render_exact_report(lp: &LoopIr, case: &ExactCase) -> String {
    let mut out = String::new();
    let r = &case.result;
    let _ = writeln!(
        out,
        "{}: backend=exact heuristic-II={} emitted-II={}{}{}",
        case.name,
        case.heuristic_ii,
        r.schedule.ii(),
        if r.proven_optimal {
            " (proven optimal)"
        } else {
            " (optimality unresolved in budget)"
        },
        if r.refined { " [refined]" } else { "" },
    );
    let _ = writeln!(
        out,
        "exact: II={} stages={} search-nodes={}",
        r.schedule.ii(),
        r.schedule.stage_count(),
        r.nodes
    );
    let _ = writeln!(
        out,
        "registers: GR {} FR {} PR {} (rotating)",
        r.regs.rotating_gr, r.regs.rotating_fr, r.regs.rotating_pr
    );
    out.push('\n');
    out.push_str(&r.schedule.dump(lp));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_core::{compile_loop_with_profile_traced, CompileConfig};
    use ltsp_machine::MachineModel;
    use ltsp_telemetry::Telemetry;

    #[test]
    fn report_has_header_summary_and_kernel() {
        let lp = ltsp_workloads::saxpy("s");
        let m = MachineModel::itanium2();
        let cfg = CompileConfig::new(LatencyPolicy::HloHints);
        let c = compile_loop_with_profile_traced(&lp, &m, &cfg, 100.0, &Telemetry::disabled());
        let r = render_compile_report(&c, LatencyPolicy::HloHints, 100.0);
        assert!(
            r.starts_with("s: policy=hlo-hints trip-estimate=100 "),
            "{r}"
        );
        assert!(r.contains("pipelined: II="));
        assert!(r.contains("\n\n"), "blank line before the kernel dump");
        assert!(r.ends_with('\n'));
    }

    #[test]
    fn exact_report_has_header_summary_and_kernel() {
        let lp = ltsp_workloads::saxpy("s");
        let m = MachineModel::itanium2();
        let case =
            ltsp_oracle::exact_case(&lp, &m, &ltsp_oracle::OracleOptions::default()).unwrap();
        let r = render_exact_report(&lp, &case);
        assert!(r.starts_with("s: backend=exact heuristic-II="), "{r}");
        assert!(r.contains("proven optimal"), "{r}");
        assert!(r.contains("registers: GR "), "{r}");
        assert!(r.contains("\n\n"), "blank line before the kernel dump");
    }
}
