//! `ltspd` — the pipelining compiler as a service.
//!
//! A dependency-free (std-only) threaded TCP daemon that exposes the
//! full pipeline — parse → HLO hints → DDG → modulo schedule → register
//! allocation → (optionally) oracle certification — over a
//! line-delimited JSON protocol, fronted by content-addressed schedule
//! caches with byte-budget LRU eviction, a bounded admission queue with
//! explicit backpressure, request batching onto the deterministic
//! [`ltsp_par`] worker pool, per-request oracle deadlines, and graceful
//! drain.
//!
//! The serving layer inherits the repository's determinism contract:
//! every response is a pure function of its request, so the bytes a
//! client reads are identical at any server `--jobs`, and a cache hit
//! returns exactly the bytes the cold path produced. See [`proto`] for
//! the wire grammar, [`engine`] for cache key derivation, and
//! [`daemon`] for the backpressure state machine and drain semantics
//! (also DESIGN.md §12).

pub mod daemon;
pub mod engine;
pub mod fault;
pub mod flight;
pub mod proto;
mod report;

pub use daemon::{serve, spawn, ServerConfig, ServerHandle, SHARD_KILL_EXIT_CODE};
pub use engine::{Engine, EngineConfig, PersistCounters, ServerGauges, UpgradeCounters};
pub use fault::{FaultPlan, FaultSite};
pub use flight::{normalize_flight_dump, read_dumps, FlightRecord, FlightRecorder};
pub use proto::{parse_request, Backend, Mode, ProtoError, ReqOp, Request, Response};
pub use report::{render_adaptive_report, render_compile_report, render_exact_report};
