//! Deterministic fault injection for the serving stack (`LTSP_FAULT`).
//!
//! The chaos contract this module exists to prove: under injected
//! handler panics, handler delays, short writes, and connection drops,
//! `ltspd` keeps serving, and every **non-faulted** request's response
//! stays byte-identical to a fault-free run. That is only testable if
//! the fault decisions themselves are deterministic — independent of
//! arrival timing, batch composition and worker scheduling — so every
//! decision here is a pure function of `(seed, site, request id)`:
//! a fingerprint hash compared against the site's probability
//! threshold. Two runs with the same spec fault the same requests, and
//! a test can compute the faulted set up front with [`FaultPlan::fires`].
//!
//! # Spec grammar
//!
//! Comma-separated `site:probability` entries, e.g.
//!
//! ```text
//! LTSP_FAULT="panic:0.01,slow:50ms@0.05,drop:0.02,short:0.1,seed:7"
//! ```
//!
//! - `panic:P` — the request handler panics (before any work) with
//!   probability `P`. The daemon contains it and answers `error`.
//! - `slow:DURms@P` — the handler sleeps `DUR` milliseconds first with
//!   probability `P` (a stand-in for a stalled backend; bytes served
//!   are unaffected).
//! - `drop:P` — the connection is closed instead of writing the
//!   response (the client sees EOF and must retry elsewhere).
//! - `short:P` — the response line is written in two separate TCP
//!   writes (a torn write; the bytes are identical, so this faults
//!   nothing — it proves client framing survives segmentation).
//! - `dispatch:P` — the dispatcher itself panics when it pops a batch
//!   whose first request fires. This is the blast-radius drill for the
//!   "dispatcher died" recovery path: drain trips and queued requests
//!   are answered `error`, never silently dropped.
//! - `shardkill:P` — the whole process exits (code 113) when a handled
//!   request fires, *before* producing a response. This is the cluster
//!   chaos drill: a router in front of the shard must observe the dead
//!   connection and fail the in-flight request over to another shard —
//!   deterministically, because the kill is keyed on the request id.
//! - `seed:N` — the plan seed (default 0); re-keys every decision.

use std::time::Duration;

use ltsp_cache::FingerprintHasher;

/// The named injection sites. Each site's decisions are keyed
/// independently: a request can be slow *and* panic, and `drop` is keyed
/// on the response about to be written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Handler panic (contained by the daemon).
    Panic,
    /// Handler delay.
    Slow,
    /// Connection closed instead of writing a response.
    Drop,
    /// Response line written in two TCP segments.
    ShortWrite,
    /// Dispatcher panic (tests the dispatcher-died drain path).
    Dispatch,
    /// Whole-process exit mid-request (tests router failover).
    ShardKill,
}

impl FaultSite {
    /// The site's spec/telemetry tag.
    pub fn tag(self) -> &'static str {
        match self {
            FaultSite::Panic => "panic",
            FaultSite::Slow => "slow",
            FaultSite::Drop => "drop",
            FaultSite::ShortWrite => "short-write",
            FaultSite::Dispatch => "dispatch",
            FaultSite::ShardKill => "shard-kill",
        }
    }
}

/// A parsed, seeded fault plan. `FaultPlan::default()` injects nothing
/// and costs one branch per site check.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Decision seed; folded into every site hash.
    pub seed: u64,
    /// Handler panic probability in [0, 1].
    pub panic_p: f64,
    /// Handler delay probability in [0, 1].
    pub slow_p: f64,
    /// Injected handler delay.
    pub slow: Duration,
    /// Connection-drop probability in [0, 1].
    pub drop_p: f64,
    /// Torn-write probability in [0, 1].
    pub short_p: f64,
    /// Dispatcher panic probability in [0, 1].
    pub dispatch_p: f64,
    /// Process-exit (shard kill) probability in [0, 1].
    pub shardkill_p: f64,
}

impl FaultPlan {
    /// True when any site can fire.
    pub fn is_active(&self) -> bool {
        self.panic_p > 0.0
            || self.slow_p > 0.0
            || self.drop_p > 0.0
            || self.short_p > 0.0
            || self.dispatch_p > 0.0
            || self.shardkill_p > 0.0
    }

    /// Parses an `LTSP_FAULT` spec (see the module docs for the
    /// grammar). The empty string is the inactive plan.
    ///
    /// # Errors
    ///
    /// A one-line message naming the offending entry and the accepted
    /// forms — never a panic, never a silently ignored entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (site, value) = entry.split_once(':').ok_or_else(|| {
                format!("invalid LTSP_FAULT entry '{entry}': expected site:value")
            })?;
            let prob = |v: &str| -> Result<f64, String> {
                v.parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| {
                        format!("invalid LTSP_FAULT entry '{entry}': probability must be in [0, 1]")
                    })
            };
            match site.trim() {
                "panic" => plan.panic_p = prob(value)?,
                "drop" => plan.drop_p = prob(value)?,
                "short" => plan.short_p = prob(value)?,
                "dispatch" => plan.dispatch_p = prob(value)?,
                "shardkill" => plan.shardkill_p = prob(value)?,
                "seed" => {
                    plan.seed = value.trim().parse().map_err(|_| {
                        format!("invalid LTSP_FAULT entry '{entry}': seed must be a u64")
                    })?;
                }
                "slow" => {
                    // slow:50ms@0.05 — duration@probability.
                    let (dur, p) = value.split_once('@').ok_or_else(|| {
                        format!("invalid LTSP_FAULT entry '{entry}': expected slow:DURms@P")
                    })?;
                    let ms: u64 = dur
                        .trim()
                        .strip_suffix("ms")
                        .and_then(|d| d.trim().parse().ok())
                        .ok_or_else(|| {
                            format!(
                                "invalid LTSP_FAULT entry '{entry}': duration must be like 50ms"
                            )
                        })?;
                    plan.slow = Duration::from_millis(ms);
                    plan.slow_p = prob(p)?;
                }
                other => {
                    return Err(format!(
                        "invalid LTSP_FAULT site '{other}': \
                         expected panic|slow|drop|short|dispatch|shardkill|seed"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Reads and parses the `LTSP_FAULT` environment variable; unset or
    /// empty means no faults.
    ///
    /// # Errors
    ///
    /// Same as [`FaultPlan::parse`].
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("LTSP_FAULT") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// Whether `site` fires for the request/response identified by
    /// `key` — a pure function of `(seed, site, key)`, so the same spec
    /// faults the same requests on every run, at any `--jobs`, in any
    /// batch composition. Tests compute expected faulted sets with this.
    pub fn fires(&self, site: FaultSite, key: &str) -> bool {
        let p = match site {
            FaultSite::Panic => self.panic_p,
            FaultSite::Slow => self.slow_p,
            FaultSite::Drop => self.drop_p,
            FaultSite::ShortWrite => self.short_p,
            FaultSite::Dispatch => self.dispatch_p,
            FaultSite::ShardKill => self.shardkill_p,
        };
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mut h = FingerprintHasher::new();
        h.write_str("ltsp-fault-v1");
        h.write_u64(self.seed);
        h.write_str(site.tag());
        h.write_str(key);
        // FNV's multiply-by-small-prime avalanches its high bits poorly
        // (fine for cache keys, biased as a uniform draw), so xor-fold
        // the 128-bit state and run an fmix64-style finalizer first.
        let fp = h.finish().0;
        let mut x = (fp as u64) ^ ((fp >> 64) as u64);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        (x as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_unset_specs_are_inactive() {
        assert!(!FaultPlan::parse("").unwrap().is_active());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn parses_the_documented_example() {
        let p = FaultPlan::parse("panic:0.01,slow:50ms@0.05,drop:0.02,short:0.1,seed:7").unwrap();
        assert_eq!(p.panic_p, 0.01);
        assert_eq!(p.slow, Duration::from_millis(50));
        assert_eq!(p.slow_p, 0.05);
        assert_eq!(p.drop_p, 0.02);
        assert_eq!(p.short_p, 0.1);
        assert_eq!(p.seed, 7);
        assert!(p.is_active());
    }

    #[test]
    fn rejects_malformed_entries_loudly() {
        for bad in [
            "panic",
            "panic:2.0",
            "panic:-0.1",
            "panic:x",
            "slow:50@0.1",
            "slow:0.1",
            "seed:abc",
            "warp:0.5",
        ] {
            let e = FaultPlan::parse(bad).unwrap_err();
            assert!(e.contains("invalid LTSP_FAULT"), "{bad}: {e}");
            assert!(!e.contains('\n'), "one line: {e:?}");
        }
    }

    #[test]
    fn shardkill_site_parses_and_fires_deterministically() {
        let p = FaultPlan::parse("shardkill:0.5,seed:9").unwrap();
        assert_eq!(p.shardkill_p, 0.5);
        assert!(p.is_active());
        let kills: Vec<bool> = (0..64)
            .map(|i| p.fires(FaultSite::ShardKill, &format!("req-{i}")))
            .collect();
        let again: Vec<bool> = (0..64)
            .map(|i| p.fires(FaultSite::ShardKill, &format!("req-{i}")))
            .collect();
        assert_eq!(kills, again, "same plan, same kills");
        assert!(kills.iter().any(|&b| b) && kills.iter().any(|&b| !b));
        let always = FaultPlan::parse("shardkill:1.0").unwrap();
        assert!(always.fires(FaultSite::ShardKill, "anything"));
        assert!(!FaultPlan::default().fires(FaultSite::ShardKill, "anything"));
    }

    #[test]
    fn decisions_are_deterministic_and_site_independent() {
        let p = FaultPlan::parse("panic:0.5,drop:0.5,seed:42").unwrap();
        let panics: Vec<bool> = (0..64)
            .map(|i| p.fires(FaultSite::Panic, &format!("req-{i}")))
            .collect();
        let again: Vec<bool> = (0..64)
            .map(|i| p.fires(FaultSite::Panic, &format!("req-{i}")))
            .collect();
        assert_eq!(panics, again, "same plan, same decisions");
        let drops: Vec<bool> = (0..64)
            .map(|i| p.fires(FaultSite::Drop, &format!("req-{i}")))
            .collect();
        assert_ne!(panics, drops, "sites draw independently");
        assert!(panics.iter().any(|&b| b) && panics.iter().any(|&b| !b));
    }

    #[test]
    fn seed_rekeys_every_decision() {
        let a = FaultPlan::parse("panic:0.5,seed:1").unwrap();
        let b = FaultPlan::parse("panic:0.5,seed:2").unwrap();
        let fa: Vec<bool> = (0..64)
            .map(|i| a.fires(FaultSite::Panic, &format!("req-{i}")))
            .collect();
        let fb: Vec<bool> = (0..64)
            .map(|i| b.fires(FaultSite::Panic, &format!("req-{i}")))
            .collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn rates_are_roughly_calibrated() {
        let p = FaultPlan::parse("panic:0.1").unwrap();
        let hits = (0..10_000)
            .filter(|i| p.fires(FaultSite::Panic, &format!("req-{i}")))
            .count();
        assert!((500..1500).contains(&hits), "10% of 10k, got {hits}");
        let never = FaultPlan::default();
        assert!(!(0..100).any(|i| never.fires(FaultSite::Panic, &format!("req-{i}"))));
        let always = FaultPlan::parse("panic:1.0").unwrap();
        assert!((0..100).all(|i| always.fires(FaultSite::Panic, &format!("req-{i}"))));
    }
}
