//! Register-file supply.

use ltsp_ir::RegClass;

/// Rotating and static register supply per class.
///
/// On Itanium, a programmable-sized area of the general register file
/// (starting at `r32`), FP registers `f32`–`f127`, and predicates
/// `p16`–`p63` rotate. The paper's Sec. 2.2: "96 integer and 96 FP
/// registers can rotate".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterFiles {
    /// Rotating general registers available to pipelined loops.
    pub rotating_gr: u32,
    /// Rotating FP registers.
    pub rotating_fr: u32,
    /// Rotating predicate registers.
    pub rotating_pr: u32,
    /// Total architected general registers (for utilization statistics).
    pub total_gr: u32,
    /// Total architected FP registers.
    pub total_fr: u32,
    /// Total architected predicate registers.
    pub total_pr: u32,
}

impl RegisterFiles {
    /// Rotating supply for a class.
    pub fn rotating(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Gr => self.rotating_gr,
            RegClass::Fr => self.rotating_fr,
            RegClass::Pr => self.rotating_pr,
        }
    }

    /// Total architected supply for a class.
    pub fn total(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Gr => self.total_gr,
            RegClass::Fr => self.total_fr,
            RegClass::Pr => self.total_pr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;

    #[test]
    fn itanium_rotating_supply() {
        let m = MachineModel::itanium2();
        let r = m.registers();
        assert_eq!(r.rotating(RegClass::Gr), 96);
        assert_eq!(r.rotating(RegClass::Fr), 96);
        assert_eq!(r.rotating(RegClass::Pr), 48);
        assert!(r.total(RegClass::Gr) >= r.rotating(RegClass::Gr));
    }
}
