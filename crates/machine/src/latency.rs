//! Operation latencies and the hint-aware load-latency query.

use ltsp_ir::{DataClass, LatencyHint, Opcode};

use crate::cache::CacheGeometry;

/// What the pipeliner is asking the machine model for when it queries a
/// load's latency (Sec. 3.3 of the paper): the minimum (base) latency, or
/// the expected latency derived from an HLO hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyQuery {
    /// Best-case latency: L1 hit for integer loads, L2 hit for FP loads.
    Base,
    /// Expected latency from the HLO hint — translated to the *typical*
    /// latency of the hinted level, not its best case, "to provide headroom
    /// for latency-increasing dynamic hazards".
    Hinted(LatencyHint),
    /// An exact scheduled latency chosen by the pipeliner (used by the
    /// balanced-recurrence extension, which distributes a cycle's slack
    /// among its loads instead of marking them all critical).
    Exact(u32),
}

/// Fixed operation latencies plus the load-latency query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    /// Simple ALU / move / compare latency.
    pub alu: u32,
    /// Shift/extract latency.
    pub shift: u32,
    /// Integer multiply (`xma`) latency.
    pub imul: u32,
    /// FP arithmetic (fadd/fsub/fmul/fma) latency.
    pub fp: u32,
    /// FP conversion latency.
    pub fcvt: u32,
    /// Extra cycles FP loads need for format conversion.
    pub fp_load_extra: u32,
}

impl LatencyTable {
    /// Latency of a non-load opcode. Loads go through
    /// [`LatencyTable::load_latency`]; stores and prefetches produce no
    /// value, their "latency" for dependence purposes is 1 cycle.
    pub fn op_latency(&self, op: Opcode) -> u32 {
        match op {
            Opcode::Load(_) => unreachable!("use load_latency for loads"),
            Opcode::Store(_) | Opcode::Prefetch(_) => 1,
            Opcode::Add
            | Opcode::Sub
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Cmp
            | Opcode::Mov
            | Opcode::MovImm
            | Opcode::Sel
            | Opcode::Nop => self.alu,
            Opcode::Shl | Opcode::Shr | Opcode::Tbit | Opcode::Ext => self.shift,
            Opcode::Mul => self.imul,
            Opcode::Fadd | Opcode::Fsub | Opcode::Fmul | Opcode::Fma | Opcode::Fcmp => self.fp,
            Opcode::Fcvt => self.fcvt,
        }
    }

    /// The load-latency query of the paper's Sec. 3.3.
    ///
    /// With [`LatencyQuery::Base`], returns the minimum latency: the L1
    /// best case for integer loads; FP loads bypass L1, so their base is
    /// the L2 best case plus the FP format-conversion cycle.
    ///
    /// With [`LatencyQuery::Hinted`], returns the *typical* latency of the
    /// hinted cache level (11 / 21 rather than 5 / 14 on the modeled
    /// machine), again plus the FP extra cycle for FP loads.
    pub fn load_latency(&self, geo: &CacheGeometry, data: DataClass, q: LatencyQuery) -> u32 {
        let extra = match data {
            DataClass::Int => 0,
            DataClass::Fp => self.fp_load_extra,
        };
        match q {
            LatencyQuery::Base => match data {
                DataClass::Int => geo.l1.best_latency,
                DataClass::Fp => geo.l2.best_latency + extra,
            },
            LatencyQuery::Hinted(h) => geo.typical_latency(h.level()) + extra,
            LatencyQuery::Exact(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;

    #[test]
    fn paper_latency_numbers() {
        let m = MachineModel::itanium2();
        let t = m.latencies();
        let g = m.caches();
        // Base: int 1 (L1), FP 5+1 = 6 (bypasses L1).
        assert_eq!(t.load_latency(g, DataClass::Int, LatencyQuery::Base), 1);
        assert_eq!(t.load_latency(g, DataClass::Fp, LatencyQuery::Base), 6);
        // Hints translate to typical values 11/21, +1 for FP.
        assert_eq!(
            t.load_latency(g, DataClass::Int, LatencyQuery::Hinted(LatencyHint::L2)),
            11
        );
        assert_eq!(
            t.load_latency(g, DataClass::Int, LatencyQuery::Hinted(LatencyHint::L3)),
            21
        );
        assert_eq!(
            t.load_latency(g, DataClass::Fp, LatencyQuery::Hinted(LatencyHint::L2)),
            12
        );
        assert_eq!(
            t.load_latency(g, DataClass::Fp, LatencyQuery::Hinted(LatencyHint::L3)),
            22
        );
    }

    #[test]
    fn op_latencies() {
        let m = MachineModel::itanium2();
        let t = m.latencies();
        assert_eq!(t.op_latency(Opcode::Add), 1);
        assert_eq!(t.op_latency(Opcode::Fma), 4);
        assert_eq!(t.op_latency(Opcode::Mul), 4);
        assert_eq!(t.op_latency(Opcode::Store(DataClass::Int)), 1);
    }

    #[test]
    #[should_panic]
    fn load_through_op_latency_panics() {
        let m = MachineModel::itanium2();
        let _ = m.latencies().op_latency(Opcode::Load(DataClass::Int));
    }
}
