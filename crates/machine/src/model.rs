//! The assembled machine model.

use ltsp_ir::{DataClass, Inst, LoopIr};

use crate::cache::{CacheGeometry, CacheParams, TlbParams};
use crate::issue::IssueResources;
use crate::latency::{LatencyQuery, LatencyTable};
use crate::regfile::RegisterFiles;

/// A complete in-order VLIW machine description.
///
/// Shared, immutable input to the HLO, the pipeliner and the simulator so
/// that scheduling decisions and simulated timing always agree.
///
/// # Example
///
/// ```
/// use ltsp_machine::{LatencyQuery, MachineModel};
/// use ltsp_ir::DataClass;
///
/// let m = MachineModel::itanium2();
/// assert_eq!(m.load_latency(DataClass::Int, LatencyQuery::Base), 1);
/// assert_eq!(m.issue().m, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    issue: IssueResources,
    latencies: LatencyTable,
    caches: CacheGeometry,
    registers: RegisterFiles,
}

impl MachineModel {
    /// Builds a model from explicit components.
    pub fn new(
        issue: IssueResources,
        latencies: LatencyTable,
        caches: CacheGeometry,
        registers: RegisterFiles,
    ) -> Self {
        MachineModel {
            issue,
            latencies,
            caches,
            registers,
        }
    }

    /// The Dual-Core-Itanium-2-like default used throughout the
    /// reproduction: 2M/2I/2F/1B issue, load-use latencies 1 / 5 / 14 / 165
    /// (best case) and 11 / 21 typical for L2/L3, FP loads bypassing L1
    /// with one extra conversion cycle, a 48-entry OzQ, and 96/96/48
    /// rotating registers.
    pub fn itanium2() -> Self {
        MachineModel {
            issue: IssueResources {
                m: 2,
                i: 2,
                f: 2,
                b: 1,
            },
            latencies: LatencyTable {
                alu: 1,
                shift: 1,
                imul: 4,
                fp: 4,
                fcvt: 4,
                fp_load_extra: 1,
            },
            caches: CacheGeometry {
                l1: CacheParams {
                    capacity_bytes: 16 * 1024,
                    ways: 4,
                    line_bytes: 64,
                    best_latency: 1,
                    typical_latency: 1,
                },
                l2: CacheParams {
                    capacity_bytes: 256 * 1024,
                    ways: 8,
                    line_bytes: 128,
                    best_latency: 5,
                    typical_latency: 11,
                },
                l3: CacheParams {
                    capacity_bytes: 12 * 1024 * 1024,
                    ways: 12,
                    line_bytes: 128,
                    best_latency: 14,
                    typical_latency: 21,
                },
                memory_latency: 165,
                memory_fill_interval: 20,
                ozq_capacity: 48,
                tlb: TlbParams {
                    entries: 128,
                    page_bytes: 16 * 1024,
                    miss_penalty: 25,
                },
            },
            registers: RegisterFiles {
                rotating_gr: 96,
                rotating_fr: 96,
                rotating_pr: 48,
                total_gr: 128,
                total_fr: 128,
                total_pr: 64,
            },
        }
    }

    /// A half-width variant (1M/1I/1F/1B — a Merced-like narrow EPIC
    /// machine with the same memory system): Resource IIs double, so by
    /// Eq. 3 the same scheduled latency clusters half as many load
    /// instances.
    pub fn narrow() -> Self {
        let mut m = Self::itanium2();
        m.issue = IssueResources {
            m: 1,
            i: 1,
            f: 1,
            b: 1,
        };
        m
    }

    /// A double-width variant (4M/4I/4F/2B): Resource IIs halve, doubling
    /// the clustering factor a given boost achieves.
    pub fn wide() -> Self {
        let mut m = Self::itanium2();
        m.issue = IssueResources {
            m: 4,
            i: 4,
            f: 4,
            b: 2,
        };
        m
    }

    /// Per-cycle issue resources.
    pub fn issue(&self) -> &IssueResources {
        &self.issue
    }

    /// The latency table.
    pub fn latencies(&self) -> &LatencyTable {
        &self.latencies
    }

    /// The memory-hierarchy geometry.
    pub fn caches(&self) -> &CacheGeometry {
        &self.caches
    }

    /// The register-file supply.
    pub fn registers(&self) -> &RegisterFiles {
        &self.registers
    }

    /// Load-latency query (Sec. 3.3): base or hint-derived expected latency.
    pub fn load_latency(&self, data: DataClass, q: LatencyQuery) -> u32 {
        self.latencies.load_latency(&self.caches, data, q)
    }

    /// Latency of an arbitrary instruction under a query policy for loads.
    pub fn inst_latency(&self, inst: &Inst, load_query: LatencyQuery) -> u32 {
        if let ltsp_ir::Opcode::Load(dc) = inst.op() {
            self.load_latency(dc, load_query)
        } else {
            self.latencies.op_latency(inst.op())
        }
    }

    /// Resource II for a loop on this machine (Sec. 1.1).
    pub fn res_mii(&self, lp: &LoopIr) -> u32 {
        self.issue.res_mii(lp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{LatencyHint, LoopBuilder};

    #[test]
    fn default_model_is_consistent() {
        let m = MachineModel::itanium2();
        assert_eq!(m.caches().l1.sets(), 64);
        assert_eq!(m.caches().l2.sets(), 256);
        assert!(m.caches().l2.typical_latency > m.caches().l2.best_latency);
        assert_eq!(m.caches().ozq_capacity, 48);
    }

    #[test]
    fn width_variants_scale_res_mii() {
        let mut b = LoopBuilder::new("mem");
        for k in 0..4u64 {
            let r = b.affine_ref(&format!("p{k}"), DataClass::Int, k << 22, 4, 4);
            let _ = b.load(r);
        }
        let lp = b.build().unwrap();
        assert_eq!(MachineModel::narrow().res_mii(&lp), 4);
        assert_eq!(MachineModel::itanium2().res_mii(&lp), 2);
        assert_eq!(MachineModel::wide().res_mii(&lp), 1);
    }

    #[test]
    fn inst_latency_dispatches_on_loads() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("t");
        let r = b.affine_ref("a", DataClass::Int, 0, 4, 4);
        let v = b.load(r);
        let _ = b.add(v, v);
        let lp = b.build().unwrap();
        let ld = &lp.insts()[0];
        let add = &lp.insts()[1];
        assert_eq!(m.inst_latency(ld, LatencyQuery::Base), 1);
        assert_eq!(
            m.inst_latency(ld, LatencyQuery::Hinted(LatencyHint::L3)),
            21
        );
        // Non-loads ignore the query.
        assert_eq!(
            m.inst_latency(add, LatencyQuery::Hinted(LatencyHint::L3)),
            1
        );
    }
}
