//! Memory-hierarchy geometry.

use ltsp_ir::CacheLevel;

/// Geometry and service latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Best-case load-use latency when hitting at this level (cycles).
    pub best_latency: u32,
    /// Typical load-use latency, accounting for bank conflicts, conflicting
    /// stores and similar dynamic hazards (cycles). This is what latency
    /// hints translate to (Sec. 3.3).
    pub typical_latency: u32,
}

impl CacheParams {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> u64 {
        let denom = u64::from(self.ways) * u64::from(self.line_bytes);
        assert!(
            denom > 0 && self.capacity_bytes.is_multiple_of(denom),
            "cache geometry must divide evenly"
        );
        self.capacity_bytes / denom
    }
}

/// Parameters of the data TLB used by the simulator; the HLO prefetcher's
/// symbolic-stride and indirect-reference clamps exist to limit pressure on
/// this structure (heuristics 2a/2b of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbParams {
    /// Number of entries.
    pub entries: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Cycles added to a memory access on a TLB miss.
    pub miss_penalty: u32,
}

/// The full data-memory hierarchy: three cache levels plus main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// First-level data cache (bypassed by FP loads).
    pub l1: CacheParams,
    /// Second-level cache.
    pub l2: CacheParams,
    /// Third-level cache.
    pub l3: CacheParams,
    /// Main-memory service latency in cycles.
    pub memory_latency: u32,
    /// Minimum cycles between successive line fills from main memory
    /// (the bus/DRAM bandwidth limit). Clustered misses overlap their
    /// *latencies*, but fills still serialize at this rate — without it,
    /// memory-level parallelism would be unboundedly profitable.
    pub memory_fill_interval: u32,
    /// Capacity of the OzQ, the out-of-order queue of outstanding memory
    /// requests between L1 and L2; the paper quotes "at least 48
    /// outstanding requests" (Sec. 2).
    pub ozq_capacity: u32,
    /// Data TLB.
    pub tlb: TlbParams,
}

impl CacheGeometry {
    /// Parameters for a given level.
    ///
    /// # Panics
    ///
    /// Panics when asked for [`CacheLevel::Memory`], which has no geometry.
    pub fn level(&self, level: CacheLevel) -> &CacheParams {
        match level {
            CacheLevel::L1 => &self.l1,
            CacheLevel::L2 => &self.l2,
            CacheLevel::L3 => &self.l3,
            CacheLevel::Memory => panic!("main memory has no cache geometry"),
        }
    }

    /// Best-case service latency of a level (memory included).
    pub fn best_latency(&self, level: CacheLevel) -> u32 {
        match level {
            CacheLevel::L1 => self.l1.best_latency,
            CacheLevel::L2 => self.l2.best_latency,
            CacheLevel::L3 => self.l3.best_latency,
            CacheLevel::Memory => self.memory_latency,
        }
    }

    /// Typical service latency of a level (memory included).
    pub fn typical_latency(&self, level: CacheLevel) -> u32 {
        match level {
            CacheLevel::L1 => self.l1.typical_latency,
            CacheLevel::L2 => self.l2.typical_latency,
            CacheLevel::L3 => self.l3.typical_latency,
            CacheLevel::Memory => self.memory_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_computed_from_geometry() {
        let p = CacheParams {
            capacity_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
            best_latency: 1,
            typical_latency: 1,
        };
        assert_eq!(p.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_panics() {
        let p = CacheParams {
            capacity_bytes: 1000,
            ways: 3,
            line_bytes: 64,
            best_latency: 1,
            typical_latency: 1,
        };
        let _ = p.sets();
    }
}
