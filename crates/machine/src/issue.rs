//! Issue-width resources and the Resource II bound.

use ltsp_ir::{LoopIr, UnitClass};

/// Number of issue slots available per cycle, by functional-unit class.
///
/// A-class (simple ALU) instructions may issue on either an M or an I slot,
/// which [`IssueResources::res_mii`] accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueResources {
    /// Memory slots per cycle.
    pub m: u32,
    /// Integer slots per cycle.
    pub i: u32,
    /// Floating-point slots per cycle.
    pub f: u32,
    /// Branch slots per cycle.
    pub b: u32,
}

impl IssueResources {
    /// Slots for a unit class; `A` returns the M+I total it can draw from.
    pub fn slots(&self, class: UnitClass) -> u32 {
        match class {
            UnitClass::M => self.m,
            UnitClass::I => self.i,
            UnitClass::F => self.f,
            UnitClass::B => self.b,
            UnitClass::A => self.m + self.i,
        }
    }

    /// The Resource II lower bound for a loop body (Sec. 1.1 of the paper):
    /// the minimum number of cycles needed to issue every instruction of one
    /// source iteration given the per-cycle slot counts, with A-class ops
    /// free to use M or I slots.
    pub fn res_mii(&self, lp: &LoopIr) -> u32 {
        let c = lp.unit_counts();
        self.res_mii_counts(c.m, c.i, c.f, c.b, c.a)
    }

    /// [`IssueResources::res_mii`] from raw per-class instruction counts.
    pub fn res_mii_counts(&self, m: u32, i: u32, f: u32, b: u32, a: u32) -> u32 {
        let mut ii = 1u32;
        ii = ii.max(div_ceil(m, self.m));
        ii = ii.max(div_ceil(i, self.i));
        ii = ii.max(div_ceil(f, self.f));
        if b > 0 {
            ii = ii.max(div_ceil(b, self.b.max(1)));
        }
        // A-class ops fill whatever M/I capacity is left; jointly, the M, I
        // and A populations need (m + i + a) slots out of (self.m + self.i)
        // per cycle.
        ii = ii.max(div_ceil(m + i + a, self.m + self.i));
        ii
    }
}

fn div_ceil(num: u32, den: u32) -> u32 {
    if den == 0 {
        // No slots of a required class: the loop cannot be pipelined at any
        // II; signal with a huge bound rather than dividing by zero.
        return u32::MAX / 2;
    }
    num.div_ceil(den)
}

/// A per-cycle tally of consumed issue slots, used by the modulo
/// reservation table and the simulator issue stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// M slots consumed.
    pub m: u32,
    /// I slots consumed.
    pub i: u32,
    /// F slots consumed.
    pub f: u32,
    /// B slots consumed.
    pub b: u32,
}

impl ResourceUsage {
    /// Tries to place an instruction of `class` in this cycle's remaining
    /// slots. Returns `true` (and records the slot) on success.
    ///
    /// A-class ops prefer an I slot (keeping M slots free for memory ops)
    /// and fall back to an M slot.
    pub fn try_take(&mut self, class: UnitClass, res: &IssueResources) -> bool {
        match class {
            UnitClass::M => {
                if self.m < res.m {
                    self.m += 1;
                    true
                } else {
                    false
                }
            }
            UnitClass::I => {
                if self.i < res.i {
                    self.i += 1;
                    true
                } else {
                    false
                }
            }
            UnitClass::F => {
                if self.f < res.f {
                    self.f += 1;
                    true
                } else {
                    false
                }
            }
            UnitClass::B => {
                if self.b < res.b {
                    self.b += 1;
                    true
                } else {
                    false
                }
            }
            UnitClass::A => {
                if self.i < res.i {
                    self.i += 1;
                    true
                } else if self.m < res.m {
                    self.m += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Releases a previously taken slot (used when the scheduler evicts an
    /// instruction during backtracking).
    ///
    /// `took_m` reports whether an A-class op had been placed on an M slot.
    pub fn release(&mut self, class: UnitClass, took_m: bool) {
        match class {
            UnitClass::M => self.m -= 1,
            UnitClass::I => self.i -= 1,
            UnitClass::F => self.f -= 1,
            UnitClass::B => self.b -= 1,
            UnitClass::A => {
                if took_m {
                    self.m -= 1;
                } else {
                    self.i -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{DataClass, LoopBuilder};

    fn res() -> IssueResources {
        IssueResources {
            m: 2,
            i: 2,
            f: 2,
            b: 1,
        }
    }

    #[test]
    fn running_example_fits_in_one_cycle() {
        // ld + add + st: 2 M + 1 A -> ResMII 1 on a 2M/2I machine.
        let mut b = LoopBuilder::new("ex");
        let s = b.affine_ref("s", DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("d", DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        let lp = b.build().unwrap();
        assert_eq!(res().res_mii(&lp), 1);
    }

    #[test]
    fn memory_bound_loop() {
        // 5 memory ops on 2 M slots -> ceil(5/2) = 3.
        assert_eq!(res().res_mii_counts(5, 0, 0, 0, 0), 3);
    }

    #[test]
    fn a_ops_share_m_and_i() {
        // 2 M + 2 I + 4 A = 8 ops on 4 shared slots -> 2 cycles.
        assert_eq!(res().res_mii_counts(2, 2, 0, 0, 4), 2);
        // But if M alone saturates: 6 M -> 3 cycles.
        assert_eq!(res().res_mii_counts(6, 0, 0, 0, 0), 3);
    }

    #[test]
    fn fp_bound_loop() {
        assert_eq!(res().res_mii_counts(0, 0, 7, 0, 0), 4);
    }

    #[test]
    fn res_mii_is_at_least_one() {
        assert_eq!(res().res_mii_counts(0, 0, 0, 0, 0), 1);
    }

    #[test]
    fn usage_take_and_release() {
        let r = res();
        let mut u = ResourceUsage::default();
        assert!(u.try_take(UnitClass::M, &r));
        assert!(u.try_take(UnitClass::M, &r));
        assert!(!u.try_take(UnitClass::M, &r), "only 2 M slots");
        // A prefers I, then falls back to M (here M is full, I is free).
        assert!(u.try_take(UnitClass::A, &r));
        assert_eq!(u.i, 1);
        u.release(UnitClass::A, false);
        assert_eq!(u.i, 0);
        u.release(UnitClass::M, false);
        assert_eq!(u.m, 1);
    }

    #[test]
    fn a_falls_back_to_m_when_i_full() {
        let r = res();
        let mut u = ResourceUsage::default();
        assert!(u.try_take(UnitClass::I, &r));
        assert!(u.try_take(UnitClass::I, &r));
        assert!(u.try_take(UnitClass::A, &r));
        assert_eq!(u.m, 1, "A took an M slot");
        assert!(u.try_take(UnitClass::A, &r));
        assert!(!u.try_take(UnitClass::A, &r), "all four M/I slots full");
    }
}
