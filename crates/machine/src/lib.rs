//! Machine model of an Itanium-2-like in-order VLIW processor.
//!
//! The model supplies everything the compiler passes and the execution
//! simulator need to agree on:
//!
//! - **issue resources** — how many M/I/F/B slots exist per cycle, and the
//!   Resource II lower bound derived from a loop body's unit mix;
//! - **latencies** — fixed operation latencies, plus the load-latency query
//!   of the reproduced paper's Sec. 3.3: the pipeliner asks either for the
//!   *base* (best-case) latency or for the *expected* latency derived from
//!   an HLO hint, which the model translates to the cache level's *typical*
//!   (not best-case) latency to absorb dynamic hazards;
//! - **memory hierarchy geometry** — sizes, associativities, line sizes and
//!   service latencies of L1D/L2/L3/memory, the OzQ capacity, and a small
//!   TLB;
//! - **register files** — rotating register supply per class.
//!
//! The concrete numbers in [`MachineModel::itanium2`] follow the Dual-Core
//! Itanium 2 figures quoted in the paper (1/5/14/"more than a hundred"
//! best-case load-use latencies; typical L2/L3 values 11/21; one extra cycle
//! for FP loads, which bypass L1D; 96 rotating GRs and FRs, 48 rotating
//! predicates; at least 48 outstanding memory requests).

mod cache;
mod issue;
mod latency;
mod model;
mod regfile;

pub use cache::{CacheGeometry, CacheParams, TlbParams};
pub use issue::{IssueResources, ResourceUsage};
pub use latency::{LatencyQuery, LatencyTable};
pub use model::MachineModel;
pub use regfile::RegisterFiles;
