//! Property-based tests of the prefetcher heuristics.

use proptest::prelude::*;

use ltsp_hlo::{run_hlo, HintReason, HloConfig};
use ltsp_ir::AccessPattern;
use ltsp_machine::MachineModel;
use ltsp_workloads::random_loop;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Structural invariants of every HLO run, for any loop and trip
    /// estimate:
    /// - prefetch distances never exceed half the believed trip count;
    /// - every hint has a reason and vice versa;
    /// - invariant references are never planned or hinted;
    /// - deduped references get neither plan nor hint;
    /// - unprefetchable loaded references (chases, chase-derefs) are
    ///   always hinted (heuristic 1).
    #[test]
    fn hlo_invariants(seed in 0u64..20_000, trip in 1.0f64..100_000.0) {
        let m = MachineModel::itanium2();
        let mut lp = random_loop(seed);
        let report = run_hlo(&mut lp, &m, Some(trip), &HloConfig::default());
        let loaded: std::collections::HashSet<_> = lp.loads().map(|(_, r)| r).collect();
        let trip_clamp = (trip / 2.0).floor().max(1.0) as u32;

        for d in &report.decisions {
            let mr = lp.memref(d.memref);
            if let Some(p) = d.plan {
                prop_assert!(p.distance >= 1);
                prop_assert!(
                    p.distance <= trip_clamp.max(1),
                    "distance {} above trip clamp {}", p.distance, trip_clamp
                );
            }
            prop_assert_eq!(d.hint.is_some(), d.reason.is_some());
            if d.deduped {
                prop_assert!(d.plan.is_none() && d.hint.is_none());
            }
            match mr.pattern() {
                AccessPattern::Invariant { .. } => {
                    prop_assert!(d.plan.is_none() && d.hint.is_none());
                }
                AccessPattern::PointerChase { .. } if loaded.contains(&d.memref) => {
                    prop_assert_eq!(d.reason, Some(HintReason::NotPrefetchable));
                }
                _ => {}
            }
            // Hints persist onto the memref.
            prop_assert_eq!(mr.hint(), d.hint);
        }
        // Inserted prefetches match planned, non-deduped refs.
        let planned = report
            .decisions
            .iter()
            .filter(|d| d.plan.is_some())
            .count();
        prop_assert_eq!(report.prefetches_inserted, planned);
    }

    /// With prefetching disabled, the loop body is untouched but hints
    /// are at least as plentiful (more exposed latency to mark).
    #[test]
    fn disabled_prefetch_never_shrinks_hints(seed in 0u64..20_000) {
        let m = MachineModel::itanium2();
        let mut on = random_loop(seed);
        let mut off = random_loop(seed);
        let n_before = off.insts().len();
        let r_on = run_hlo(&mut on, &m, Some(1000.0), &HloConfig::default());
        let cfg_off = HloConfig { prefetch_enabled: false, ..HloConfig::default() };
        let r_off = run_hlo(&mut off, &m, Some(1000.0), &cfg_off);
        prop_assert_eq!(off.insts().len(), n_before);
        prop_assert!(r_off.hinted >= r_on.hinted.min(r_off.hinted));
        prop_assert_eq!(r_off.prefetches_inserted, 0);
    }

    /// Lower trip estimates can only shorten prefetch distances.
    #[test]
    fn distance_monotone_in_trip(seed in 0u64..20_000, lo in 2u64..50, extra in 1u64..10_000) {
        let m = MachineModel::itanium2();
        let mut a = random_loop(seed);
        let mut b = random_loop(seed);
        let ra = run_hlo(&mut a, &m, Some(lo as f64), &HloConfig::default());
        let rb = run_hlo(&mut b, &m, Some((lo + extra) as f64), &HloConfig::default());
        for (da, db) in ra.decisions.iter().zip(&rb.decisions) {
            if let (Some(pa), Some(pb)) = (da.plan, db.plan) {
                prop_assert!(pa.distance <= pb.distance);
            }
        }
    }

    /// The HLO never invalidates the loop: it still validates and gains
    /// only prefetch instructions.
    #[test]
    fn hlo_preserves_loop_validity(seed in 0u64..20_000) {
        let m = MachineModel::itanium2();
        let mut lp = random_loop(seed);
        let before = lp.insts().len();
        let report = run_hlo(&mut lp, &m, None, &HloConfig::default());
        prop_assert_eq!(lp.insts().len(), before + report.prefetches_inserted);
        for inst in &lp.insts()[before..] {
            prop_assert!(inst.op().is_prefetch());
            prop_assert!(inst.mem().is_some());
        }
        // Rebuild through the validating constructor.
        let revalidated = ltsp_ir::LoopIr::new(
            lp.name().to_string(),
            lp.insts().to_vec(),
            lp.memrefs().to_vec(),
            lp.mem_deps().to_vec(),
            lp.live_in().to_vec(),
        );
        prop_assert!(revalidated.is_ok(), "{:?}", revalidated.err());
    }
}
