//! The high-level optimizer (HLO): software prefetching and the
//! expected-latency hint heuristics of the reproduced paper (Sec. 3.2).
//!
//! The prefetcher walks a loop's memory references, decides which can be
//! covered by software prefetches and at what distance
//! (`distance = Lat / II_est`, clamped by trip-count knowledge), inserts
//! `lfetch` instructions into the loop body, and — the paper's key coupling
//! — marks the references whose prefetch efficiency is *less than optimal*
//! with an expected-latency hint for the pipeliner:
//!
//! 1. references that cannot be prefetched at all (pointer chases and
//!    loads hanging off them);
//! 2. references whose prefetch distance was reduced below the optimal
//!    amount, because of (a) symbolic strides (TLB pressure) or (b)
//!    indirection (`a[b[i]]` targets);
//! 3. references prefetched only into L2 because many integer references
//!    would otherwise overwhelm the OzQ.
//!
//! Hint levels follow the paper: L2 for integer loads, L3 for FP loads —
//! one level below the highest cache level each can hit.

mod overlay;
mod prefetch;

pub use overlay::{HintSource, ObservedHint, ObservedOverlay, ObservedVerdict};
pub use prefetch::{run_hlo, run_hlo_traced, HintReason, HloConfig, HloReport, RefDecision};
