//! The software-prefetching pass with latency-hint assignment.

use ltsp_ir::{
    AccessPattern, CacheLevel, DataClass, Inst, InstId, LatencyHint, LoopIr, MemRefId, Opcode,
    PrefetchPlan,
};
use ltsp_machine::MachineModel;

use crate::overlay::ObservedOverlay;

/// Tunables of the prefetcher.
#[derive(Debug, Clone, PartialEq)]
pub struct HloConfig {
    /// Master switch; when off, no prefetches are inserted but the hint
    /// heuristics still run (everything un-prefetched gets marked) — this
    /// is the paper's "prefetching disabled" headroom configuration.
    pub prefetch_enabled: bool,
    /// Clamped distance (in iterations) for symbolic-stride references
    /// (heuristic 2a: limit outstanding-page TLB pressure).
    pub symbolic_distance: u32,
    /// Divisor applied to the indirect-target distance relative to its
    /// index distance (heuristic 2b).
    pub indirect_divisor: u32,
    /// Hard cap (in iterations) on the indirect-target distance: the
    /// indirect reference may touch many pages, and its prefetch address
    /// depends on a loaded index, so the compiler keeps it very short
    /// (heuristic 2b).
    pub indirect_max_distance: u32,
    /// Number of likely-L1-missing integer references above which the
    /// prefetcher switches those references to L2-only prefetching
    /// (heuristic 3: OzQ pressure).
    pub ozq_pressure_refs: usize,
    /// Trip estimate assumed when none is available.
    pub default_trip_estimate: f64,
    /// Runtime-measured verdicts from the adaptive loop; references whose
    /// verdict says `drop_prefetch` get no prefetch instruction (their
    /// line was observed already resident — the prefetch is pure body
    /// cost). `None` (the default) runs the pure static analysis.
    pub observed: Option<ObservedOverlay>,
}

impl Default for HloConfig {
    fn default() -> Self {
        HloConfig {
            prefetch_enabled: true,
            symbolic_distance: 2,
            indirect_divisor: 4,
            indirect_max_distance: 4,
            ozq_pressure_refs: 6,
            default_trip_estimate: 100.0,
            observed: None,
        }
    }
}

/// Why a reference received an expected-latency hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintReason {
    /// Heuristic 1: the reference could not be prefetched at all.
    NotPrefetchable,
    /// Heuristic 2a: distance reduced because the stride is symbolic.
    SymbolicStride,
    /// Heuristic 2b: distance reduced because the reference is indirect.
    IndirectTarget,
    /// Heuristic 3: prefetched into L2 only under OzQ pressure.
    OzqPressure,
}

impl HintReason {
    /// The paper's heuristic number, as used in decision traces.
    pub fn id(self) -> &'static str {
        match self {
            HintReason::NotPrefetchable => "1",
            HintReason::SymbolicStride => "2a",
            HintReason::IndirectTarget => "2b",
            HintReason::OzqPressure => "3",
        }
    }
}

/// The prefetcher's decision for one memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefDecision {
    /// The reference.
    pub memref: MemRefId,
    /// The prefetch plan, if one was emitted.
    pub plan: Option<PrefetchPlan>,
    /// The latency hint, if one was set.
    pub hint: Option<LatencyHint>,
    /// Why the hint was set.
    pub reason: Option<HintReason>,
    /// Covered by another (leading) reference to the same stream.
    pub deduped: bool,
}

/// Summary of one HLO run.
#[derive(Debug, Clone)]
pub struct HloReport {
    /// Per-reference decisions, indexed by memref.
    pub decisions: Vec<RefDecision>,
    /// Prefetch instructions inserted.
    pub prefetches_inserted: usize,
    /// References that received a latency hint.
    pub hinted: usize,
    /// The HLO's II estimate used for distance computation.
    pub ii_estimate: u32,
}

/// The hint level for a data class: "an L2 hint is set for integer loads
/// and an L3 hint for FP loads — one level lower than the highest cache
/// level where these loads can hit" (Sec. 3.2).
fn hint_level(data: DataClass) -> LatencyHint {
    match data {
        DataClass::Int => LatencyHint::L2,
        DataClass::Fp => LatencyHint::L3,
    }
}

/// True when the reference is expected to miss L1 routinely (used for the
/// OzQ-pressure heuristic): strided past a line per iteration, indirect,
/// or symbolic.
fn likely_l1_missing(lp: &LoopIr, id: MemRefId, line_bytes: i64) -> bool {
    match lp.memref(id).pattern() {
        AccessPattern::Affine { stride, .. } => stride.abs() >= line_bytes,
        AccessPattern::SymbolicStride { .. } => true,
        AccessPattern::Gather { .. } | AccessPattern::Deref { .. } => true,
        AccessPattern::PointerChase { .. } => true,
        AccessPattern::Invariant { .. } => false,
    }
}

/// Runs software prefetching and hint assignment over a loop.
///
/// `trip_estimate` is the compiler's belief about the loop's trip count —
/// from PGO profiles when available, otherwise from static heuristics
/// (array bounds, symbolic analysis); the prefetch distance is clamped so
/// that at least half the prefetches issued are useful.
///
/// The loop is mutated: prefetch instructions are appended and
/// [`ltsp_ir::MemoryRef`] annotations (plans and hints) are set.
///
/// # Example
///
/// ```
/// use ltsp_hlo::{run_hlo, HloConfig};
/// use ltsp_ir::{DataClass, LoopBuilder};
/// use ltsp_machine::MachineModel;
///
/// // A pointer chase cannot be prefetched: heuristic 1 marks it.
/// let mut b = LoopBuilder::new("chase");
/// let node = b.chase_ref("node->next", 0, 64, 1 << 22, 0.1);
/// let _ = b.load(node);
/// let mut lp = b.build()?;
///
/// let m = MachineModel::itanium2();
/// let report = run_hlo(&mut lp, &m, Some(100.0), &HloConfig::default());
/// assert_eq!(report.prefetches_inserted, 0);
/// assert_eq!(report.hinted, 1);
/// assert!(lp.memref(node).hint().is_some());
/// # Ok::<(), ltsp_ir::IrError>(())
/// ```
// Ranged index loops below double as MemRefId values, so clippy's
// iterator preference does not fit.
#[allow(clippy::needless_range_loop)]
pub fn run_hlo(
    lp: &mut LoopIr,
    machine: &MachineModel,
    trip_estimate: Option<f64>,
    cfg: &HloConfig,
) -> HloReport {
    let ii_est = machine.res_mii(lp).max(1);
    let lat_to_cover = machine.caches().memory_latency;
    let optimal_distance = (lat_to_cover as f64 / ii_est as f64).ceil().max(1.0) as u32;
    let trip = trip_estimate.unwrap_or(cfg.default_trip_estimate).max(1.0);
    // "At least half of the prefetches issued will be useful."
    let trip_clamp = (trip / 2.0).floor().max(1.0) as u32;
    let line = i64::from(machine.caches().l1.line_bytes);

    // Leading-reference dedup: among affine references with the same
    // stride whose bases fall within one line, only the first (leading)
    // is prefetched.
    let n_refs = lp.memrefs().len();
    let mut deduped = vec![false; n_refs];
    for i in 0..n_refs {
        if deduped[i] {
            continue;
        }
        let (bi, si) = match lp.memref(MemRefId(i as u32)).pattern() {
            AccessPattern::Affine { base, stride } => (*base, *stride),
            _ => continue,
        };
        for j in (i + 1)..n_refs {
            if let AccessPattern::Affine { base, stride } = lp.memref(MemRefId(j as u32)).pattern()
            {
                if *stride == si && (base.abs_diff(bi) as i64) < line {
                    deduped[j] = true;
                }
            }
        }
    }

    // OzQ pressure: count likely-L1-missing integer data references.
    let missing_int_refs = (0..n_refs)
        .filter(|&i| {
            let id = MemRefId(i as u32);
            lp.memref(id).data_class() == DataClass::Int && likely_l1_missing(lp, id, line)
        })
        .count();
    let ozq_pressure = missing_int_refs > cfg.ozq_pressure_refs;

    // Which refs are actually touched by loads (hints only matter there)?
    let loaded: std::collections::HashSet<MemRefId> = lp.loads().map(|(_, m)| m).collect();

    let mut decisions = Vec::with_capacity(n_refs);
    for i in 0..n_refs {
        let id = MemRefId(i as u32);
        let data = lp.memref(id).data_class();
        let pattern = lp.memref(id).pattern().clone();
        let mut d = RefDecision {
            memref: id,
            plan: None,
            hint: None,
            reason: None,
            deduped: deduped[i],
        };
        if deduped[i] {
            decisions.push(d);
            continue;
        }
        match pattern {
            AccessPattern::Invariant { .. } => {
                // Loop-invariant: registers/L1 keep it; never marked
                // ("any non-loop-invariant reference that could not be
                // prefetched" — invariant ones are exempt).
            }
            AccessPattern::Affine { .. } => {
                let distance = optimal_distance.min(trip_clamp).max(1);
                let reduced = distance < optimal_distance;
                let target = if ozq_pressure && data == DataClass::Int {
                    CacheLevel::L2
                } else {
                    match data {
                        DataClass::Int => CacheLevel::L1,
                        DataClass::Fp => CacheLevel::L2,
                    }
                };
                d.plan = Some(PrefetchPlan {
                    distance,
                    target,
                    distance_reduced: reduced,
                });
                if ozq_pressure && data == DataClass::Int && loaded.contains(&id) {
                    d.hint = Some(LatencyHint::L2);
                    d.reason = Some(HintReason::OzqPressure);
                }
            }
            AccessPattern::SymbolicStride { .. } => {
                // 2a: clamp hard to protect the TLB; latency stays exposed.
                let distance = cfg.symbolic_distance.min(trip_clamp).max(1);
                d.plan = Some(PrefetchPlan {
                    distance,
                    target: CacheLevel::L2,
                    distance_reduced: true,
                });
                if loaded.contains(&id) {
                    d.hint = Some(hint_level(data));
                    d.reason = Some(HintReason::SymbolicStride);
                }
            }
            AccessPattern::Gather { index, .. } => {
                // 2b: the indirect target is prefetched at a fraction of
                // the index distance, only if the index itself is a
                // prefetchable stream.
                let index_prefetchable =
                    matches!(lp.memref(index).pattern(), AccessPattern::Affine { .. });
                if index_prefetchable {
                    let distance = (optimal_distance / cfg.indirect_divisor.max(1))
                        .min(cfg.indirect_max_distance)
                        .clamp(1, trip_clamp.max(1));
                    d.plan = Some(PrefetchPlan {
                        distance,
                        target: CacheLevel::L2,
                        distance_reduced: true,
                    });
                    if loaded.contains(&id) {
                        d.hint = Some(hint_level(data));
                        d.reason = Some(HintReason::IndirectTarget);
                    }
                } else if loaded.contains(&id) {
                    // Cannot even compute prefetch addresses: heuristic 1.
                    d.hint = Some(hint_level(data));
                    d.reason = Some(HintReason::NotPrefetchable);
                }
            }
            AccessPattern::Deref { pointer, .. } => {
                let ptr_pattern = lp.memref(pointer).pattern().clone();
                match ptr_pattern {
                    AccessPattern::Affine { .. } => {
                        // Pointer array: p[i]->f — prefetch at reduced
                        // distance (2b).
                        let distance = (optimal_distance / cfg.indirect_divisor.max(1))
                            .min(cfg.indirect_max_distance)
                            .clamp(1, trip_clamp.max(1));
                        d.plan = Some(PrefetchPlan {
                            distance,
                            target: CacheLevel::L2,
                            distance_reduced: true,
                        });
                        if loaded.contains(&id) {
                            d.hint = Some(hint_level(data));
                            d.reason = Some(HintReason::IndirectTarget);
                        }
                    }
                    _ => {
                        // Hanging off a chase (or another deref): heuristic 1.
                        if loaded.contains(&id) {
                            d.hint = Some(hint_level(data));
                            d.reason = Some(HintReason::NotPrefetchable);
                        }
                    }
                }
            }
            AccessPattern::PointerChase { .. } => {
                // Heuristic 1: pointer chases defeat prefetching entirely.
                if loaded.contains(&id) {
                    d.hint = Some(hint_level(data));
                    d.reason = Some(HintReason::NotPrefetchable);
                }
            }
        }
        decisions.push(d);
    }

    // Apply: set annotations, insert prefetch instructions.
    let mut inserted = 0usize;
    let mut hinted = 0usize;
    for d in &decisions {
        if let Some(h) = d.hint {
            lp.memref_mut(d.memref).set_hint(Some(h));
            hinted += 1;
        }
        if let Some(plan) = d.plan {
            // An observed-redundant prefetch is omitted entirely: the
            // line it would fetch is already resident, so dropping it
            // only shrinks the loop body (and its resource-minimum II).
            if cfg
                .observed
                .as_ref()
                .is_some_and(|ov| ov.drop_prefetch(d.memref))
            {
                continue;
            }
            lp.memref_mut(d.memref).set_prefetch(Some(plan));
            if cfg.prefetch_enabled {
                let id = InstId(lp.insts().len() as u32);
                lp.push_inst(Inst::new(
                    id,
                    Opcode::Prefetch(plan.target),
                    None,
                    vec![],
                    Some(d.memref),
                ));
                inserted += 1;
            }
        }
    }

    HloReport {
        decisions,
        prefetches_inserted: inserted,
        hinted,
        ii_estimate: ii_est,
    }
}

/// [`run_hlo`] with every per-reference decision recorded on a telemetry
/// sink as an [`ltsp_telemetry::Event::HloDecision`] (which heuristic
/// fired, the hint set, the prefetch distance chosen).
pub fn run_hlo_traced(
    lp: &mut LoopIr,
    machine: &MachineModel,
    trip_estimate: Option<f64>,
    cfg: &HloConfig,
    tel: &ltsp_telemetry::Telemetry,
) -> HloReport {
    let report = run_hlo(lp, machine, trip_estimate, cfg);
    if tel.is_enabled() {
        for d in &report.decisions {
            tel.emit(ltsp_telemetry::Event::HloDecision {
                loop_name: lp.name().to_string(),
                memref: lp.memref(d.memref).name().to_string(),
                heuristic: d.reason.map(HintReason::id),
                hint: d.hint.map(|h| match h {
                    LatencyHint::L2 => "L2",
                    LatencyHint::L3 => "L3",
                }),
                prefetch_distance: d.plan.map(|p| p.distance),
                deduped: d.deduped,
            });
        }
        tel.counter_add("hlo.refs", report.decisions.len() as u64);
        tel.counter_add("hlo.prefetches_inserted", report.prefetches_inserted as u64);
        tel.counter_add("hlo.hinted_refs", report.hinted as u64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::LoopBuilder;

    fn machine() -> MachineModel {
        MachineModel::itanium2()
    }

    #[test]
    fn affine_stream_prefetched_without_hint() {
        let mut b = LoopBuilder::new("s");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _ = b.fadd(v, v);
        let mut lp = b.build().unwrap();
        let r = run_hlo(&mut lp, &machine(), Some(10_000.0), &HloConfig::default());
        let d = r.decisions[0];
        assert!(d.plan.is_some());
        assert!(d.hint.is_none(), "fully prefetched streams get no hint");
        assert_eq!(r.prefetches_inserted, 1);
        // distance = ceil(165 / ResMII); ResMII here is 1 (2 mem-ish ops).
        assert_eq!(d.plan.unwrap().distance, 165);
        // The prefetch instruction references the demand ref.
        let pf = lp.insts().last().unwrap();
        assert!(pf.op().is_prefetch());
        assert_eq!(pf.mem(), Some(x));
    }

    #[test]
    fn low_trip_estimate_clamps_distance() {
        let mut b = LoopBuilder::new("s");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _ = b.fadd(v, v);
        let mut lp = b.build().unwrap();
        let r = run_hlo(&mut lp, &machine(), Some(20.0), &HloConfig::default());
        assert_eq!(r.decisions[0].plan.unwrap().distance, 10, "trip/2");
        assert!(r.decisions[0].plan.unwrap().distance_reduced);
    }

    #[test]
    fn chase_and_its_fields_get_hints() {
        let mut b = LoopBuilder::new("mcf");
        let node = b.chase_ref("node->child", 0, 64, 1 << 22, 0.1);
        let fld = b.deref_ref("node->f", DataClass::Int, node, 8, 1 << 22, 8);
        let _nv = b.load(node);
        let _fv = b.load(fld);
        let mut lp = b.build().unwrap();
        let r = run_hlo(&mut lp, &machine(), Some(2.3), &HloConfig::default());
        assert_eq!(r.decisions[0].reason, Some(HintReason::NotPrefetchable));
        assert_eq!(r.decisions[0].hint, Some(LatencyHint::L2), "int loads: L2");
        assert_eq!(r.decisions[1].reason, Some(HintReason::NotPrefetchable));
        assert_eq!(r.prefetches_inserted, 0, "nothing prefetchable");
        assert_eq!(r.hinted, 2);
        // Hints are persisted on the memrefs.
        assert_eq!(lp.memref(node).hint(), Some(LatencyHint::L2));
    }

    #[test]
    fn gather_target_reduced_distance_and_hint() {
        let mut b = LoopBuilder::new("gather");
        let idx = b.affine_ref("b[i]", DataClass::Int, 0, 4, 4);
        let tgt = b.gather_ref("a[b[i]]", DataClass::Fp, idx, 1 << 30, 8, 1 << 26);
        let _vi = b.load(idx);
        let _vt = b.load(tgt);
        let mut lp = b.build().unwrap();
        let r = run_hlo(&mut lp, &machine(), Some(100_000.0), &HloConfig::default());
        let di = r.decisions[idx.index()];
        let dt = r.decisions[tgt.index()];
        assert!(
            di.plan.is_some() && di.hint.is_none(),
            "index is a plain stream"
        );
        let pt = dt.plan.unwrap();
        assert!(pt.distance < di.plan.unwrap().distance);
        assert!(pt.distance_reduced);
        assert_eq!(dt.reason, Some(HintReason::IndirectTarget));
        assert_eq!(dt.hint, Some(LatencyHint::L3), "FP loads: L3 hint");
    }

    #[test]
    fn symbolic_stride_clamped_and_hinted() {
        let mut b = LoopBuilder::new("sym");
        let x = b.symbolic_ref("a[i*n]", DataClass::Fp, 0, 4096, 8);
        let v = b.load(x);
        let _ = b.fadd(v, v);
        let mut lp = b.build().unwrap();
        let r = run_hlo(&mut lp, &machine(), Some(100_000.0), &HloConfig::default());
        let d = r.decisions[0];
        assert_eq!(d.plan.unwrap().distance, 2, "TLB clamp");
        assert_eq!(d.reason, Some(HintReason::SymbolicStride));
    }

    #[test]
    fn ozq_pressure_switches_to_l2_and_hints() {
        let mut b = LoopBuilder::new("wide");
        let mut refs = Vec::new();
        for k in 0..8u64 {
            let r = b.affine_ref(&format!("p{k}"), DataClass::Int, k << 30, 256, 8);
            refs.push(r);
            let _ = b.load(r);
        }
        let mut lp = b.build().unwrap();
        let r = run_hlo(&mut lp, &machine(), Some(100_000.0), &HloConfig::default());
        for d in &r.decisions {
            assert_eq!(d.plan.unwrap().target, CacheLevel::L2, "L2-only mode");
            assert_eq!(d.reason, Some(HintReason::OzqPressure));
            assert_eq!(d.hint, Some(LatencyHint::L2));
        }
    }

    #[test]
    fn dedup_leaves_one_leading_reference() {
        let mut b = LoopBuilder::new("dedup");
        let a = b.affine_ref("a[i]", DataClass::Int, 0x1000, 4, 4);
        let a2 = b.affine_ref("a[i+4]", DataClass::Int, 0x1010, 4, 4);
        let va = b.load(a);
        let va2 = b.load(a2);
        let _ = b.add(va, va2);
        let mut lp = b.build().unwrap();
        let r = run_hlo(&mut lp, &machine(), Some(10_000.0), &HloConfig::default());
        assert!(!r.decisions[0].deduped);
        assert!(r.decisions[1].deduped, "same line, same stride");
        assert_eq!(r.prefetches_inserted, 1);
    }

    #[test]
    fn disabled_prefetcher_inserts_nothing_but_plans_remain() {
        let mut b = LoopBuilder::new("off");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _ = b.fadd(v, v);
        let mut lp = b.build().unwrap();
        let n_before = lp.insts().len();
        let cfg = HloConfig {
            prefetch_enabled: false,
            ..HloConfig::default()
        };
        let r = run_hlo(&mut lp, &machine(), Some(10_000.0), &cfg);
        assert_eq!(r.prefetches_inserted, 0);
        assert_eq!(lp.insts().len(), n_before);
    }

    #[test]
    fn invariant_refs_untouched() {
        let mut b = LoopBuilder::new("inv");
        let s = b.invariant_ref("scale", DataClass::Fp, 0x8000, 8);
        let v = b.load(s);
        let _ = b.fmul(v, v);
        let mut lp = b.build().unwrap();
        let r = run_hlo(&mut lp, &machine(), None, &HloConfig::default());
        assert!(r.decisions[0].plan.is_none());
        assert!(r.decisions[0].hint.is_none());
    }
}
