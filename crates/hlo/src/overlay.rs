//! Observed-hint overlays: merging runtime-measured latency verdicts
//! over the static prefetch analysis.
//!
//! The static heuristics of [`crate::run_hlo`] guess where a load will be
//! served from; the adaptive loop (crates/adaptive) *measures* it on the
//! simulator and feeds the verdicts back as an [`ObservedOverlay`]. Each
//! verdict carries two independent decisions:
//!
//! - an **effective hint** for the demand load, merged with the static
//!   policy per the table below, and
//! - a **prefetch-drop** flag: the static prefetch for this reference was
//!   observed to be redundant (the line was already cache-resident when
//!   the prefetch issued), so the next compile round omits it, shrinking
//!   the loop body and its resource-minimum II.
//!
//! | observed verdict | effective hint |
//! |---|---|
//! | none (no coverage) | the static hint, unchanged |
//! | [`ObservedHint::Fast`] | no hint — the static guess is suppressed |
//! | [`ObservedHint::Level`]`(h)` | `h` — the observed service level |
//!
//! Observed verdicts bypass the trip-count threshold, like the paper's
//! miss-sampled outlook: a measurement is strictly stronger evidence than
//! the static profitability guard it replaces. The drop decision is
//! stable at fixpoint because a redundant prefetch, by definition, does
//! not create the residency it observed — removing it leaves the
//! measurement unchanged.

use ltsp_ir::{LatencyHint, MemRefId};

/// Where an effective latency hint came from after the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintSource {
    /// The static HLO prefetch analysis (or policy default) decided.
    Static,
    /// A runtime observation overrode the static analysis.
    Observed,
}

/// The observed service level for a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedHint {
    /// The reference was observed to be served fast (L1-resident or
    /// covered by prefetches): suppress any static hint.
    Fast,
    /// The reference was observed slow: expect this service level.
    Level(LatencyHint),
}

/// One reference's full observed verdict: the service-level hint plus
/// whether its static prefetch was measured to be redundant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedVerdict {
    /// The observed service level (drives the latency-hint merge).
    pub hint: ObservedHint,
    /// Omit the static prefetch for this reference on the next round —
    /// it was observed to find its line already resident.
    pub drop_prefetch: bool,
}

/// A per-memref overlay of observed verdicts, indexed by memref id.
/// `None` entries (and references past the end) have no coverage and fall
/// back to the static analysis.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObservedOverlay {
    verdicts: Vec<Option<ObservedVerdict>>,
}

impl ObservedOverlay {
    /// Builds an overlay from per-memref verdicts (indexed by memref id).
    pub fn new(verdicts: Vec<Option<ObservedVerdict>>) -> Self {
        ObservedOverlay { verdicts }
    }

    /// The observed verdict for `memref`, if any.
    pub fn get(&self, memref: MemRefId) -> Option<ObservedVerdict> {
        self.verdicts.get(memref.index()).copied().flatten()
    }

    /// True when the observation says the static prefetch for `memref`
    /// is redundant and should be omitted.
    pub fn drop_prefetch(&self, memref: MemRefId) -> bool {
        self.get(memref).is_some_and(|v| v.drop_prefetch)
    }

    /// Number of references with an observed verdict.
    pub fn covered(&self) -> usize {
        self.verdicts.iter().filter(|v| v.is_some()).count()
    }

    /// Number of references whose prefetch the overlay drops.
    pub fn dropped_prefetches(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| v.is_some_and(|v| v.drop_prefetch))
            .count()
    }

    /// The raw per-memref verdict table.
    pub fn verdicts(&self) -> &[Option<ObservedVerdict>] {
        &self.verdicts
    }

    /// Applies the merge rule: the effective hint for `memref` given the
    /// `static_hint` the policy would assign, plus where it came from.
    pub fn merge(
        &self,
        memref: MemRefId,
        static_hint: Option<LatencyHint>,
    ) -> (Option<LatencyHint>, HintSource) {
        match self.get(memref).map(|v| v.hint) {
            None => (static_hint, HintSource::Static),
            Some(ObservedHint::Fast) => (None, HintSource::Observed),
            Some(ObservedHint::Level(h)) => (Some(h), HintSource::Observed),
        }
    }

    /// Number of references whose verdict differs from `prev` — the
    /// round-over-round hint delta of the adaptive loop's telemetry.
    pub fn delta(&self, prev: &ObservedOverlay) -> usize {
        let n = self.verdicts.len().max(prev.verdicts.len());
        (0..n)
            .filter(|&i| {
                self.verdicts.get(i).copied().flatten() != prev.verdicts.get(i).copied().flatten()
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: usize) -> MemRefId {
        MemRefId(i as u32)
    }

    fn keep(hint: ObservedHint) -> Option<ObservedVerdict> {
        Some(ObservedVerdict {
            hint,
            drop_prefetch: false,
        })
    }

    #[test]
    fn merge_rules() {
        let ov = ObservedOverlay::new(vec![
            None,
            keep(ObservedHint::Fast),
            keep(ObservedHint::Level(LatencyHint::L3)),
        ]);
        assert_eq!(
            ov.merge(r(0), Some(LatencyHint::L2)),
            (Some(LatencyHint::L2), HintSource::Static)
        );
        assert_eq!(
            ov.merge(r(1), Some(LatencyHint::L2)),
            (None, HintSource::Observed)
        );
        assert_eq!(
            ov.merge(r(2), None),
            (Some(LatencyHint::L3), HintSource::Observed)
        );
        // Past-the-end references fall back to the static hint.
        assert_eq!(ov.merge(r(9), None), (None, HintSource::Static));
        assert_eq!(ov.covered(), 2);
    }

    #[test]
    fn drop_flags_are_per_reference() {
        let ov = ObservedOverlay::new(vec![
            keep(ObservedHint::Fast),
            Some(ObservedVerdict {
                hint: ObservedHint::Fast,
                drop_prefetch: true,
            }),
            None,
        ]);
        assert!(!ov.drop_prefetch(r(0)));
        assert!(ov.drop_prefetch(r(1)));
        assert!(!ov.drop_prefetch(r(2)));
        assert!(!ov.drop_prefetch(r(9)));
        assert_eq!(ov.dropped_prefetches(), 1);
    }

    #[test]
    fn delta_counts_changed_verdicts() {
        let a = ObservedOverlay::new(vec![keep(ObservedHint::Fast), None]);
        let b = ObservedOverlay::new(vec![
            keep(ObservedHint::Fast),
            keep(ObservedHint::Level(LatencyHint::L2)),
            keep(ObservedHint::Fast),
        ]);
        assert_eq!(a.delta(&a), 0);
        assert_eq!(b.delta(&a), 2);
        assert_eq!(a.delta(&b), 2);
        // A drop-flag flip alone is a delta: the loop body changes.
        let c = ObservedOverlay::new(vec![
            Some(ObservedVerdict {
                hint: ObservedHint::Fast,
                drop_prefetch: true,
            }),
            None,
        ]);
        assert_eq!(c.delta(&a), 1);
    }
}
