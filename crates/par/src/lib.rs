//! # ltsp-par — a dependency-free, deterministic scoped work pool
//!
//! The batch layers of this workspace (suite/policy sweeps, figure
//! regeneration, differential fuzzing) are embarrassingly parallel: many
//! independent items, each a pure function of its inputs. This crate runs
//! such batches on a fixed set of scoped worker threads — std only, no
//! external dependencies — under a hard **determinism contract**:
//!
//! - every item carries its index; per-item randomness must be split from
//!   the master seed by that index (never shared between items);
//! - results are merged in **input index order**, so the output of
//!   [`Pool::map`] is byte-for-byte independent of the worker count and of
//!   scheduling luck;
//! - per-item telemetry is recorded into forked buffers and spliced back
//!   in index order ([`Pool::map_traced`]), so one-thread and N-thread
//!   runs produce the same event stream;
//! - a panicking item aborts the whole batch and re-raises the **original
//!   panic payload** on the caller's thread.
//!
//! Work distribution is a chunked work-stealing scheme: the index space is
//! pre-split into one contiguous chunk per worker (owners drain their own
//! chunk front-to-back, preserving locality); an idle worker steals the
//! back half of a victim's remaining queue. Stealing only moves *which
//! thread* computes an item, never what the item computes or where its
//! result lands.
//!
//! ```
//! let pool = ltsp_par::Pool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4, 5], |_idx, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::sync::Mutex;
use std::time::Instant;

use ltsp_telemetry::{lock_unpoisoned, Event, Telemetry};

/// The worker count to use when the user does not specify one: the
/// machine's available parallelism (1 if it cannot be determined).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Validates a worker-count string (a `--jobs` flag or the `LTSP_JOBS`
/// environment variable): a positive integer, or a clear one-line
/// rejection — never a panic, never a silent default.
///
/// # Errors
///
/// A human-readable `invalid jobs value …` message naming the offending
/// input and the accepted form.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "invalid jobs value '{s}': must be a positive integer (at least 1)"
        )),
        Ok(j) => Ok(j),
        Err(_) => Err(format!(
            "invalid jobs value '{s}': must be a positive integer (e.g. --jobs 4)"
        )),
    }
}

/// A fixed-size scoped work pool. Threads are spawned per batch (scoped to
/// each [`Pool::map`] call), so a `Pool` is just a worker-count policy and
/// is trivially cheap to construct.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to [`default_parallelism`].
    pub fn with_default_parallelism() -> Self {
        Pool::new(default_parallelism())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**, regardless of which worker computed what. `f` receives the
    /// item's index so callers can split per-item PRNG streams from a
    /// master seed.
    ///
    /// # Panics
    ///
    /// If any `f` invocation panics, the batch is abandoned and the first
    /// (lowest-index) captured panic payload is re-raised here.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_worker(items, |idx, item, _worker| f(idx, item))
    }

    /// Like [`Pool::map`], but each item runs against a **forked**
    /// telemetry buffer that is spliced back into `tel` in index order
    /// once the batch completes, followed by one
    /// [`Event::WorkerSpan`] per item recording which worker ran it and
    /// when. Trace *content and order* are therefore identical across
    /// worker counts; only wall-clock timestamps and worker attribution
    /// (both stripped by [`ltsp_telemetry::normalize_trace`]) vary.
    pub fn map_traced<T, R, F>(
        &self,
        tel: &Telemetry,
        pool_label: &str,
        items: &[T],
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Telemetry, usize, &T) -> R + Sync,
    {
        if !tel.is_enabled() {
            let disabled = Telemetry::disabled();
            return self.map(items, |idx, item| f(&disabled, idx, item));
        }
        let outs = self.map_worker(items, |idx, item, worker| {
            let child = tel.fork();
            let start = Instant::now();
            let result = f(&child, idx, item);
            let dur_us = start.elapsed().as_micros() as u64;
            (result, child, worker, start, dur_us)
        });
        let mut results = Vec::with_capacity(outs.len());
        for (idx, (result, child, worker, start, dur_us)) in outs.into_iter().enumerate() {
            tel.emit(Event::WorkerSpan {
                pool: pool_label.to_string(),
                worker: worker as u64,
                item: idx as u64,
                start_us: tel.us_since_epoch(start),
                dur_us,
            });
            tel.absorb(child, worker as u32);
            results.push(result);
        }
        results
    }

    /// The scheduling core: `f(index, item, worker)` over a chunked
    /// work-stealing index space, results merged in index order.
    fn map_worker<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, usize) -> R + Sync,
    {
        let n = items.len();
        let w = self.workers.min(n);
        if w <= 1 {
            // Inline fast path: no threads for empty, single-item or
            // single-worker batches.
            return items.iter().enumerate().map(|(i, t)| f(i, t, 0)).collect();
        }

        // One contiguous chunk of the index space per worker; owners pop
        // from the front, thieves split off the back half.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..w)
            .map(|k| Mutex::new((n * k / w..n * (k + 1) / w).collect()))
            .collect();

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..w)
                .map(|k| {
                    let deques = &deques;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        while let Some(i) = pop_or_steal(deques, k) {
                            local.push((i, f(i, &items[i], k)));
                        }
                        local
                    })
                })
                .collect();
            // Join every worker before propagating, so no handle outlives
            // the scope un-reaped and the first panic payload survives.
            let mut panic_payload = None;
            for h in handles {
                match h.join() {
                    Ok(local) => {
                        for (i, r) in local {
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => {
                        panic_payload.get_or_insert(payload);
                    }
                }
            }
            if let Some(payload) = panic_payload {
                resume_unwind(payload);
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("work pool completed every item"))
            .collect()
    }
}

/// Pops the front of worker `k`'s own deque, or steals the back half of
/// the first non-empty victim queue (round-robin from `k+1`).
fn pop_or_steal(deques: &[Mutex<VecDeque<usize>>], k: usize) -> Option<usize> {
    if let Some(i) = lock_unpoisoned(&deques[k]).pop_front() {
        return Some(i);
    }
    let w = deques.len();
    for d in 1..w {
        let victim = (k + d) % w;
        let stolen = {
            let mut vq = lock_unpoisoned(&deques[victim]);
            let len = vq.len();
            if len == 0 {
                continue;
            }
            vq.split_off(len - len.div_ceil(2))
        };
        let mut own = lock_unpoisoned(&deques[k]);
        *own = stolen;
        if let Some(i) = own.pop_front() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parse_jobs_accepts_positive_and_rejects_the_rest() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs(" 8 "), Ok(8));
        for bad in ["0", "-1", "four", "", "1.5", "1x"] {
            let e = parse_jobs(bad).unwrap_err();
            assert!(
                e.contains(&format!("invalid jobs value '{bad}'")),
                "error names the input: {e}"
            );
            assert!(e.contains("positive integer"), "error says what's accepted");
            assert!(!e.contains('\n'), "one line: {e:?}");
        }
    }

    #[test]
    fn map_preserves_input_order() {
        for workers in [1, 2, 3, 8] {
            let pool = Pool::new(workers);
            let items: Vec<u64> = (0..97).collect();
            let out = pool.map(&items, |idx, &x| {
                assert_eq!(idx as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        Pool::new(5).map(&items, |_idx, &i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn panic_payload_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let err = std::panic::catch_unwind(|| {
            Pool::new(4).map(&items, |_idx, &x| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom at 7"), "{msg}");
    }

    #[test]
    fn empty_and_tiny_batches() {
        let pool = Pool::new(8);
        assert_eq!(pool.map(&[] as &[u8], |_, &x| x), Vec::<u8>::new());
        assert_eq!(pool.map(&[42u8], |_, &x| x), vec![42]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert!(default_parallelism() >= 1);
    }

    #[test]
    fn map_traced_splices_in_index_order() {
        let tel = Telemetry::enabled();
        let items: Vec<u64> = (0..12).collect();
        let out = Pool::new(4).map_traced(&tel, "test-pool", &items, |child, idx, &x| {
            child.info(format!("item {idx}"));
            child.counter_add("items", 1);
            x + 1
        });
        assert_eq!(out, (1..13).collect::<Vec<u64>>());
        assert_eq!(tel.metrics().counter("items"), 12);
        // Per item, in index order: one worker_span then the item's own
        // events.
        let events = tel.events();
        let mut expect = 0u64;
        for e in &events {
            if let Event::WorkerSpan { item, .. } = &e.event {
                assert_eq!(*item, expect, "worker spans in index order");
                expect += 1;
            }
        }
        assert_eq!(expect, 12);
        let diags: Vec<String> = events
            .iter()
            .filter_map(|e| match &e.event {
                Event::Diagnostic { message, .. } => Some(message.clone()),
                _ => None,
            })
            .collect();
        let sorted: Vec<String> = (0..12).map(|i| format!("item {i}")).collect();
        assert_eq!(diags, sorted, "item events spliced in index order");
    }

    #[test]
    fn map_traced_disabled_forwards_disabled_handles() {
        let tel = Telemetry::disabled();
        let out = Pool::new(3).map_traced(&tel, "p", &[1u8, 2, 3], |child, _i, &x| {
            assert!(!child.is_enabled());
            x
        });
        assert_eq!(out, vec![1, 2, 3]);
        assert!(tel.events().is_empty());
    }
}
