//! Property-based tests of the work pool's determinism contract:
//! arbitrary item counts × worker counts must execute every item exactly
//! once and return results in input order, and a panicking item must
//! abort the batch with its original payload.

use std::sync::atomic::{AtomicUsize, Ordering};

use ltsp_par::Pool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every item runs exactly once, whatever the (items, workers) shape.
    #[test]
    fn each_item_executes_exactly_once(n in 0usize..200, workers in 1usize..12) {
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        Pool::new(workers).map(&items, |idx, &i| {
            prop_assert!(idx == i);
            counts[i].fetch_add(1, Ordering::SeqCst);
            Ok(())
        }).into_iter().collect::<Result<Vec<()>, _>>()?;
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::SeqCst), 1, "item {} ran a wrong number of times", i);
        }
    }

    /// Output order equals input order: the result vector is a pure
    /// function of the inputs, independent of worker count and stealing.
    #[test]
    fn output_order_matches_input_order(items in proptest::collection::vec(0u64..1_000_000, 0..150), workers in 1usize..10) {
        let out = Pool::new(workers).map(&items, |idx, &x| x.wrapping_mul(31).wrapping_add(idx as u64));
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(idx, &x)| x.wrapping_mul(31).wrapping_add(idx as u64))
            .collect();
        prop_assert_eq!(out, expect);
    }

    /// A panicking item aborts the whole batch and the caller observes the
    /// original panic payload (not the scope's generic message).
    #[test]
    fn panicking_item_aborts_with_original_payload(n in 1usize..64, workers in 1usize..8, victim_raw in 0usize..64) {
        let victim = victim_raw % n;
        let items: Vec<usize> = (0..n).collect();
        let err = std::panic::catch_unwind(|| {
            Pool::new(workers).map(&items, |_idx, &i| {
                if i == victim {
                    panic!("pool-item-panic:{i}");
                }
                i
            });
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string payload>".to_string());
        prop_assert_eq!(msg, format!("pool-item-panic:{}", victim));
    }
}
