//! Bounded enumeration of recurrence cycles.
//!
//! The criticality analysis of the reproduced paper (Sec. 3.3) iterates
//! over the recurrence cycles of the loop and asks, per cycle, whether
//! raising the contained loads to their hinted latencies would push the
//! cycle's implied II above the Resource II. This module enumerates simple
//! cycles per strongly connected component (Johnson-style DFS with
//! blocking), capped to keep pathological graphs tractable.

use ltsp_ir::InstId;

use crate::graph::{Ddg, DepKind};

/// A simple cycle in the dependence graph, stored as the edge indices
/// walked (each edge's `from` is the preceding node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurrenceCycle {
    /// Nodes on the cycle in walk order.
    pub nodes: Vec<InstId>,
    /// Edge indices (into [`Ddg::edges`]) in walk order.
    pub edges: Vec<usize>,
}

/// Latency/distance totals of a cycle under some load-latency override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleSummary {
    /// Sum of edge latencies.
    pub latency: u64,
    /// Sum of edge omegas (≥ 1 for any cycle in a validated loop).
    pub omega: u64,
    /// The II this cycle forces: `ceil(latency / omega)`.
    pub implied_ii: u32,
}

impl Ddg {
    /// Enumerates simple cycles, visiting at most `cap` cycles (a safety
    /// valve; real loop bodies have few). Cycles are found per recurrence
    /// SCC.
    pub fn recurrence_cycles(&self, cap: usize) -> Vec<RecurrenceCycle> {
        let mut out = Vec::new();
        for scc in self.recurrence_sccs() {
            if out.len() >= cap {
                break;
            }
            self.cycles_in_scc(&scc, cap, &mut out);
        }
        out
    }

    /// [`Ddg::recurrence_cycles`] with the enumeration outcome recorded
    /// on a telemetry sink (cycle count and whether the cap truncated the
    /// search — a truncated enumeration can under-mark critical loads).
    pub fn recurrence_cycles_traced(
        &self,
        cap: usize,
        tel: &ltsp_telemetry::Telemetry,
    ) -> Vec<RecurrenceCycle> {
        let out = self.recurrence_cycles(cap);
        if tel.is_enabled() {
            tel.emit(ltsp_telemetry::Event::CycleEnumeration {
                cycles: out.len() as u64,
                cap: cap as u64,
                truncated: out.len() >= cap,
            });
            tel.counter_add("ddg.recurrence_cycles", out.len() as u64);
        }
        out
    }

    fn cycles_in_scc(&self, scc: &[InstId], cap: usize, out: &mut Vec<RecurrenceCycle>) {
        let in_scc: std::collections::HashSet<usize> = scc.iter().map(|id| id.index()).collect();
        // Johnson-style: for each start node (ascending), find simple
        // cycles whose minimum node is the start; avoids duplicates.
        for &start in scc {
            if out.len() >= cap {
                return;
            }
            let s = start.index();
            let mut path_nodes: Vec<usize> = vec![s];
            let mut path_edges: Vec<usize> = Vec::new();
            let mut on_path = vec![false; self.len()];
            on_path[s] = true;
            // Each stack frame tracks the next succ-edge offset to try.
            let mut frame: Vec<usize> = vec![0];
            while let Some(ei) = frame.last_mut() {
                let v = *path_nodes.last().expect("path tracks frames");
                let succs = self.succ_indices(v);
                if *ei < succs.len() {
                    let edge_idx = succs[*ei];
                    *ei += 1;
                    let w = self.edges()[edge_idx].to.index();
                    if !in_scc.contains(&w) || w < s {
                        continue;
                    }
                    if w == s {
                        out.push(RecurrenceCycle {
                            nodes: path_nodes.iter().map(|&x| InstId(x as u32)).collect(),
                            edges: {
                                let mut e = path_edges.clone();
                                e.push(edge_idx);
                                e
                            },
                        });
                        if out.len() >= cap {
                            return;
                        }
                    } else if !on_path[w] {
                        on_path[w] = true;
                        path_nodes.push(w);
                        path_edges.push(edge_idx);
                        frame.push(0);
                    }
                } else {
                    frame.pop();
                    let done = path_nodes.pop().expect("path tracks frames");
                    on_path[done] = false;
                    path_edges.pop();
                }
            }
        }
    }

    fn succ_indices(&self, node: usize) -> &[usize] {
        self.succ_raw(node)
    }

    /// Summarizes a cycle, optionally overriding the latency of load-data
    /// flow edges (edges of kind [`DepKind::Flow`] whose source is a load)
    /// via `load_override`. Post-increment and memory-ordering edges are
    /// never overridden.
    pub fn cycle_summary(
        &self,
        cycle: &RecurrenceCycle,
        load_override: &dyn Fn(InstId) -> Option<u32>,
    ) -> CycleSummary {
        let mut latency = 0u64;
        let mut omega = 0u64;
        for &ei in &cycle.edges {
            let e = self.edges()[ei];
            let lat = if e.kind == DepKind::Flow && self.is_load(e.from) {
                load_override(e.from).map_or(u64::from(e.latency), u64::from)
            } else {
                u64::from(e.latency)
            };
            latency += lat;
            omega += u64::from(e.omega);
        }
        let implied_ii = if omega == 0 {
            u32::MAX
        } else {
            (latency.div_ceil(omega)).min(u64::from(u32::MAX)) as u32
        };
        CycleSummary {
            latency,
            omega,
            implied_ii,
        }
    }

    /// The loads appearing as sources of flow edges on the cycle.
    pub fn cycle_loads(&self, cycle: &RecurrenceCycle) -> Vec<InstId> {
        let mut loads: Vec<InstId> = cycle
            .edges
            .iter()
            .map(|&ei| self.edges()[ei])
            .filter(|e| e.kind == DepKind::Flow && self.is_load(e.from))
            .map(|e| e.from)
            .collect();
        loads.sort();
        loads.dedup();
        loads
    }
}

#[cfg(test)]
mod tests {
    use ltsp_ir::{DataClass, LoopBuilder};
    use ltsp_machine::MachineModel;

    #[test]
    fn chase_cycle_found_and_summarized() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("chase");
        let node = b.chase_ref("n", 0, 64, 1 << 22, 0.0);
        let v = b.load(node);
        let fld = b.deref_ref("n->f", DataClass::Int, node, 8, 1 << 22, 8);
        let fv = b.load(fld);
        let _s = b.add(fv, v);
        let lp = b.build().unwrap();
        let ddg = crate::Ddg::build(&lp, &m, &|_| 1);
        let cycles = ddg.recurrence_cycles(100);
        // Exactly one: the chase self-loop. The deref load hangs off it.
        assert_eq!(cycles.len(), 1);
        let c = &cycles[0];
        assert_eq!(c.nodes.len(), 1);
        let base = ddg.cycle_summary(c, &|_| None);
        assert_eq!(base.implied_ii, 1);
        // Raising the chase load to 21 makes the implied II 21.
        let raised = ddg.cycle_summary(c, &|_| Some(21));
        assert_eq!(raised.implied_ii, 21);
        assert_eq!(ddg.cycle_loads(c), vec![ltsp_ir::InstId(0)]);
    }

    #[test]
    fn reduction_cycle_has_no_loads() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("red");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _ = b.fadd_reduce(v);
        let lp = b.build().unwrap();
        let ddg = crate::Ddg::build(&lp, &m, &|_| 6);
        let cycles = ddg.recurrence_cycles(100);
        // Two cycles: fadd self-recurrence, load post-increment.
        assert_eq!(cycles.len(), 2);
        for c in &cycles {
            // Neither cycle has a load *data* edge: the post-increment
            // self-edge is AddrInc and must not count as a load edge.
            assert!(ddg.cycle_loads(c).is_empty());
        }
    }

    #[test]
    fn two_node_cycle() {
        use ltsp_ir::{Inst, InstId, LoopIr, Opcode, RegClass, SrcOperand, VReg};
        let m = MachineModel::itanium2();
        let a = VReg::new(RegClass::Gr, 0);
        let b_ = VReg::new(RegClass::Gr, 1);
        // a = b[-1] + .. ; b = a + ..  -> cycle a->b->a with one carried edge.
        let i0 = Inst::new(
            InstId(0),
            Opcode::Add,
            Some(a),
            vec![SrcOperand::carried(b_, 1)],
            None,
        );
        let i1 = Inst::new(InstId(1), Opcode::Add, Some(b_), vec![a.into()], None);
        let lp = LoopIr::new("two", vec![i0, i1], vec![], vec![], vec![]).unwrap();
        let ddg = crate::Ddg::build(&lp, &m, &|_| 0);
        let cycles = ddg.recurrence_cycles(100);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].nodes.len(), 2);
        let s = ddg.cycle_summary(&cycles[0], &|_| None);
        assert_eq!(s.latency, 2);
        assert_eq!(s.omega, 1);
        assert_eq!(s.implied_ii, 2);
        assert_eq!(ddg.rec_mii(), 2);
    }

    #[test]
    fn cap_limits_enumeration() {
        use ltsp_ir::{Inst, InstId, LoopIr, Opcode, RegClass, SrcOperand, VReg};
        let m = MachineModel::itanium2();
        // Dense graph: every node reads every other node carried -> many cycles.
        let n = 6u32;
        let regs: Vec<VReg> = (0..n).map(|i| VReg::new(RegClass::Gr, i)).collect();
        let insts: Vec<Inst> = (0..n)
            .map(|i| {
                let srcs = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| SrcOperand::carried(regs[j as usize], 1))
                    .collect();
                Inst::new(InstId(i), Opcode::Add, Some(regs[i as usize]), srcs, None)
            })
            .collect();
        let lp = LoopIr::new("dense", insts, vec![], vec![], vec![]).unwrap();
        let ddg = crate::Ddg::build(&lp, &m, &|_| 0);
        let cycles = ddg.recurrence_cycles(10);
        assert_eq!(cycles.len(), 10);
    }
}
