//! All-pairs longest-path distances at a fixed II.
//!
//! Two implementations of the same function:
//!
//! - [`MinDist::compute`] — the reference: one Floyd-Warshall over the
//!   full graph per II. O(n³) per call.
//! - [`MinDistSolver`] — the incremental solver behind II escalation.
//!   Edge weights are `latency − II·omega`, linear in II, and only the
//!   carried (`omega > 0`) edges depend on II at all. The solver runs
//!   Floyd-Warshall **once** over the II-independent `omega = 0`
//!   subgraph at construction, then answers each II by composing those
//!   fixed segment distances through the `c` carried edges — O(c³ + n·c)
//!   per II instead of O(n³), with `c ≪ n` in real loop bodies (carried
//!   edges are post-increment self-recurrences, reductions and memory
//!   recurrences). Scratch buffers are reused across II attempts.
//!
//! The solver must be *observably identical* to the reference: whenever
//! the decomposition is unsound — an `omega = 0` cycle, a
//! positive-weight cycle at this II (infeasible II), or too many carried
//! edges for the decomposition to win — it falls back to a full
//! recompute. The differential tests below pin byte-equality of the two
//! implementations across random graphs and II sweeps.

use ltsp_ir::InstId;

use crate::graph::Ddg;

/// The MinDist matrix of modulo scheduling: `dist(i, j)` is the minimum
/// number of cycles instruction `j` must start after instruction `i`
/// (longest path under edge weight `latency − II·omega`).
///
/// Used by the scheduler for precedence windows (`estart`) and for
/// height-based priority, and by tests as an oracle for RecMII (a positive
/// `dist(i, i)` means the II is infeasible).
#[derive(Debug, Clone)]
pub struct MinDist {
    n: usize,
    ii: u32,
    dist: Vec<i64>,
}

/// Sentinel for "no path".
const NEG_INF: i64 = i64::MIN / 4;

impl MinDist {
    /// Computes the matrix at the given II via Floyd-Warshall
    /// (O(n³); loop bodies are small).
    pub fn compute(ddg: &Ddg, ii: u32) -> MinDist {
        MinDist::compute_into(ddg, ii, Vec::new())
    }

    /// [`MinDist::compute`] reusing a previously-allocated backing
    /// buffer (e.g. reclaimed from an earlier matrix via `md.dist`).
    fn compute_into(ddg: &Ddg, ii: u32, mut dist: Vec<i64>) -> MinDist {
        let n = ddg.len();
        dist.clear();
        dist.resize(n * n, NEG_INF);
        for e in ddg.edges() {
            let w = i64::from(e.latency) - i64::from(ii) * i64::from(e.omega);
            let idx = e.from.index() * n + e.to.index();
            if w > dist[idx] {
                dist[idx] = w;
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if dik == NEG_INF {
                    continue;
                }
                for j in 0..n {
                    let dkj = dist[k * n + j];
                    if dkj == NEG_INF {
                        continue;
                    }
                    let cand = dik + dkj;
                    if cand > dist[i * n + j] {
                        dist[i * n + j] = cand;
                    }
                }
            }
        }
        MinDist { n, ii, dist }
    }

    /// The II this matrix was computed at.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Longest-path distance, or `None` if no path exists.
    pub fn get(&self, from: InstId, to: InstId) -> Option<i64> {
        let d = self.dist[from.index() * self.n + to.index()];
        if d == NEG_INF {
            None
        } else {
            Some(d)
        }
    }

    /// True when some node can reach itself with positive weight — the II
    /// is infeasible.
    pub fn has_positive_self_cycle(&self) -> bool {
        (0..self.n).any(|i| self.dist[i * self.n + i] > 0)
    }

    /// Height-based scheduling priority: the longest path from the node to
    /// any other node (at least 0). Ops that feed long chains schedule
    /// first.
    pub fn height(&self, node: InstId) -> i64 {
        let row = &self.dist[node.index() * self.n..(node.index() + 1) * self.n];
        row.iter()
            .copied()
            .filter(|&d| d > NEG_INF)
            .max()
            .unwrap_or(0)
            .max(0)
    }
}

/// Values at or below this are "no path". Composed candidates add up to
/// three [`NEG_INF`]-tainted terms plus small real weights, so any sum
/// containing a missing segment stays far below this threshold while
/// every real path value (bounded by total latency and `II·Σomega`)
/// stays far above it.
const INVALID: i64 = NEG_INF / 2;

/// One carried edge of the decomposition.
#[derive(Debug, Clone, Copy)]
struct Carried {
    from: usize,
    to: usize,
    latency: i64,
    omega: i64,
}

/// Incremental [`MinDist`] solver for II escalation: pays the O(n³)
/// Floyd-Warshall once (over the II-independent `omega = 0` subgraph),
/// then re-derives heights or the full matrix at each II from the small
/// set of carried edges. Falls back to [`MinDist::compute`] whenever the
/// decomposition would be unsound, so results are always byte-identical
/// to the reference.
#[derive(Debug, Clone)]
pub struct MinDistSolver {
    n: usize,
    /// Decomposition disabled (omega-0 cycle, or `c` not small): every
    /// query runs the reference Floyd-Warshall.
    always_exact: bool,
    /// `n × n` longest ≥1-edge paths over `omega = 0` edges only.
    d0: Vec<i64>,
    /// Per-node `max_j d0[i][j]` (the II-independent part of `height`).
    h0: Vec<i64>,
    carried: Vec<Carried>,
    /// `n × c`: longest empty-or-`omega0` path from node `i` to
    /// `carried[s].from`.
    entry: Vec<i64>,
    /// `c × n`: longest empty-or-`omega0` path from `carried[t].to` to
    /// node `j`.
    exitv: Vec<i64>,
    /// Per carried edge `t`: `max_j exitv[t][j]` (always ≥ 0: the empty
    /// path to `carried[t].to` itself).
    maxexit: Vec<i64>,
    /// `c × c`: longest empty-or-`omega0` path from `carried[s].to` to
    /// `carried[t].from`.
    a: Vec<i64>,
    // Scratch reused across II attempts.
    q: Vec<i64>,
    tbest: Vec<i64>,
    cw: Vec<i64>,
    fallback_dist: Vec<i64>,
}

impl MinDistSolver {
    /// Builds the solver: one Floyd-Warshall over the `omega = 0`
    /// subgraph plus the carried-edge coupling matrices.
    pub fn new(ddg: &Ddg) -> MinDistSolver {
        let n = ddg.len();
        let carried: Vec<Carried> = ddg
            .edges()
            .iter()
            .filter(|e| e.omega > 0)
            .map(|e| Carried {
                from: e.from.index(),
                to: e.to.index(),
                latency: i64::from(e.latency),
                omega: i64::from(e.omega),
            })
            .collect();
        let c = carried.len();

        // The per-II closure is O(c³); past c ≈ n the decomposition
        // stops winning over the O(n³) reference.
        if c >= n.max(1) {
            return MinDistSolver::exact_only(n, carried);
        }

        // Longest ≥1-edge paths over omega-0 edges (II-independent). The
        // omega-0 subgraph of a valid loop body is a DAG (an omega-0
        // cycle would break the decomposition; topological sort detects
        // it and falls back), so all-pairs longest paths come from one
        // reverse-topological-order DP in O(E·n) — not Floyd-Warshall's
        // O(n³), which dominated solver construction on large bodies.
        let omega0: Vec<(usize, usize, i64)> = ddg
            .edges()
            .iter()
            .filter(|e| e.omega == 0)
            .map(|e| (e.from.index(), e.to.index(), i64::from(e.latency)))
            .collect();
        let mut indeg = vec![0usize; n];
        for &(_, to, _) in &omega0 {
            indeg[to] += 1;
        }
        let mut topo: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut head = 0;
        let mut out: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n];
        for &(from, to, w) in &omega0 {
            out[from].push((to, w));
        }
        while head < topo.len() {
            let u = topo[head];
            head += 1;
            for &(v, _) in &out[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    topo.push(v);
                }
            }
        }
        if topo.len() != n {
            // An omega-0 cycle: defensive only, loop bodies are DAGs
            // within an iteration.
            return MinDistSolver::exact_only(n, carried);
        }

        let mut d0 = vec![NEG_INF; n * n];
        for &u in topo.iter().rev() {
            for &(v, w) in &out[u] {
                // The edge itself, then the edge prepended to every path
                // out of `v` (already final: v is topologically later).
                if w > d0[u * n + v] {
                    d0[u * n + v] = w;
                }
                let (urow, vrow) = if u < v {
                    let (a, b) = d0.split_at_mut(v * n);
                    (&mut a[u * n..u * n + n], &b[..n])
                } else {
                    let (a, b) = d0.split_at_mut(u * n);
                    (&mut b[..n], &a[v * n..v * n + n])
                };
                for (du, &dv) in urow.iter_mut().zip(vrow) {
                    if dv > INVALID {
                        let cand = w + dv;
                        if cand > *du {
                            *du = cand;
                        }
                    }
                }
            }
        }

        let h0: Vec<i64> = (0..n)
            .map(|i| {
                d0[i * n..(i + 1) * n]
                    .iter()
                    .copied()
                    .filter(|&d| d > INVALID)
                    .max()
                    .unwrap_or(NEG_INF)
            })
            .collect();

        // Empty-or-omega0 segment distance: 0 when the endpoints
        // coincide (no omega-0 cycles, so d0[i][i] is always invalid).
        let seg = |from: usize, to: usize| if from == to { 0 } else { d0[from * n + to] };

        let mut entry = vec![NEG_INF; n * c];
        for i in 0..n {
            for (s, cs) in carried.iter().enumerate() {
                entry[i * c + s] = seg(i, cs.from);
            }
        }
        let mut exitv = vec![NEG_INF; c * n];
        let mut maxexit = vec![NEG_INF; c];
        for (t, ct) in carried.iter().enumerate() {
            for j in 0..n {
                let v = seg(ct.to, j);
                exitv[t * n + j] = v;
                if v > maxexit[t] {
                    maxexit[t] = v;
                }
            }
        }
        let mut a = vec![NEG_INF; c * c];
        for (s, cs) in carried.iter().enumerate() {
            for (t, ct) in carried.iter().enumerate() {
                a[s * c + t] = seg(cs.to, ct.from);
            }
        }

        MinDistSolver {
            n,
            always_exact: false,
            d0,
            h0,
            carried,
            entry,
            exitv,
            maxexit,
            a,
            q: vec![0; c * c],
            tbest: vec![0; c],
            cw: vec![0; c],
            fallback_dist: Vec::new(),
        }
    }

    fn exact_only(n: usize, carried: Vec<Carried>) -> MinDistSolver {
        MinDistSolver {
            n,
            always_exact: true,
            d0: Vec::new(),
            h0: Vec::new(),
            carried,
            entry: Vec::new(),
            exitv: Vec::new(),
            maxexit: Vec::new(),
            a: Vec::new(),
            q: Vec::new(),
            tbest: Vec::new(),
            cw: Vec::new(),
            fallback_dist: Vec::new(),
        }
    }

    /// Number of carried edges in the decomposition.
    pub fn carried_edges(&self) -> usize {
        self.carried.len()
    }

    /// Closes the carried-edge transition graph at `ii` into the scratch
    /// matrix `q`. Returns `false` when a positive cycle exists (the II
    /// is infeasible and longest paths are unbounded — caller must fall
    /// back to the reference to reproduce its exact values).
    fn close_transitions(&mut self, ii: u32) -> bool {
        let c = self.carried.len();
        for (s, e) in self.carried.iter().enumerate() {
            self.cw[s] = e.latency - i64::from(ii) * e.omega;
        }
        // q[s][t] = best "… just took carried edge s, travel to and take
        // carried edge t" chain of ≥1 transitions.
        for s in 0..c {
            for t in 0..c {
                let a = self.a[s * c + t];
                self.q[s * c + t] = if a <= INVALID {
                    NEG_INF
                } else {
                    a + self.cw[t]
                };
            }
        }
        for k in 0..c {
            for s in 0..c {
                let qsk = self.q[s * c + k];
                if qsk <= INVALID {
                    continue;
                }
                for t in 0..c {
                    let qkt = self.q[k * c + t];
                    if qkt <= INVALID {
                        continue;
                    }
                    let cand = qsk + qkt;
                    if cand > self.q[s * c + t] {
                        self.q[s * c + t] = cand;
                    }
                }
            }
        }
        // A positive cycle among carried transitions lifts to a positive
        // cycle in the full graph (and vice versa for any positive cycle
        // that is not pure omega-0, which construction already excluded).
        (0..c).all(|s| self.q[s * c + s] <= 0)
    }

    /// Per-node scheduling heights at `ii`, written into `out`.
    /// Byte-identical to `MinDist::compute(ddg, ii).height(i)` for all i.
    pub fn heights_into(&mut self, ddg: &Ddg, ii: u32, out: &mut Vec<i64>) {
        let n = self.n;
        out.clear();
        if self.always_exact || !self.close_transitions(ii) {
            // Full recompute, reusing the fallback matrix allocation
            // across II attempts.
            let md = MinDist::compute_into(ddg, ii, std::mem::take(&mut self.fallback_dist));
            out.extend((0..n).map(|i| md.height(InstId(i as u32))));
            self.fallback_dist = md.dist;
            return;
        }
        let c = self.carried.len();
        // tbest[s] = best completion after taking carried edge s: zero or
        // more further transitions, then the best exit segment. Always
        // valid: the empty continuation contributes maxexit[s] ≥ 0.
        for s in 0..c {
            let mut best = self.maxexit[s];
            for t in 0..c {
                let q = self.q[s * c + t];
                if q > INVALID {
                    let cand = q + self.maxexit[t];
                    if cand > best {
                        best = cand;
                    }
                }
            }
            self.tbest[s] = best;
        }
        for i in 0..n {
            let mut h = self.h0[i];
            for s in 0..c {
                let e = self.entry[i * c + s];
                if e > INVALID {
                    let cand = e + self.cw[s] + self.tbest[s];
                    if cand > h {
                        h = cand;
                    }
                }
            }
            out.push(if h > INVALID { h.max(0) } else { 0 });
        }
    }

    /// The full [`MinDist`] matrix at `ii`, materialized from the
    /// decomposition (or the reference when unsound). Byte-identical to
    /// [`MinDist::compute`]. O(n²·c) when incremental.
    pub fn matrix(&mut self, ddg: &Ddg, ii: u32) -> MinDist {
        let n = self.n;
        if self.always_exact || !self.close_transitions(ii) {
            return MinDist::compute(ddg, ii);
        }
        let c = self.carried.len();
        let mut dist = self.d0.clone();
        // w[i][t] = best "from i, reach and take a first carried edge,
        // then zero or more transitions ending just after edge t".
        let mut w = vec![NEG_INF; n * c];
        for i in 0..n {
            for s in 0..c {
                let e = self.entry[i * c + s];
                if e <= INVALID {
                    continue;
                }
                let first = e + self.cw[s];
                // Zero further transitions: end at s itself.
                if first > w[i * c + s] {
                    w[i * c + s] = first;
                }
                for t in 0..c {
                    let q = self.q[s * c + t];
                    if q > INVALID {
                        let cand = first + q;
                        if cand > w[i * c + t] {
                            w[i * c + t] = cand;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            for t in 0..c {
                let wit = w[i * c + t];
                if wit <= INVALID {
                    continue;
                }
                for j in 0..n {
                    let x = self.exitv[t * n + j];
                    if x > INVALID {
                        let cand = wit + x;
                        if cand > dist[i * n + j] {
                            dist[i * n + j] = cand;
                        }
                    }
                }
            }
        }
        // Normalize missing paths to the reference sentinel.
        for d in &mut dist {
            if *d <= INVALID {
                *d = NEG_INF;
            }
        }
        MinDist { n, ii, dist }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{DataClass, LoopBuilder};
    use ltsp_machine::MachineModel;

    #[test]
    fn chain_distances() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("chain");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x); // latency 6 given below
        let a = b.fadd(v, v); // latency 4
        let y = b.affine_ref("y", DataClass::Fp, 1 << 20, 8, 8);
        b.store(y, a);
        let lp = b.build().unwrap();
        let ddg = crate::Ddg::build(&lp, &m, &|_| 6);
        let md = MinDist::compute(&ddg, 1);
        assert_eq!(md.get(ltsp_ir::InstId(0), ltsp_ir::InstId(1)), Some(6));
        assert_eq!(md.get(ltsp_ir::InstId(0), ltsp_ir::InstId(2)), Some(10));
        assert_eq!(md.get(ltsp_ir::InstId(2), ltsp_ir::InstId(0)), None);
        assert!(md.height(ltsp_ir::InstId(0)) >= 10);
    }

    #[test]
    fn self_cycle_detection_matches_feasibility() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("red");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _ = b.fadd_reduce(v);
        let lp = b.build().unwrap();
        let ddg = crate::Ddg::build(&lp, &m, &|_| 6);
        // RecMII is 4 (the fadd self-recurrence).
        for ii in 1..8 {
            let md = MinDist::compute(&ddg, ii);
            assert_eq!(
                md.has_positive_self_cycle(),
                !ddg.feasible_ii(ii),
                "disagreement at ii={ii}"
            );
        }
    }

    /// A random dependence graph: a DAG core of omega-0 edges (forward
    /// only, so loop-body realism holds) plus random carried edges in any
    /// direction, including self-recurrences.
    fn random_ddg(rng: &mut ltsp_ir::SplitMix64, n: usize) -> crate::Ddg {
        use crate::graph::{DepEdge, DepKind};
        let mut edges = Vec::new();
        let omega0 = rng.next_below(3 * n as u64) as usize;
        for _ in 0..omega0 {
            let a = rng.next_below(n as u64) as usize;
            let b = rng.next_below(n as u64) as usize;
            if a == b {
                continue;
            }
            let (from, to) = (a.min(b), a.max(b));
            edges.push(DepEdge {
                from: InstId(from as u32),
                to: InstId(to as u32),
                kind: DepKind::Flow,
                latency: rng.next_below(9) as u32,
                omega: 0,
            });
        }
        let carried = rng.next_below(n as u64 / 2 + 2) as usize;
        for _ in 0..carried {
            let from = rng.next_below(n as u64) as usize;
            let to = rng.next_below(n as u64) as usize;
            edges.push(DepEdge {
                from: InstId(from as u32),
                to: InstId(to as u32),
                kind: DepKind::Flow,
                latency: rng.next_below(13) as u32,
                omega: 1 + rng.next_below(3) as u32,
            });
        }
        crate::Ddg::synthetic(n, edges)
    }

    fn assert_solver_matches(ddg: &crate::Ddg, ii_hi: u32, ctx: &str) {
        let mut solver = MinDistSolver::new(ddg);
        let mut heights = Vec::new();
        for ii in 1..=ii_hi {
            let reference = MinDist::compute(ddg, ii);
            let fast = solver.matrix(ddg, ii);
            assert_eq!(fast.n, reference.n, "{ctx} ii={ii}");
            assert_eq!(fast.ii, reference.ii, "{ctx} ii={ii}");
            assert_eq!(fast.dist, reference.dist, "{ctx} ii={ii}: matrix diverged");
            solver.heights_into(ddg, ii, &mut heights);
            let ref_heights: Vec<i64> = (0..ddg.len())
                .map(|i| reference.height(InstId(i as u32)))
                .collect();
            assert_eq!(heights, ref_heights, "{ctx} ii={ii}: heights diverged");
        }
    }

    #[test]
    fn solver_matches_reference_on_random_graphs() {
        // Differential property test: incremental solver vs from-scratch
        // Floyd-Warshall across random DDGs and full II sweeps, covering
        // feasible IIs (incremental path) and infeasible ones (positive
        // cycles -> exact fallback) in the same sweep.
        let mut rng = ltsp_ir::SplitMix64::new(0x51D_D157);
        for case in 0..60 {
            let n = 2 + rng.next_below(14) as usize;
            let ddg = random_ddg(&mut rng, n);
            assert_solver_matches(&ddg, 14, &format!("case {case} (n={n})"));
        }
    }

    #[test]
    fn solver_matches_reference_on_real_kernels() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("mix");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let acc = b.fadd_reduce(v);
        let w = b.fma(acc, v, acc);
        let y = b.affine_ref("y", DataClass::Fp, 1 << 20, 8, 8);
        b.store(y, w);
        let lp = b.build().unwrap();
        for boost in [1, 6, 21] {
            let ddg = crate::Ddg::build(&lp, &m, &|_| boost);
            assert_solver_matches(&ddg, 30, &format!("boost {boost}"));
        }
    }

    #[test]
    fn solver_exact_fallback_when_carried_dominates() {
        // Every node gets several carried edges: c >= n disables the
        // decomposition entirely; results must still match.
        let mut rng = ltsp_ir::SplitMix64::new(99);
        for case in 0..10 {
            use crate::graph::{DepEdge, DepKind};
            let n = 2 + rng.next_below(5) as usize;
            let mut edges = Vec::new();
            for i in 0..n {
                for _ in 0..2 {
                    edges.push(DepEdge {
                        from: InstId(i as u32),
                        to: InstId(rng.next_below(n as u64) as u32),
                        kind: DepKind::Flow,
                        latency: rng.next_below(8) as u32,
                        omega: 1 + rng.next_below(2) as u32,
                    });
                }
            }
            let ddg = crate::Ddg::synthetic(n, edges);
            let solver = MinDistSolver::new(&ddg);
            assert!(solver.always_exact, "case {case}: expected exact mode");
            assert_solver_matches(&ddg, 10, &format!("exact case {case}"));
        }
    }

    #[test]
    fn solver_handles_empty_and_single_node() {
        let ddg = crate::Ddg::synthetic(0, vec![]);
        let mut solver = MinDistSolver::new(&ddg);
        let mut h = vec![42];
        solver.heights_into(&ddg, 1, &mut h);
        assert!(h.is_empty());
        assert!(!solver.matrix(&ddg, 1).has_positive_self_cycle());

        let one = crate::Ddg::synthetic(1, vec![]);
        let mut solver = MinDistSolver::new(&one);
        solver.heights_into(&one, 3, &mut h);
        assert_eq!(h, vec![0]);
    }

    #[test]
    fn carried_edge_subtracts_ii() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("red");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let acc = b.fadd_reduce(v);
        let _ = acc;
        let lp = b.build().unwrap();
        let ddg = crate::Ddg::build(&lp, &m, &|_| 1);
        let md = MinDist::compute(&ddg, 4);
        // fadd self edge: latency 4, omega 1, weight 4 - 4 = 0.
        assert_eq!(md.get(ltsp_ir::InstId(1), ltsp_ir::InstId(1)), Some(0));
    }
}
