//! All-pairs longest-path distances at a fixed II.

use ltsp_ir::InstId;

use crate::graph::Ddg;

/// The MinDist matrix of modulo scheduling: `dist(i, j)` is the minimum
/// number of cycles instruction `j` must start after instruction `i`
/// (longest path under edge weight `latency − II·omega`).
///
/// Used by the scheduler for precedence windows (`estart`) and for
/// height-based priority, and by tests as an oracle for RecMII (a positive
/// `dist(i, i)` means the II is infeasible).
#[derive(Debug, Clone)]
pub struct MinDist {
    n: usize,
    ii: u32,
    dist: Vec<i64>,
}

/// Sentinel for "no path".
const NEG_INF: i64 = i64::MIN / 4;

impl MinDist {
    /// Computes the matrix at the given II via Floyd-Warshall
    /// (O(n³); loop bodies are small).
    pub fn compute(ddg: &Ddg, ii: u32) -> MinDist {
        let n = ddg.len();
        let mut dist = vec![NEG_INF; n * n];
        for e in ddg.edges() {
            let w = i64::from(e.latency) - i64::from(ii) * i64::from(e.omega);
            let idx = e.from.index() * n + e.to.index();
            if w > dist[idx] {
                dist[idx] = w;
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if dik == NEG_INF {
                    continue;
                }
                for j in 0..n {
                    let dkj = dist[k * n + j];
                    if dkj == NEG_INF {
                        continue;
                    }
                    let cand = dik + dkj;
                    if cand > dist[i * n + j] {
                        dist[i * n + j] = cand;
                    }
                }
            }
        }
        MinDist { n, ii, dist }
    }

    /// The II this matrix was computed at.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Longest-path distance, or `None` if no path exists.
    pub fn get(&self, from: InstId, to: InstId) -> Option<i64> {
        let d = self.dist[from.index() * self.n + to.index()];
        if d == NEG_INF {
            None
        } else {
            Some(d)
        }
    }

    /// True when some node can reach itself with positive weight — the II
    /// is infeasible.
    pub fn has_positive_self_cycle(&self) -> bool {
        (0..self.n).any(|i| self.dist[i * self.n + i] > 0)
    }

    /// Height-based scheduling priority: the longest path from the node to
    /// any other node (at least 0). Ops that feed long chains schedule
    /// first.
    pub fn height(&self, node: InstId) -> i64 {
        let row = &self.dist[node.index() * self.n..(node.index() + 1) * self.n];
        row.iter()
            .copied()
            .filter(|&d| d > NEG_INF)
            .max()
            .unwrap_or(0)
            .max(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{DataClass, LoopBuilder};
    use ltsp_machine::MachineModel;

    #[test]
    fn chain_distances() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("chain");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x); // latency 6 given below
        let a = b.fadd(v, v); // latency 4
        let y = b.affine_ref("y", DataClass::Fp, 1 << 20, 8, 8);
        b.store(y, a);
        let lp = b.build().unwrap();
        let ddg = crate::Ddg::build(&lp, &m, &|_| 6);
        let md = MinDist::compute(&ddg, 1);
        assert_eq!(md.get(ltsp_ir::InstId(0), ltsp_ir::InstId(1)), Some(6));
        assert_eq!(md.get(ltsp_ir::InstId(0), ltsp_ir::InstId(2)), Some(10));
        assert_eq!(md.get(ltsp_ir::InstId(2), ltsp_ir::InstId(0)), None);
        assert!(md.height(ltsp_ir::InstId(0)) >= 10);
    }

    #[test]
    fn self_cycle_detection_matches_feasibility() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("red");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _ = b.fadd_reduce(v);
        let lp = b.build().unwrap();
        let ddg = crate::Ddg::build(&lp, &m, &|_| 6);
        // RecMII is 4 (the fadd self-recurrence).
        for ii in 1..8 {
            let md = MinDist::compute(&ddg, ii);
            assert_eq!(
                md.has_positive_self_cycle(),
                !ddg.feasible_ii(ii),
                "disagreement at ii={ii}"
            );
        }
    }

    #[test]
    fn carried_edge_subtracts_ii() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("red");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let acc = b.fadd_reduce(v);
        let _ = acc;
        let lp = b.build().unwrap();
        let ddg = crate::Ddg::build(&lp, &m, &|_| 1);
        let md = MinDist::compute(&ddg, 4);
        // fadd self edge: latency 4, omega 1, weight 4 - 4 = 0.
        assert_eq!(md.get(ltsp_ir::InstId(1), ltsp_ir::InstId(1)), Some(0));
    }
}
