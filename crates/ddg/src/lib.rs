//! Cyclic data-dependence graphs for modulo scheduling.
//!
//! This crate turns a [`ltsp_ir::LoopIr`] into the dependence graph the
//! software pipeliner works on, and provides the classic cyclic-scheduling
//! analyses:
//!
//! - [`Ddg::build`] — edges for register flow (including loop-carried reads),
//!   explicit memory dependences, and the implicit post-increment
//!   self-recurrences of strided memory operations;
//! - [`Ddg::rec_mii`] — the Recurrence II lower bound, found by binary
//!   search over the feasibility predicate "no positive-weight cycle under
//!   edge weight `delay − II·omega`" (Bellman-Ford);
//! - [`MinDist`] — the all-pairs longest-path matrix at a fixed II, used by
//!   the scheduler for precedence windows and height-based priority;
//! - [`MinDistSolver`] — the incremental form behind II escalation: one
//!   topological-order longest-path pass over the `omega = 0` subgraph at
//!   construction, then O(c³ + n·c) per II through the `c` carried edges,
//!   falling back to a full recompute whenever the decomposition is unsound;
//! - [`Ddg::recurrence_cycles`] — bounded enumeration of the simple cycles
//!   with a loop-carried dependence, used by the criticality analysis of
//!   the reproduced paper (Sec. 3.3): a load is *critical* if raising the
//!   latencies of the loads on some cycle through it would push that
//!   cycle's implied II above the Resource II.

mod cycles;
mod graph;
mod mindist;

pub use cycles::{CycleSummary, RecurrenceCycle};
pub use graph::{Ddg, DepEdge, DepKind, LoadLatencyFn};
pub use mindist::{MinDist, MinDistSolver};
