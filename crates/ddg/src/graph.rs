//! Graph construction and the Recurrence II bound.

use ltsp_ir::{AccessPattern, InstId, LoopIr, MemDepKind};
use ltsp_machine::MachineModel;

/// Kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Register flow dependence (def → use), possibly loop-carried.
    Flow,
    /// Memory read-after-write.
    MemFlow,
    /// Memory write-after-read.
    MemAnti,
    /// Memory write-after-write.
    MemOutput,
    /// Implicit post-increment self-recurrence of a strided memory op: the
    /// next iteration's address is available one cycle after this access
    /// issues. These edges are *not* load-data edges, so criticality
    /// analysis never raises their latency.
    AddrInc,
}

/// A dependence edge with a scheduling latency and a loop-carried distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Producer instruction.
    pub from: InstId,
    /// Consumer instruction.
    pub to: InstId,
    /// Edge kind.
    pub kind: DepKind,
    /// Scheduling latency in cycles: the consumer may start `latency`
    /// cycles after the producer (modulo `omega` iterations).
    pub latency: u32,
    /// Iteration distance.
    pub omega: u32,
}

/// Closure assigning each load its *scheduling* latency (base, or the
/// boosted hint-derived value for non-critical loads).
pub type LoadLatencyFn<'a> = dyn Fn(InstId) -> u32 + 'a;

/// The cyclic data-dependence graph of one loop.
#[derive(Debug, Clone)]
pub struct Ddg {
    n: usize,
    edges: Vec<DepEdge>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    is_load: Vec<bool>,
}

impl Ddg {
    /// Builds the dependence graph for `lp`.
    ///
    /// `load_latency` supplies the scheduling latency of each load's data
    /// result (the pipeliner passes base latencies first, then hint-boosted
    /// values for non-critical loads). All other latencies come from the
    /// machine model.
    ///
    /// Edges:
    /// - register flow `def → use` with the producer's latency and the
    ///   operand's `omega`;
    /// - explicit memory dependences from [`LoopIr::mem_deps`] (flow: 1
    ///   cycle, anti: 0, output: 1);
    /// - a `(latency 1, omega 1)` post-increment self-edge on every strided
    ///   (affine or symbolic-stride) memory access.
    ///
    /// # Example
    ///
    /// ```
    /// use ltsp_ddg::Ddg;
    /// use ltsp_ir::{DataClass, LoopBuilder};
    /// use ltsp_machine::MachineModel;
    ///
    /// // An FP reduction: acc = acc[-1] + a[i].
    /// let mut b = LoopBuilder::new("red");
    /// let a = b.affine_ref("a[i]", DataClass::Fp, 0, 8, 8);
    /// let v = b.load(a);
    /// let _acc = b.fadd_reduce(v);
    /// let lp = b.build()?;
    ///
    /// let m = MachineModel::itanium2();
    /// let ddg = Ddg::build(&lp, &m, &|_| 6); // FP loads: base latency 6
    /// // The fadd self-recurrence (latency 4, omega 1) bounds the II.
    /// assert_eq!(ddg.rec_mii(), 4);
    /// # Ok::<(), ltsp_ir::IrError>(())
    /// ```
    pub fn build(lp: &LoopIr, machine: &MachineModel, load_latency: &LoadLatencyFn) -> Ddg {
        let n = lp.insts().len();
        let mut edges = Vec::new();
        let is_load: Vec<bool> = lp.insts().iter().map(|i| i.op().is_load()).collect();

        // Register flow edges (qualifying predicates included).
        for inst in lp.insts() {
            for s in inst.reads() {
                if let Some(def) = lp.def_of(s.reg) {
                    let producer = lp.inst(def);
                    let lat = if producer.op().is_load() {
                        load_latency(def)
                    } else {
                        machine.latencies().op_latency(producer.op())
                    };
                    edges.push(DepEdge {
                        from: def,
                        to: inst.id(),
                        kind: DepKind::Flow,
                        latency: lat,
                        omega: s.omega,
                    });
                }
            }
        }

        // Explicit memory dependences.
        for d in lp.mem_deps() {
            let (kind, lat) = match d.kind {
                MemDepKind::Flow => (DepKind::MemFlow, 1),
                MemDepKind::Anti => (DepKind::MemAnti, 0),
                MemDepKind::Output => (DepKind::MemOutput, 1),
            };
            edges.push(DepEdge {
                from: d.from,
                to: d.to,
                kind,
                latency: lat,
                omega: d.omega,
            });
        }

        // Post-increment self-recurrences on strided memory ops.
        for inst in lp.insts() {
            if let Some(m) = inst.mem() {
                let strided = matches!(
                    lp.memref(m).pattern(),
                    AccessPattern::Affine { .. } | AccessPattern::SymbolicStride { .. }
                );
                if strided {
                    edges.push(DepEdge {
                        from: inst.id(),
                        to: inst.id(),
                        kind: DepKind::AddrInc,
                        latency: 1,
                        omega: 1,
                    });
                }
            }
        }

        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for (idx, e) in edges.iter().enumerate() {
            succ[e.from.index()].push(idx);
            pred[e.to.index()].push(idx);
        }
        Ddg {
            n,
            edges,
            succ,
            pred,
            is_load,
        }
    }

    /// Builds the graph with every load at its base (L1) scheduling
    /// latency, floored at `floor` cycles.
    ///
    /// This is the canonical base-latency graph: the pipeliner's
    /// base-latency phase uses `floor = 0`, and tests/oracles that want a
    /// uniform boost pass the boosted latency as the floor. Having one
    /// constructor keeps every consumer — production scheduling, the
    /// schedule validator and the differential harness — on the same
    /// dependence edges.
    pub fn build_with_load_floor(lp: &LoopIr, machine: &MachineModel, floor: u32) -> Ddg {
        Ddg::build(lp, machine, &|id| {
            if let ltsp_ir::Opcode::Load(dc) = lp.inst(id).op() {
                machine
                    .load_latency(dc, ltsp_machine::LatencyQuery::Base)
                    .max(floor)
            } else {
                0
            }
        })
    }

    /// Builds a graph directly from raw edges, bypassing IR construction.
    ///
    /// For differential and property tests that need arbitrary dependence
    /// shapes (random latencies, omegas, cycles) without inventing a loop
    /// body that produces them. Not used by the production pipeline.
    #[doc(hidden)]
    pub fn synthetic(n: usize, edges: Vec<DepEdge>) -> Ddg {
        assert!(
            edges.iter().all(|e| e.from.index() < n && e.to.index() < n),
            "edge endpoints must be < n"
        );
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for (idx, e) in edges.iter().enumerate() {
            succ[e.from.index()].push(idx);
            pred[e.to.index()].push(idx);
        }
        Ddg {
            n,
            edges,
            succ,
            pred,
            is_load: vec![false; n],
        }
    }

    /// Number of instructions (nodes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Outgoing edges of a node.
    pub fn succs(&self, id: InstId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.succ[id.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Incoming edges of a node.
    pub fn preds(&self, id: InstId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.pred[id.index()].iter().map(move |&i| &self.edges[i])
    }

    /// True if the node is a load.
    pub fn is_load(&self, id: InstId) -> bool {
        self.is_load[id.index()]
    }

    /// Raw outgoing edge indices (internal; used by cycle enumeration).
    pub(crate) fn succ_raw(&self, node: usize) -> &[usize] {
        &self.succ[node]
    }

    /// Drops every edge for which `keep` returns `false` and rebuilds the
    /// adjacency indexes. Used by data speculation, which removes
    /// memory-flow edges on constraining recurrence cycles (the load is
    /// issued as an advanced load with a check).
    pub fn retain_edges(&mut self, keep: impl Fn(&DepEdge) -> bool) {
        self.edges.retain(|e| keep(e));
        for v in &mut self.succ {
            v.clear();
        }
        for v in &mut self.pred {
            v.clear();
        }
        for (idx, e) in self.edges.iter().enumerate() {
            self.succ[e.from.index()].push(idx);
            self.pred[e.to.index()].push(idx);
        }
    }

    /// Is there a schedule with initiation interval `ii`? Holds iff the
    /// graph has no cycle with positive weight under `latency − ii·omega`.
    pub fn feasible_ii(&self, ii: u32) -> bool {
        // Longest-path Bellman-Ford from a virtual super-source that
        // reaches every node with distance 0; a positive cycle keeps
        // relaxing past |V| rounds.
        let n = self.n;
        if n == 0 {
            return true;
        }
        let mut dist = vec![0i64; n];
        for round in 0..=n {
            let mut changed = false;
            for e in &self.edges {
                let w = i64::from(e.latency) - i64::from(ii) * i64::from(e.omega);
                let cand = dist[e.from.index()] + w;
                if cand > dist[e.to.index()] {
                    dist[e.to.index()] = cand;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
            if round == n {
                return false;
            }
        }
        true
    }

    /// The Recurrence II: the smallest II for which no recurrence cycle is
    /// violated (Sec. 1.1). Always at least 1.
    pub fn rec_mii(&self) -> u32 {
        let mut hi: u32 = 1 + self.edges.iter().map(|e| e.latency).sum::<u32>();
        if self.feasible_ii(1) {
            return 1;
        }
        let mut lo = 1u32; // infeasible
        debug_assert!(self.feasible_ii(hi));
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.feasible_ii(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Strongly connected components with more than one node or a
    /// self-loop — i.e. the subgraphs that can contain recurrence cycles.
    /// Returned as sorted node lists.
    pub fn recurrence_sccs(&self) -> Vec<Vec<InstId>> {
        let sccs = self.tarjan();
        sccs.into_iter()
            .filter(|scc| scc.len() > 1 || self.succs(scc[0]).any(|e| e.to == scc[0]))
            .collect()
    }

    fn tarjan(&self) -> Vec<Vec<InstId>> {
        // Iterative Tarjan SCC.
        let n = self.n;
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut result: Vec<Vec<InstId>> = Vec::new();
        let mut call: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            call.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut ei)) = call.last_mut() {
                if *ei < self.succ[v].len() {
                    let edge = &self.edges[self.succ[v][*ei]];
                    *ei += 1;
                    let w = edge.to.index();
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc stack underflow");
                            on_stack[w] = false;
                            scc.push(InstId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        scc.sort();
                        result.push(scc);
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{DataClass, LoopBuilder};
    use ltsp_machine::{LatencyQuery, MachineModel};

    fn base_lat(lp: &LoopIr, m: &MachineModel) -> impl Fn(InstId) -> u32 {
        let lats: Vec<u32> = lp
            .insts()
            .iter()
            .map(|i| match i.op() {
                ltsp_ir::Opcode::Load(dc) => m.load_latency(dc, LatencyQuery::Base),
                _ => 0,
            })
            .collect();
        move |id: InstId| lats[id.index()]
    }

    #[test]
    fn running_example_rec_mii_is_one() {
        // ld/add/st with only post-increment recurrences: RecMII = 1.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("ex");
        let s = b.affine_ref("s", DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("d", DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        let lp = b.build().unwrap();
        let f = base_lat(&lp, &m);
        let ddg = Ddg::build(&lp, &m, &f);
        assert_eq!(ddg.rec_mii(), 1);
        // Three flow-ish chains: ld->add, add->st, plus 2 addr-inc edges.
        assert_eq!(
            ddg.edges()
                .iter()
                .filter(|e| e.kind == DepKind::AddrInc)
                .count(),
            2
        );
    }

    #[test]
    fn fp_reduction_rec_mii_is_fp_latency() {
        // acc = acc[-1] + v: cycle of one fadd (latency 4), omega 1.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("red");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _acc = b.fadd_reduce(v);
        let lp = b.build().unwrap();
        let f = base_lat(&lp, &m);
        let ddg = Ddg::build(&lp, &m, &f);
        assert_eq!(ddg.rec_mii(), 4);
    }

    #[test]
    fn pointer_chase_rec_mii_is_load_latency() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("chase");
        let node = b.chase_ref("n", 0, 64, 1 << 22, 0.0);
        let _v = b.load(node);
        let lp = b.build().unwrap();
        // With base latency 1 the chase recurrence gives RecMII 1; with a
        // boosted latency 21 it gives 21.
        let ddg1 = Ddg::build(&lp, &m, &|_| 1);
        assert_eq!(ddg1.rec_mii(), 1);
        let ddg21 = Ddg::build(&lp, &m, &|_| 21);
        assert_eq!(ddg21.rec_mii(), 21);
    }

    #[test]
    fn feasibility_is_monotone() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("red");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _acc = b.fma_reduce(v, v);
        let lp = b.build().unwrap();
        let f = base_lat(&lp, &m);
        let ddg = Ddg::build(&lp, &m, &f);
        let rm = ddg.rec_mii();
        for ii in 1..rm {
            assert!(!ddg.feasible_ii(ii), "ii={ii} below RecMII must fail");
        }
        for ii in rm..rm + 4 {
            assert!(ddg.feasible_ii(ii), "ii={ii} at/above RecMII must pass");
        }
    }

    #[test]
    fn sccs_identify_recurrences() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("mix");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x); // self AddrInc scc
        let acc = b.fadd_reduce(v); // self flow scc
        let _ = acc;
        let lp = b.build().unwrap();
        let f = base_lat(&lp, &m);
        let ddg = Ddg::build(&lp, &m, &f);
        let sccs = ddg.recurrence_sccs();
        assert_eq!(sccs.len(), 2);
    }

    #[test]
    fn carried_distance_two_halves_pressure() {
        // acc = acc[-2] + v: the recurrence spans 2 iterations, so
        // RecMII = ceil(4/2) = 2.
        use ltsp_ir::{Inst, Opcode, RegClass, SrcOperand, VReg};
        let m = MachineModel::itanium2();
        let acc = VReg::new(RegClass::Fr, 0);
        let i0 = Inst::new(
            InstId(0),
            Opcode::Fadd,
            Some(acc),
            vec![SrcOperand::carried(acc, 2)],
            None,
        );
        let lp = LoopIr::new("r2", vec![i0], vec![], vec![], vec![]).unwrap();
        let ddg = Ddg::build(&lp, &m, &|_| 0);
        assert_eq!(ddg.rec_mii(), 2);
    }
}
