//! Property-based tests of the dependence-graph analyses.

use proptest::prelude::*;

use ltsp_ddg::{Ddg, MinDist};
use ltsp_ir::{InstId, Opcode};
use ltsp_machine::{LatencyQuery, MachineModel};
use ltsp_workloads::random_loop;

fn base_ddg(lp: &ltsp_ir::LoopIr, m: &MachineModel) -> Ddg {
    Ddg::build(lp, m, &|id| match lp.inst(id).op() {
        Opcode::Load(dc) => m.load_latency(dc, LatencyQuery::Base),
        _ => 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RecMII is exactly the smallest feasible II: feasible at RecMII,
    /// infeasible one below.
    #[test]
    fn rec_mii_is_minimal(seed in 0u64..20_000) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let ddg = base_ddg(&lp, &m);
        let rm = ddg.rec_mii();
        prop_assert!(ddg.feasible_ii(rm));
        if rm > 1 {
            prop_assert!(!ddg.feasible_ii(rm - 1));
        }
        // Monotone: everything above RecMII is feasible.
        for ii in rm..rm + 3 {
            prop_assert!(ddg.feasible_ii(ii));
        }
    }

    /// MinDist agrees with Bellman-Ford feasibility: a positive self-cycle
    /// exists exactly when the II is infeasible.
    #[test]
    fn mindist_agrees_with_feasibility(seed in 0u64..20_000, ii in 1u32..12) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let ddg = base_ddg(&lp, &m);
        let md = MinDist::compute(&ddg, ii);
        prop_assert_eq!(md.has_positive_self_cycle(), !ddg.feasible_ii(ii));
    }

    /// MinDist satisfies the triangle property on single edges: for every
    /// edge, dist(from, to) is at least the edge's own weight.
    #[test]
    fn mindist_dominates_single_edges(seed in 0u64..20_000) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let ddg = base_ddg(&lp, &m);
        let ii = ddg.rec_mii();
        let md = MinDist::compute(&ddg, ii);
        for e in ddg.edges() {
            if e.from == e.to {
                continue;
            }
            let w = i64::from(e.latency) - i64::from(ii) * i64::from(e.omega);
            let d = md.get(e.from, e.to).expect("edge implies a path");
            prop_assert!(d >= w, "dist {} below edge weight {}", d, w);
        }
    }

    /// Raising load latencies never lowers RecMII (monotonicity used by
    /// the criticality analysis).
    #[test]
    fn rec_mii_monotone_in_load_latency(seed in 0u64..20_000, boost in 1u32..30) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let base = base_ddg(&lp, &m);
        let boosted = Ddg::build(&lp, &m, &|id| match lp.inst(id).op() {
            Opcode::Load(dc) => m.load_latency(dc, LatencyQuery::Base).max(boost),
            _ => 0,
        });
        prop_assert!(boosted.rec_mii() >= base.rec_mii());
    }

    /// Every enumerated recurrence cycle is a genuine cycle: its edges
    /// chain correctly, it returns to its start, and its omega sum is
    /// positive (the IR validator forbids zero-omega cycles).
    #[test]
    fn cycles_are_well_formed(seed in 0u64..20_000) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let ddg = base_ddg(&lp, &m);
        for cycle in ddg.recurrence_cycles(500) {
            prop_assert!(!cycle.edges.is_empty());
            let n = cycle.edges.len();
            for (i, &ei) in cycle.edges.iter().enumerate() {
                let e = ddg.edges()[ei];
                prop_assert_eq!(e.from, cycle.nodes[i]);
                let next = cycle.nodes[(i + 1) % n];
                prop_assert_eq!(e.to, next);
            }
            let summary = ddg.cycle_summary(&cycle, &|_| None);
            prop_assert!(summary.omega >= 1, "recurrence cycles carry omega");
            // The cycle's implied II never exceeds RecMII... (it bounds it
            // from below): implied_ii <= rec_mii.
            prop_assert!(summary.implied_ii <= ddg.rec_mii());
        }
    }

    /// `cycle_loads` only reports loads, and every reported load is a node
    /// on the cycle.
    #[test]
    fn cycle_loads_are_loads_on_the_cycle(seed in 0u64..20_000) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let ddg = base_ddg(&lp, &m);
        for cycle in ddg.recurrence_cycles(500) {
            let nodes: std::collections::HashSet<InstId> =
                cycle.nodes.iter().copied().collect();
            for l in ddg.cycle_loads(&cycle) {
                prop_assert!(lp.inst(l).op().is_load());
                prop_assert!(nodes.contains(&l));
            }
        }
    }
}
