//! Micro-benchmarks of the compiler passes and the simulator substrate.

use std::hint::black_box;

use ltsp_bench::Bench;
use ltsp_core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp_ddg::{Ddg, MinDist};
use ltsp_ir::{DataClass, Opcode};
use ltsp_machine::{LatencyQuery, MachineModel};
use ltsp_memsim::{Executor, ExecutorConfig, MemorySystem, StreamMode};
use ltsp_pipeliner::ModuloScheduler;
use ltsp_workloads::{mcf_refresh, saxpy, stencil3};

fn ddg_passes(b: &Bench, m: &MachineModel) {
    let lp = mcf_refresh("mcf", 1 << 25);
    b.bench("ddg/build_mcf", || {
        let ddg = Ddg::build(black_box(&lp), m, &|id| {
            if let Opcode::Load(dc) = lp.inst(id).op() {
                m.load_latency(dc, LatencyQuery::Base)
            } else {
                0
            }
        });
        black_box(ddg.len())
    });
    let ddg = Ddg::build(&lp, m, &|_| 1);
    b.bench("ddg/rec_mii_mcf", || black_box(ddg.rec_mii()));
    b.bench("ddg/mindist_mcf", || {
        black_box(MinDist::compute(&ddg, 4).ii())
    });
    b.bench("ddg/cycles_mcf", || {
        black_box(ddg.recurrence_cycles(10_000).len())
    });
}

fn scheduling(b: &Bench, m: &MachineModel) {
    for (name, lp) in [
        ("saxpy", saxpy("saxpy")),
        ("stencil3", stencil3("stencil3")),
        ("mcf", mcf_refresh("mcf", 1 << 25)),
    ] {
        let ddg = Ddg::build(&lp, m, &|id| {
            if let Opcode::Load(dc) = lp.inst(id).op() {
                m.load_latency(dc, LatencyQuery::Base)
            } else {
                0
            }
        });
        let min_ii = m.res_mii(&lp).max(ddg.rec_mii());
        b.bench(&format!("pipeliner/modulo_schedule_{name}"), || {
            let s = ModuloScheduler::new(&lp, m, &ddg)
                .schedule_at(min_ii, 8)
                .expect("schedulable");
            black_box(s.stage_count())
        });
        let cfg = CompileConfig::new(LatencyPolicy::HloHints);
        b.bench(&format!("pipeliner/full_compile_{name}"), || {
            black_box(compile_loop_with_profile(&lp, m, &cfg, 500.0).kernel.ii())
        });
    }
}

fn simulator(b: &Bench, m: &MachineModel) {
    {
        let mut sys = MemorySystem::new(*m.caches());
        sys.demand_access(0x1000, DataClass::Int, 0, false);
        let mut t = 1000u64;
        b.bench("memsim/cache_demand_hit", move || {
            t += 10;
            black_box(sys.demand_access(0x1000, DataClass::Int, t, false).latency)
        });
    }
    let lp = saxpy("saxpy");
    let cfg = CompileConfig::new(LatencyPolicy::HloHints);
    let compiled = compile_loop_with_profile(&lp, m, &cfg, 1000.0);
    b.bench("memsim/run_entry_1000_iters", || {
        let mut ex = Executor::new(
            &compiled.lp,
            &compiled.kernel,
            m,
            compiled.regs_total,
            ExecutorConfig {
                stream_mode: StreamMode::Progressive,
                ..ExecutorConfig::default()
            },
        );
        ex.run_entry(1000);
        black_box(ex.counters().total)
    });
}

fn main() {
    let b = Bench::new();
    let m = MachineModel::itanium2();
    ddg_passes(&b, &m);
    scheduling(&b, &m);
    simulator(&b, &m);
}
