//! One Criterion target per paper artifact: each bench regenerates a
//! scaled-down version of the corresponding table/figure, so `cargo bench`
//! exercises every experiment end to end and tracks its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ltsp_bench::{
    compile_time, fig10, fig5, fig7, fig8, fig9, mcf_case_study, no_prefetch_headroom, regstats,
};
use ltsp_machine::MachineModel;

const SCALE: f64 = 0.02;

fn figures(c: &mut Criterion) {
    let m = MachineModel::itanium2();
    c.bench_function("experiments/fig5_theory_and_validation", |b| {
        b.iter(|| black_box(fig5().simulated_reduction))
    });
    c.bench_function("experiments/fig7_headroom_thresholds", |b| {
        b.iter(|| {
            let (f06, f00) = fig7(&m, SCALE);
            black_box((f06.geomean(3), f00.geomean(3)))
        })
    });
    c.bench_function("experiments/fig8_fp_l2_vs_hlo", |b| {
        b.iter(|| {
            let (f06, f00) = fig8(&m, SCALE);
            black_box((f06.geomean(1), f00.geomean(1)))
        })
    });
    c.bench_function("experiments/fig9_no_pgo", |b| {
        b.iter(|| black_box(fig9(&m, SCALE).geomean(1)))
    });
    c.bench_function("experiments/fig10_cycle_accounting", |b| {
        b.iter(|| black_box(fig10(&m, SCALE).exe_bubble_delta()))
    });
}

fn case_studies(c: &mut Criterion) {
    let m = MachineModel::itanium2();
    c.bench_function("experiments/sec44_mcf_case_study", |b| {
        b.iter(|| black_box(mcf_case_study(&m, 60).loop_speedup))
    });
    c.bench_function("experiments/sec45_register_stats", |b| {
        b.iter(|| black_box(regstats(&m, SCALE).growth()))
    });
    c.bench_function("experiments/sec33_compile_time", |b| {
        b.iter(|| black_box(compile_time(&m, SCALE).growth()))
    });
    c.bench_function("experiments/sec42_no_prefetch_headroom", |b| {
        b.iter(|| black_box(no_prefetch_headroom(&m, SCALE).rows.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = figures, case_studies
}
criterion_main!(benches);
