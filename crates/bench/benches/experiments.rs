//! One bench per paper artifact: each entry regenerates a scaled-down
//! version of the corresponding table/figure, so `cargo bench` exercises
//! every experiment end to end and tracks its cost.

use std::hint::black_box;

use ltsp_bench::{
    compile_time, fig10, fig5, fig7, fig8, fig9, mcf_case_study, no_prefetch_headroom, regstats,
    Bench,
};
use ltsp_machine::MachineModel;

const SCALE: f64 = 0.02;

fn figures(b: &Bench, m: &MachineModel) {
    b.bench("experiments/fig5_theory_and_validation", || {
        black_box(fig5().simulated_reduction)
    });
    b.bench("experiments/fig7_headroom_thresholds", || {
        let (f06, f00) = fig7(m, SCALE);
        black_box((f06.geomean(3), f00.geomean(3)))
    });
    b.bench("experiments/fig8_fp_l2_vs_hlo", || {
        let (f06, f00) = fig8(m, SCALE);
        black_box((f06.geomean(1), f00.geomean(1)))
    });
    b.bench("experiments/fig9_no_pgo", || {
        black_box(fig9(m, SCALE).geomean(1))
    });
    b.bench("experiments/fig10_cycle_accounting", || {
        black_box(fig10(m, SCALE).exe_bubble_delta())
    });
}

fn case_studies(b: &Bench, m: &MachineModel) {
    b.bench("experiments/sec44_mcf_case_study", || {
        black_box(mcf_case_study(m, 60).loop_speedup)
    });
    b.bench("experiments/sec45_register_stats", || {
        black_box(regstats(m, SCALE).growth())
    });
    b.bench("experiments/sec33_compile_time", || {
        black_box(compile_time(m, SCALE).growth())
    });
    b.bench("experiments/sec42_no_prefetch_headroom", || {
        black_box(no_prefetch_headroom(m, SCALE).rows.len())
    });
}

fn main() {
    let b = Bench::new();
    let m = MachineModel::itanium2();
    figures(&b, &m);
    case_studies(&b, &m);
}
