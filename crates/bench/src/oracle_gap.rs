//! E-oracle: the heuristic pipeliner's II measured against the exact
//! oracle's proven minimum over the committed kernel library.
//!
//! For each kernel, the loop is pipelined at base latencies, the accepted
//! schedule is certified by the independent validator, and the exact-II
//! oracle proves (or bounds) the minimal feasible II. The table reports
//! the optimality gap — the quantity the paper's heuristic trades for
//! compile time ("the scheduler typically finds a schedule at or very
//! near the Min II").

use ltsp_machine::MachineModel;
use ltsp_oracle::{differential_case, CaseReport, IiVerdict, OracleOptions};
use ltsp_telemetry::Telemetry;
use ltsp_workloads::kernel_library;

/// The oracle-gap experiment over the kernel library.
#[derive(Debug, Clone)]
pub struct OracleGapResult {
    /// One differential report per kernel, in library order.
    pub rows: Vec<CaseReport>,
}

impl OracleGapResult {
    /// Kernels with an exact (proved-minimal-II) verdict.
    pub fn exact_count(&self) -> usize {
        self.rows.iter().filter(|r| r.gap().is_some()).count()
    }

    /// Kernels whose heuristic II is proven optimal.
    pub fn optimal_count(&self) -> usize {
        self.rows.iter().filter(|r| r.gap() == Some(0)).count()
    }

    /// Largest proven gap across the library.
    pub fn max_gap(&self) -> u32 {
        self.rows
            .iter()
            .filter_map(CaseReport::gap)
            .max()
            .unwrap_or(0)
    }

    /// Kernels whose schedule the validator rejected (must be none).
    pub fn rejected(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| !r.violations.is_empty())
            .count()
    }

    /// Renders the experiment table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "E-oracle — heuristic II vs proven-minimal II (exact oracle, kernel library)"
        );
        let _ = writeln!(
            s,
            "{:<24} {:>5} {:>8} {:>9} {:>16} {:>4}  schedule",
            "kernel", "insts", "heur II", "oracle II", "verdict", "gap"
        );
        for r in &self.rows {
            let (oracle_ii, verdict, gap) = match &r.verdict {
                IiVerdict::Exact { optimal_ii, .. } => (
                    optimal_ii.to_string(),
                    "exact",
                    format!("{}", r.heuristic_ii - optimal_ii),
                ),
                IiVerdict::BoundedUnknown { proven_lower, .. } => (
                    format!(">={proven_lower}"),
                    "bounded-unknown",
                    "?".to_string(),
                ),
            };
            let status = if !r.violations.is_empty() {
                "REJECTED"
            } else if r.pipelined {
                "certified"
            } else {
                "acyclic (certified)"
            };
            let _ = writeln!(
                s,
                "{:<24} {:>5} {:>8} {:>9} {:>16} {:>4}  {}",
                r.name, r.insts, r.heuristic_ii, oracle_ii, verdict, gap, status
            );
        }
        let _ = writeln!(
            s,
            "exact verdicts: {}/{}   proven optimal: {}   max gap: {}   validator rejections: {}",
            self.exact_count(),
            self.rows.len(),
            self.optimal_count(),
            self.max_gap(),
            self.rejected()
        );
        s
    }
}

/// Runs the differential harness over every kernel in the library on
/// `jobs` worker threads; rows (and their telemetry) come back in library
/// order whatever the worker count.
pub fn oracle_gap(machine: &MachineModel, tel: &Telemetry, jobs: usize) -> OracleGapResult {
    let opts = OracleOptions::default();
    let kernels = kernel_library();
    let rows =
        ltsp_par::Pool::new(jobs).map_traced(tel, "oracle-gap", &kernels, |tel, _idx, (_, lp)| {
            differential_case(lp, machine, &opts, tel)
        });
    OracleGapResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_certifies_and_mostly_resolves() {
        let m = MachineModel::itanium2();
        let r = oracle_gap(&m, &Telemetry::disabled(), 2);
        assert_eq!(r.rows.len(), 17);
        assert_eq!(r.rejected(), 0, "{}", r.render());
        assert!(r.exact_count() >= 12, "{}", r.render());
    }
}
