//! Extension experiments beyond the paper's evaluation: the two outlook
//! directions of Sec. 6 (trip-count versioning, dynamic cache-miss
//! sampling) and two ablations of claims made in the text (OzQ capacity,
//! boost magnitude).

use ltsp_core::{
    benchmark_gain, compile_loop_with_profile, run_suite, run_suite_sampled, run_suite_versioned,
    CompileConfig, LatencyPolicy, RunConfig,
};
use ltsp_ir::DataClass;
use ltsp_machine::{CacheGeometry, MachineModel};
use ltsp_memsim::{Executor, ExecutorConfig, StreamMode};
use ltsp_workloads::{cpu2000, cpu2006, gather_update, mcf_refresh, stream_sum};

use crate::experiments::GainExperiment;

/// Trip-count versioning (Sec. 6 outlook): every loop keeps a baseline and
/// a boosted kernel and dispatches per entry on the *actual* trip count.
/// Compared against the static headroom arms with and without a threshold.
pub fn versioning_experiment(machine: &MachineModel, scale: f64) -> GainExperiment {
    // Both suites: CPU2000 contains 177.mesa, whose training profile
    // (trip 154) contradicts its reference behaviour (trip 8) — the case
    // static thresholds cannot fix but run-time dispatch can.
    let mut benchs = cpu2006();
    benchs.extend(cpu2000());
    let base_rc =
        RunConfig::new(CompileConfig::new(LatencyPolicy::Baseline)).with_entry_scale(scale);
    let base = run_suite(&benchs, machine, &base_rc);

    let static_n0 = run_suite(
        &benchs,
        machine,
        &RunConfig::new(CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(0))
            .with_entry_scale(scale),
    );
    let static_n32 = run_suite(
        &benchs,
        machine,
        &RunConfig::new(CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(32))
            .with_entry_scale(scale),
    );
    let versioned = run_suite_versioned(
        &benchs,
        machine,
        &RunConfig::new(CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(32))
            .with_entry_scale(scale),
    );

    let rows = benchs
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.name.to_string(),
                vec![
                    benchmark_gain(b, &base.runs[i], &static_n0.runs[i]),
                    benchmark_gain(b, &base.runs[i], &static_n32.runs[i]),
                    benchmark_gain(b, &base.runs[i], &versioned.runs[i]),
                ],
            )
        })
        .collect();
    GainExperiment {
        title: "Extension — trip-count versioning (both suites, headroom policy)".to_string(),
        arms: vec![
            "static n=0".to_string(),
            "static n=32".to_string(),
            "versioned".to_string(),
        ],
        rows,
    }
}

/// Dynamic cache-miss sampling (Sec. 6 outlook): per-reference hint
/// assignment from measured latencies, compared against HLO hints — both
/// without PGO, where static information is weakest.
pub fn miss_sampling_experiment(machine: &MachineModel, scale: f64) -> GainExperiment {
    let benchs = cpu2006();
    let base_rc = RunConfig::new(CompileConfig::new(LatencyPolicy::Baseline).with_pgo(false))
        .with_entry_scale(scale);
    let base = run_suite(&benchs, machine, &base_rc);

    let hlo = run_suite(
        &benchs,
        machine,
        &RunConfig::new(CompileConfig::new(LatencyPolicy::HloHints).with_pgo(false))
            .with_entry_scale(scale),
    );
    let sampled = run_suite_sampled(
        &benchs,
        machine,
        &RunConfig::new(CompileConfig::new(LatencyPolicy::MissSampled).with_pgo(false))
            .with_entry_scale(scale),
        20,
    );

    let rows = benchs
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.name.to_string(),
                vec![
                    benchmark_gain(b, &base.runs[i], &hlo.runs[i]),
                    benchmark_gain(b, &base.runs[i], &sampled.runs[i]),
                ],
            )
        })
        .collect();
    GainExperiment {
        title: "Extension — dynamic cache-miss sampling (CPU2006, no PGO)".to_string(),
        arms: vec!["HLO-hints".to_string(), "miss-sampled".to_string()],
        rows,
    }
}

/// The balanced-recurrence extension (the paper's Sec. 5 closing remark:
/// "balancing latency increases between different loads on a recurrence
/// cycle is a possible future extension of our work"): on the Sec. 4.4
/// mcf loop, the chase load on the recurrence receives the cycle's slack
/// against the Min II as a partial boost instead of staying at base.
#[derive(Debug, Clone)]
pub struct BalancedResult {
    /// Scheduled latency of the chase load without / with balancing.
    pub chase_latency: (u32, u32),
    /// Loop speedup of HLO hints over baseline, without balancing.
    pub gain_plain: f64,
    /// Loop speedup with the balanced-recurrence extension on top.
    pub gain_balanced: f64,
}

impl BalancedResult {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "Extension — balanced recurrence loads (429.mcf refresh_potential)\n\
             chase scheduled latency: {} -> {} cycles (cycle slack granted)\n\
             loop gain over baseline: {:+.2}% plain, {:+.2}% balanced\n",
            self.chase_latency.0, self.chase_latency.1, self.gain_plain, self.gain_balanced
        )
    }
}

/// Runs the balanced-recurrence comparison on the Sec. 4.4 loop.
pub fn balanced_recurrence_experiment(machine: &MachineModel, entries: u32) -> BalancedResult {
    use ltsp_ir::{InstId, SplitMix64};
    use ltsp_workloads::TripDistribution;

    let lp = mcf_refresh("refresh_potential", 48 << 20);
    let trips = TripDistribution::Mixture(vec![(0.75, 2), (0.25, 3)]);

    let base_cfg = CompileConfig::new(LatencyPolicy::Baseline);
    let plain_cfg = CompileConfig::new(LatencyPolicy::HloHints);
    let bal_cfg = CompileConfig::new(LatencyPolicy::HloHints).with_balanced_recurrences(true);

    let base = compile_loop_with_profile(&lp, machine, &base_cfg, trips.mean());
    let plain = compile_loop_with_profile(&lp, machine, &plain_cfg, trips.mean());
    let bal = compile_loop_with_profile(&lp, machine, &bal_cfg, trips.mean());

    let chase = InstId(0);
    let run = |c: &ltsp_core::CompiledLoop| {
        let mut ex = Executor::new(
            &c.lp,
            &c.kernel,
            machine,
            c.regs_total,
            ExecutorConfig {
                stream_mode: StreamMode::Progressive,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = SplitMix64::new(0xBA1A);
        for _ in 0..entries {
            ex.run_entry(trips.sample(&mut rng));
        }
        ex.counters().total
    };
    let tb = run(&base);
    let tp = run(&plain);
    let tl = run(&bal);
    BalancedResult {
        chase_latency: (
            plain.scheduled_load_latency_of(machine, chase).unwrap_or(1),
            bal.scheduled_load_latency_of(machine, chase).unwrap_or(1),
        ),
        gain_plain: 100.0 * (tb as f64 / tp.max(1) as f64 - 1.0),
        gain_balanced: 100.0 * (tb as f64 / tl.max(1) as f64 - 1.0),
    }
}

/// One `(x, y)` series from an ablation sweep.
#[derive(Debug, Clone)]
pub struct AblationSeries {
    /// Series title.
    pub title: String,
    /// `(parameter value, measured y)` points.
    pub points: Vec<(u32, f64)>,
    /// Unit suffix for the y values ("%" for gains, "insts" for sizes).
    pub unit: &'static str,
}

impl AblationSeries {
    /// Renders the series.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.title);
        for (x, g) in &self.points {
            if self.unit == "%" {
                let _ = writeln!(s, "  {x:>6}: {g:+8.2}%");
            } else {
                let _ = writeln!(s, "  {x:>6}: {g:>8.0} {}", self.unit);
            }
        }
        s
    }
}

fn loop_gain(machine: &MachineModel, lp: &ltsp_ir::LoopIr, trip: u64, entries: u32) -> f64 {
    let run = |cfg: &CompileConfig| {
        let c = compile_loop_with_profile(lp, machine, cfg, trip as f64);
        let mut ex = Executor::new(
            &c.lp,
            &c.kernel,
            machine,
            c.regs_total,
            ExecutorConfig {
                stream_mode: StreamMode::Progressive,
                ..ExecutorConfig::default()
            },
        );
        for _ in 0..entries {
            ex.run_entry(trip);
        }
        ex.counters().total
    };
    let tb = run(&CompileConfig::new(LatencyPolicy::Baseline));
    let tx = run(&CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(0));
    100.0 * (tb as f64 / tx.max(1) as f64 - 1.0)
}

/// OzQ-capacity ablation: the paper's Sec. 4.5 observation — "the benefit
/// could be much higher if the queuing capacities in the cache hierarchy
/// were increased" — tested by sweeping the OzQ size on a delinquent
/// gather loop.
pub fn ozq_capacity_ablation(base_machine: &MachineModel) -> AblationSeries {
    let lp = gather_update("ozq-ablation", DataClass::Int, 64 << 20);
    let points = [8u32, 16, 32, 48, 96, 192]
        .into_iter()
        .map(|cap| {
            let mut caches: CacheGeometry = *base_machine.caches();
            caches.ozq_capacity = cap;
            let machine = MachineModel::new(
                *base_machine.issue(),
                *base_machine.latencies(),
                caches,
                *base_machine.registers(),
            );
            (cap, loop_gain(&machine, &lp, 600, 4))
        })
        .collect();
    AblationSeries {
        title: "Ablation — boosted-loop gain vs OzQ capacity (Sec. 4.5 claim)".to_string(),
        points,
        unit: "%",
    }
}

/// Issue-width ablation. Two opposing effects meet here: Eq. 3 gives a
/// narrower machine (higher II) a *smaller* clustering factor for the
/// same boost — but its baseline is also far more stall-dominated, so the
/// *relative* gain from boosting is larger. The ablation reports both:
/// the measured gain and the clustering factor `k = d/II + 1` of the
/// boosted kernel.
pub fn issue_width_ablation() -> (AblationSeries, AblationSeries) {
    use ltsp_core::theory::clustering_factor;
    let lp = gather_update("width-ablation", DataClass::Int, 64 << 20);
    let machines = [
        (1u32, MachineModel::narrow()),
        (2, MachineModel::itanium2()),
        (4, MachineModel::wide()),
    ];
    let mut gains = Vec::new();
    let mut ks = Vec::new();
    for (width, machine) in machines {
        gains.push((width, loop_gain(&machine, &lp, 600, 4)));
        let boosted = compile_loop_with_profile(
            &lp,
            &machine,
            &CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(0),
            600.0,
        );
        let d = machine.load_latency(
            ltsp_ir::DataClass::Int,
            ltsp_machine::LatencyQuery::Hinted(ltsp_ir::LatencyHint::L3),
        ) - 1;
        ks.push((width, f64::from(clustering_factor(d, boosted.kernel.ii()))));
    }
    (
        AblationSeries {
            title: "Ablation — boosted-loop gain vs machine issue width (M slots)".to_string(),
            points: gains,
            unit: "%",
        },
        AblationSeries {
            title: "Ablation — clustering factor k (Eq. 3) vs issue width".to_string(),
            points: ks,
            unit: "x",
        },
    )
}

/// Rotation-vs-unrolling ablation (the paper's Sec. 5 remark that without
/// rotating registers clustering "could only be achieved with unrolling"):
/// the kernel-unroll factor modulo variable expansion would need, and the
/// resulting code size in instructions, as the scheduled latency grows.
pub fn mve_code_size_ablation(base_machine: &MachineModel) -> AblationSeries {
    use ltsp_pipeliner::{mve_unroll_factor, pipeline_loop, PipelineOptions};
    let lp = stream_sum("mve-ablation", DataClass::Int, 256);
    let points = [1u32, 6, 11, 21, 31]
        .into_iter()
        .map(|boost| {
            let mut caches: CacheGeometry = *base_machine.caches();
            caches.l3.typical_latency = boost;
            let machine = MachineModel::new(
                *base_machine.issue(),
                *base_machine.latencies(),
                caches,
                *base_machine.registers(),
            );
            let hint = |_| Some(ltsp_ir::LatencyHint::L3);
            let p = pipeline_loop(&lp, &machine, &hint, &PipelineOptions::default())
                .expect("pipelines");
            let factor = mve_unroll_factor(&lp, &p.schedule);
            // "Gain" column reused as code size: kernel instructions after
            // modulo variable expansion.
            let code_size = factor * lp.insts().len() as u32;
            (boost, f64::from(code_size))
        })
        .collect();
    AblationSeries {
        title: "Ablation — MVE code size without rotating registers, vs boost".to_string(),
        points,
        unit: "insts",
    }
}

/// Boost-magnitude ablation (Sec. 2.2's guidance that scheduling loads
/// beyond 20–30 cycles stops paying): sweep the hinted latency on a
/// missing loop (gain saturates) and on a warm low-trip loop (cost grows
/// with every extra stage).
pub fn boost_magnitude_ablation(base_machine: &MachineModel) -> (AblationSeries, AblationSeries) {
    let sweep = |lp: &ltsp_ir::LoopIr, trip: u64, entries: u32, mode: StreamMode| {
        [2u32, 6, 11, 21, 31, 51, 81]
            .into_iter()
            .map(|boost| {
                let mut caches: CacheGeometry = *base_machine.caches();
                caches.l3.typical_latency = boost;
                let machine = MachineModel::new(
                    *base_machine.issue(),
                    *base_machine.latencies(),
                    caches,
                    *base_machine.registers(),
                );
                let run = |cfg: &CompileConfig| {
                    let c = compile_loop_with_profile(lp, &machine, cfg, trip as f64);
                    let mut ex = Executor::new(
                        &c.lp,
                        &c.kernel,
                        &machine,
                        c.regs_total,
                        ExecutorConfig {
                            stream_mode: mode,
                            ..ExecutorConfig::default()
                        },
                    );
                    for _ in 0..entries {
                        ex.run_entry(trip);
                    }
                    ex.counters().total
                };
                let tb = run(&CompileConfig::new(LatencyPolicy::Baseline));
                let tx = run(&CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(0));
                (boost, 100.0 * (tb as f64 / tx.max(1) as f64 - 1.0))
            })
            .collect::<Vec<_>>()
    };

    let missing = stream_sum("boost-ablation-miss", DataClass::Int, 256);
    let warm = stream_sum("boost-ablation-warm", DataClass::Int, 4);
    (
        AblationSeries {
            title: "Ablation — gain vs scheduled latency, memory-missing loop".to_string(),
            points: sweep(&missing, 1500, 2, StreamMode::Progressive),
            unit: "%",
        },
        AblationSeries {
            title: "Ablation — gain vs scheduled latency, warm trip-6 loop".to_string(),
            points: sweep(&warm, 6, 400, StreamMode::Restart),
            unit: "%",
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.25;

    #[test]
    fn versioning_rescues_low_trip_losses() {
        let m = MachineModel::itanium2();
        let e = versioning_experiment(&m, SCALE);
        let n0 = e.geomean(0);
        let n32 = e.geomean(1);
        let versioned = e.geomean(2);
        assert!(
            versioned > n0,
            "versioning must beat static n=0: {versioned:.2}% vs {n0:.2}%"
        );
        assert!(
            versioned >= n32 - 0.05,
            "versioning at least matches the static threshold: {versioned:.2}% vs {n32:.2}%"
        );
        // h264ref: static n=0 loses, versioning does not.
        let h_static = e.gain_of("464.h264ref", 0).unwrap();
        let h_versioned = e.gain_of("464.h264ref", 2).unwrap();
        assert!(h_static < -0.5);
        assert!(
            h_versioned > h_static + 0.5,
            "versioning should rescue h264ref: {h_versioned:.2}% vs {h_static:.2}%"
        );
        // 177.mesa: the PGO train/ref mismatch defeats the static
        // threshold (profile says 154, reality is 8) but not run-time
        // dispatch.
        let mesa_static = e.gain_of("177.mesa", 1).unwrap();
        let mesa_versioned = e.gain_of("177.mesa", 2).unwrap();
        assert!(mesa_static < -1.0, "static threshold loses on mesa");
        assert!(
            mesa_versioned > -0.5,
            "versioning rescues mesa: {mesa_versioned:.2}%"
        );
    }

    #[test]
    fn sampling_fixes_gobmk_and_keeps_gains() {
        let m = MachineModel::itanium2();
        let e = miss_sampling_experiment(&m, SCALE);
        let hlo_gobmk = e.gain_of("445.gobmk", 0).unwrap();
        let sampled_gobmk = e.gain_of("445.gobmk", 1).unwrap();
        assert!(hlo_gobmk < -1.0, "HLO without PGO loses on gobmk");
        assert!(
            sampled_gobmk > hlo_gobmk + 1.0,
            "sampling sees the L1/L2 hits and backs off: {sampled_gobmk:.2}%"
        );
        // mcf keeps its gains under sampling.
        let mcf = e.gain_of("429.mcf", 1).unwrap();
        assert!(mcf > 3.0, "sampled mcf gain: {mcf:.2}%");
    }

    #[test]
    fn balancing_boosts_the_chase_without_losing() {
        let m = MachineModel::itanium2();
        let r = balanced_recurrence_experiment(&m, 300);
        assert!(
            r.chase_latency.1 > r.chase_latency.0,
            "the chase load must receive the cycle slack: {:?}",
            r.chase_latency
        );
        assert!(
            r.gain_balanced >= r.gain_plain - 1.0,
            "balancing must not cost materially: {:+.2}% vs {:+.2}%",
            r.gain_balanced,
            r.gain_plain
        );
    }

    #[test]
    fn ozq_gain_grows_with_capacity() {
        let m = MachineModel::itanium2();
        let s = ozq_capacity_ablation(&m);
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(
            last >= first,
            "more queuing should not reduce the benefit: {first:.2}% -> {last:.2}%"
        );
    }

    #[test]
    fn issue_width_tradeoff() {
        let (gains, ks) = issue_width_ablation();
        // Eq. 3: the clustering factor shrinks as the machine narrows.
        assert!(
            ks.points[0].1 <= ks.points[2].1,
            "narrow machine clusters fewer instances: {:?}",
            ks.points
        );
        // But the narrow machine's baseline is stall-dominated, so its
        // relative gain from the same optimization is at least as large.
        assert!(
            gains.points[0].1 >= gains.points[2].1,
            "relative gains favor the stall-dominated narrow machine: {:?}",
            gains.points
        );
        // All machines gain.
        for (w, g) in &gains.points {
            assert!(*g > 5.0, "width {w} should gain: {g:.1}%");
        }
    }

    #[test]
    fn mve_code_size_explodes_without_rotation() {
        let m = MachineModel::itanium2();
        let s = mve_code_size_ablation(&m);
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(
            last >= first * 4.0,
            "unrolled code size must grow steeply with the boost: {first} -> {last}"
        );
    }

    #[test]
    fn boost_magnitude_tradeoff() {
        let m = MachineModel::itanium2();
        let (missing, warm) = boost_magnitude_ablation(&m);
        // The warm loop's loss deepens with the boost up to the point
        // where the 48-entry rotating-predicate file can no longer hold
        // the stage predicates and the fallback ladder drops the boosts
        // entirely (gain snaps back to ~0) — an emergent register-file
        // cliff backing the paper's "not advisable to schedule loads for
        // more than 20-30 cycles".
        let at = |x: u32, s: &AblationSeries| s.points.iter().find(|&&(v, _)| v == x).unwrap().1;
        assert!(at(31, &warm) < at(2, &warm), "bigger boosts cost more");
        assert!(at(31, &warm) < -20.0);
        assert!(
            at(81, &warm) > -1.0,
            "beyond the predicate file, the ladder drops the boosts"
        );
        // The missing loop gains at moderate boosts.
        let best = missing
            .points
            .iter()
            .map(|&(_, g)| g)
            .fold(f64::MIN, f64::max);
        assert!(best > 5.0, "missing loop should gain: best {best:.2}%");
    }
}
