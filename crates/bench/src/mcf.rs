//! Sec. 4.4 — the 429.mcf `refresh_potential()` case study.

use ltsp_core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp_ir::{InstId, Opcode, SplitMix64};
use ltsp_machine::MachineModel;
use ltsp_memsim::{Executor, ExecutorConfig, StreamMode};
use ltsp_workloads::{mcf_refresh, TripDistribution};

/// Results of the case study.
#[derive(Debug, Clone)]
pub struct McfCaseStudy {
    /// Number of delinquent loads boosted despite the trip count of 2.3.
    pub boosted_loads: usize,
    /// Number of loads kept at base latency (the chase).
    pub critical_loads: usize,
    /// Clustering factor achieved for the boosted loads (paper: k = 2 at
    /// the observed average trip count).
    pub clustering_factor: u32,
    /// Kernel II (identical in both arms).
    pub ii_base: u32,
    /// Kernel II with HLO hints.
    pub ii_hinted: u32,
    /// Loop speedup percentage (paper: ≈ 40%).
    pub loop_speedup: f64,
}

impl McfCaseStudy {
    /// Renders the case study.
    pub fn render(&self) -> String {
        format!(
            "Sec. 4.4 — 429.mcf refresh_potential() @ trip 2.3\n\
             boosted delinquent loads: {}   critical (chase) loads: {}\n\
             II: {} -> {}   clustering factor k = {}\n\
             loop speedup: {:+.1}% (paper: ~40%)\n",
            self.boosted_loads,
            self.critical_loads,
            self.ii_base,
            self.ii_hinted,
            self.clustering_factor,
            self.loop_speedup
        )
    }
}

/// Runs the case study: compile the Sec. 4.4 loop baseline vs HLO hints
/// and execute both at the paper's trip-count profile (mean 2.3) over a
/// memory-resident network.
pub fn mcf_case_study(machine: &MachineModel, entries: u32) -> McfCaseStudy {
    let lp = mcf_refresh("refresh_potential", 48 << 20);
    let trips = TripDistribution::Mixture(vec![(0.75, 2), (0.25, 3)]);
    let trip_mean = trips.mean();

    let base_cfg = CompileConfig::new(LatencyPolicy::Baseline);
    let hint_cfg = CompileConfig::new(LatencyPolicy::HloHints);
    let base = compile_loop_with_profile(&lp, machine, &base_cfg, trip_mean);
    let hinted = compile_loop_with_profile(&lp, machine, &hint_cfg, trip_mean);
    let stats = hinted.stats.expect("the mcf loop pipelines");

    // Clustering factor of the first boosted load: d / II + 1, where d is
    // the boost over the base latency.
    let k = hinted
        .lp
        .insts()
        .iter()
        .filter_map(|i| match i.op() {
            Opcode::Load(_) => {
                let lat = hinted
                    .stats
                    .as_ref()
                    .map(|_| ())
                    .and_then(|()| scheduled_latency(&hinted, machine, i.id()))?;
                if lat > 1 {
                    Some(ltsp_core::theory::clustering_factor(
                        lat - 1,
                        hinted.kernel.ii(),
                    ))
                } else {
                    None
                }
            }
            _ => None,
        })
        .max()
        .unwrap_or(1);

    let run = |c: &ltsp_core::CompiledLoop, seed: u64| {
        let mut ex = Executor::new(
            &c.lp,
            &c.kernel,
            machine,
            c.regs_total,
            ExecutorConfig {
                seed,
                stream_mode: StreamMode::Progressive,
                ..ExecutorConfig::default()
            },
        );
        let mut rng = SplitMix64::new(0xFEED);
        for _ in 0..entries {
            ex.run_entry(trips.sample(&mut rng));
        }
        ex.counters().total
    };
    let tb = run(&base, 11);
    let th = run(&hinted, 11);
    let speedup = 100.0 * (tb as f64 / th.max(1) as f64 - 1.0);

    McfCaseStudy {
        boosted_loads: stats.boosted_loads,
        critical_loads: stats.critical_loads,
        clustering_factor: k,
        ii_base: base.kernel.ii(),
        ii_hinted: hinted.kernel.ii(),
        loop_speedup: speedup,
    }
}

fn scheduled_latency(
    c: &ltsp_core::CompiledLoop,
    _machine: &MachineModel,
    inst: InstId,
) -> Option<u32> {
    match c.lp.inst(inst).op() {
        Opcode::Load(_) => {
            // Distance between the load and its first scheduled use.
            let t_def = c.kernel.time(inst);
            c.lp.insts()
                .iter()
                .filter(|u| {
                    u.srcs()
                        .iter()
                        .any(|s| Some(s.reg) == c.lp.inst(inst).dst())
                })
                .map(|u| {
                    let omega = u
                        .srcs()
                        .iter()
                        .find(|s| Some(s.reg) == c.lp.inst(inst).dst())
                        .map_or(0, |s| s.omega);
                    (c.kernel.time(u.id()) + i64::from(c.kernel.ii()) * i64::from(omega) - t_def)
                        .max(1) as u32
                })
                .max()
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_matches_the_paper_shape() {
        let m = MachineModel::itanium2();
        let r = mcf_case_study(&m, 150);
        assert!(r.boosted_loads >= 2, "delinquent fields boosted: {r:?}");
        assert!(r.critical_loads >= 1, "the chase stays critical");
        assert_eq!(r.ii_base, r.ii_hinted, "II must not change");
        assert!(
            r.clustering_factor >= 2,
            "paper reports k = 2, got {}",
            r.clustering_factor
        );
        assert!(
            r.loop_speedup > 10.0,
            "paper reports ~40%, got {:+.1}%",
            r.loop_speedup
        );
    }

    #[test]
    fn render_mentions_key_numbers() {
        let m = MachineModel::itanium2();
        let s = mcf_case_study(&m, 50).render();
        assert!(s.contains("refresh_potential"));
        assert!(s.contains("clustering factor"));
    }
}
