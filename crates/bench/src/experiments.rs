//! The suite-level experiments: Figs. 7, 8, 9, 10 and the no-prefetch
//! headroom of Sec. 4.2.

use ltsp_core::{
    benchmark_gain, format_cycle_accounting, format_gain_table, geomean_gain, run_suite,
    suite_cycle_accounting, CompileConfig, LatencyPolicy, RunConfig, SuiteRun,
};
use ltsp_machine::MachineModel;
use ltsp_memsim::CycleCounters;
use ltsp_workloads::{cpu2000, cpu2006, Benchmark};

/// A per-benchmark gain experiment with one or more arms over one suite.
#[derive(Debug, Clone)]
pub struct GainExperiment {
    /// Experiment title.
    pub title: String,
    /// Arm labels (columns).
    pub arms: Vec<String>,
    /// `(benchmark, per-arm gains%)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl GainExperiment {
    /// Geometric-mean gain of one arm.
    pub fn geomean(&self, arm: usize) -> f64 {
        let col: Vec<f64> = self.rows.iter().map(|(_, g)| g[arm]).collect();
        geomean_gain(&col)
    }

    /// The gain of a named benchmark in an arm.
    pub fn gain_of(&self, bench: &str, arm: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|(n, _)| n == bench)
            .map(|(_, g)| g[arm])
    }

    /// Renders the gain table.
    pub fn render(&self) -> String {
        let arms: Vec<&str> = self.arms.iter().map(String::as_str).collect();
        format_gain_table(&self.title, &arms, &self.rows)
    }

    /// Renders the experiment as CSV (header row, one row per benchmark,
    /// trailing geomean row) for external plotting.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "benchmark");
        for a in &self.arms {
            let _ = write!(s, ",{a}");
        }
        let _ = writeln!(s);
        for (name, gains) in &self.rows {
            let _ = write!(s, "{name}");
            for g in gains {
                let _ = write!(s, ",{g:.4}");
            }
            let _ = writeln!(s);
        }
        let _ = write!(s, "geomean");
        for arm in 0..self.arms.len() {
            let _ = write!(s, ",{:.4}", self.geomean(arm));
        }
        let _ = writeln!(s);
        s
    }
}

fn gains_for(
    benchs: &[Benchmark],
    machine: &MachineModel,
    base: &SuiteRun,
    var: &SuiteRun,
) -> Vec<f64> {
    let _ = machine;
    benchs
        .iter()
        .zip(base.runs.iter().zip(&var.runs))
        .map(|(b, (br, vr))| benchmark_gain(b, br, vr))
        .collect()
}

fn run_arms(
    title: &str,
    benchs: &[Benchmark],
    machine: &MachineModel,
    scale: f64,
    arms: Vec<(String, CompileConfig)>,
) -> GainExperiment {
    let base_rc =
        RunConfig::new(CompileConfig::new(LatencyPolicy::Baseline)).with_entry_scale(scale);
    let base = run_suite(benchs, machine, &base_rc);
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    for (label, cfg) in arms {
        let rc = RunConfig::new(cfg).with_entry_scale(scale);
        let var = run_suite(benchs, machine, &rc);
        columns.push(gains_for(benchs, machine, &base, &var));
        labels.push(label);
    }
    let rows = benchs
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.name.to_string(),
                columns.iter().map(|c| c[i]).collect::<Vec<f64>>(),
            )
        })
        .collect();
    GainExperiment {
        title: title.to_string(),
        arms: labels,
        rows,
    }
}

/// Fig. 7: the headroom experiment — all (non-critical) loads scheduled at
/// the typical L3 latency, under trip-count thresholds
/// n ∈ {0, 8, 16, 32, 64}, with PGO. One experiment per suite.
pub fn fig7(machine: &MachineModel, scale: f64) -> (GainExperiment, GainExperiment) {
    let thresholds = [0u32, 8, 16, 32, 64];
    let arms = |_suite: &str| {
        thresholds
            .iter()
            .map(|&n| {
                (
                    format!("n={n}"),
                    CompileConfig::new(LatencyPolicy::AllLoadsL3)
                        .with_threshold(n)
                        .with_pgo(true),
                )
            })
            .collect::<Vec<_>>()
    };
    let b06 = cpu2006();
    let b00 = cpu2000();
    (
        run_arms(
            "Fig. 7 (CPU2006) — headroom: all loads L3, PGO",
            &b06,
            machine,
            scale,
            arms("06"),
        ),
        run_arms(
            "Fig. 7 (CPU2000) — headroom: all loads L3, PGO",
            &b00,
            machine,
            scale,
            arms("00"),
        ),
    )
}

/// Fig. 8: the production settings with PGO — blanket L2 hints on FP
/// loads vs HLO-directed hints (threshold 32). One experiment per suite.
pub fn fig8(machine: &MachineModel, scale: f64) -> (GainExperiment, GainExperiment) {
    let arms = vec![
        (
            "all-FP-L2".to_string(),
            CompileConfig::new(LatencyPolicy::AllFpLoadsL2).with_pgo(true),
        ),
        (
            "+HLO-hints".to_string(),
            CompileConfig::new(LatencyPolicy::HloHints).with_pgo(true),
        ),
    ];
    let b06 = cpu2006();
    let b00 = cpu2000();
    (
        run_arms(
            "Fig. 8 (CPU2006) — FP-L2 vs HLO hints, PGO",
            &b06,
            machine,
            scale,
            arms.clone(),
        ),
        run_arms(
            "Fig. 8 (CPU2000) — FP-L2 vs HLO hints, PGO",
            &b00,
            machine,
            scale,
            arms,
        ),
    )
}

/// Fig. 9: no PGO (static trip estimates) on CPU2006 — blanket L3 hints
/// vs HLO-directed hints.
pub fn fig9(machine: &MachineModel, scale: f64) -> GainExperiment {
    let arms = vec![
        (
            "all-loads-L3".to_string(),
            CompileConfig::new(LatencyPolicy::AllLoadsL3).with_pgo(false),
        ),
        (
            "HLO-hints".to_string(),
            CompileConfig::new(LatencyPolicy::HloHints).with_pgo(false),
        ),
    ];
    let b06 = cpu2006();
    run_arms(
        "Fig. 9 (CPU2006) — no PGO: all-loads-L3 vs HLO hints",
        &b06,
        machine,
        scale,
        arms,
    )
}

/// Sec. 4.2's aside: with software prefetching disabled in both arms, the
/// headroom gain grows (the paper reports 4.6% geomean at n = 32 over
/// both suites combined).
pub fn no_prefetch_headroom(machine: &MachineModel, scale: f64) -> GainExperiment {
    let mut benchs = cpu2006();
    benchs.extend(cpu2000());
    // Baseline also compiles without prefetching (same-compiler-option
    // comparison, only the latency scheduling differs).
    let base_rc = RunConfig::new(CompileConfig::new(LatencyPolicy::Baseline).with_prefetch(false))
        .with_entry_scale(scale);
    let base = run_suite(&benchs, machine, &base_rc);
    let var_rc = RunConfig::new(
        CompileConfig::new(LatencyPolicy::AllLoadsL3)
            .with_threshold(32)
            .with_prefetch(false),
    )
    .with_entry_scale(scale);
    let var = run_suite(&benchs, machine, &var_rc);
    let gains = gains_for(&benchs, machine, &base, &var);
    GainExperiment {
        title: "Sec. 4.2 — headroom (n=32, PGO) with prefetching disabled".to_string(),
        arms: vec!["no-prefetch".to_string()],
        rows: benchs
            .iter()
            .zip(gains)
            .map(|(b, g)| (b.name.to_string(), vec![g]))
            .collect(),
    }
}

/// Fig. 10 and the Sec. 4.5 counter statistics: whole-CPU2006 cycle
/// accounting, baseline vs HLO hints, without PGO.
#[derive(Debug, Clone)]
pub struct AccountingResult {
    /// Baseline bucket totals (with policy-invariant padding).
    pub baseline: CycleCounters,
    /// HLO-hints bucket totals (with the same padding).
    pub hlo: CycleCounters,
    /// Baseline counters of the hot loops only (no padding) — the paper's
    /// per-component deltas concentrate here.
    pub loop_baseline: CycleCounters,
    /// HLO-hints counters of the hot loops only.
    pub loop_hlo: CycleCounters,
}

impl AccountingResult {
    /// Percent change of the data-stall bucket (paper: −12%).
    pub fn exe_bubble_delta(&self) -> f64 {
        100.0 * (self.hlo.be_exe_bubble as f64 / self.baseline.be_exe_bubble.max(1) as f64 - 1.0)
    }

    /// Percent change of the OzQ-full bucket (paper: +8%).
    pub fn l1d_bubble_delta(&self) -> f64 {
        100.0
            * (self.hlo.be_l1d_fpu_bubble as f64 / self.baseline.be_l1d_fpu_bubble.max(1) as f64
                - 1.0)
    }

    /// Percent change of RSE cycles across the hot loops (paper: +14% —
    /// the register-stack traffic grows where registers are allocated, at
    /// pipelined-loop boundaries).
    pub fn rse_delta(&self) -> f64 {
        100.0
            * (self.loop_hlo.be_rse_bubble as f64 / self.loop_baseline.be_rse_bubble.max(1) as f64
                - 1.0)
    }

    /// Percent change of unstalled execution across the hot loops
    /// (paper: +1.2% from the extra epilog iterations).
    pub fn unstalled_delta(&self) -> f64 {
        100.0 * (self.loop_hlo.unstalled as f64 / self.loop_baseline.unstalled.max(1) as f64 - 1.0)
    }

    /// OzQ-full fractions over the hot loops (paper: 8.2% → 9.4%).
    pub fn ozq_full_fractions(&self) -> (f64, f64) {
        (
            100.0 * self.loop_baseline.ozq_full_fraction(),
            100.0 * self.loop_hlo.ozq_full_fraction(),
        )
    }

    /// Renders both bars plus the deltas.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "Fig. 10 — CPU2006 cycle accounting (no PGO)");
        let _ = writeln!(
            s,
            "{}",
            format_cycle_accounting("baseline ", &self.baseline)
        );
        let _ = writeln!(s, "{}", format_cycle_accounting("HLO hints", &self.hlo));
        let (oz_b, oz_h) = self.ozq_full_fractions();
        let _ = writeln!(
            s,
            "deltas: EXE {:+.1}%  L1D/FPU {:+.1}%  RSE(loops) {:+.1}%  unstalled(loops) {:+.1}%  OzQ-full(loops) {:.1}% -> {:.1}%",
            self.exe_bubble_delta(),
            self.l1d_bubble_delta(),
            self.rse_delta(),
            self.unstalled_delta(),
            oz_b,
            oz_h
        );
        s
    }
}

/// Runs the Fig. 10 experiment.
pub fn fig10(machine: &MachineModel, scale: f64) -> AccountingResult {
    let benchs = cpu2006();
    let base_rc = RunConfig::new(CompileConfig::new(LatencyPolicy::Baseline).with_pgo(false))
        .with_entry_scale(scale);
    let hlo_rc = RunConfig::new(CompileConfig::new(LatencyPolicy::HloHints).with_pgo(false))
        .with_entry_scale(scale);
    let base = run_suite(&benchs, machine, &base_rc);
    let hlo = run_suite(&benchs, machine, &hlo_rc);
    let (baseline, hlo_padded) = suite_cycle_accounting(&benchs, &base, &hlo);
    AccountingResult {
        baseline,
        hlo: hlo_padded,
        loop_baseline: base.counters(),
        loop_hlo: hlo.counters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.3;

    #[test]
    fn fig7_threshold_trend() {
        let m = MachineModel::itanium2();
        let (f06, _) = fig7(&m, SCALE);
        let g0 = f06.geomean(0);
        let g32 = f06.geomean(3);
        assert!(
            g32 > g0,
            "threshold 32 must beat no threshold: n=0 {g0:.2}% vs n=32 {g32:.2}%"
        );
        // h264ref recovers with the threshold.
        let h0 = f06.gain_of("464.h264ref", 0).unwrap();
        let h32 = f06.gain_of("464.h264ref", 3).unwrap();
        assert!(h0 < 0.0, "h264ref loses at n=0: {h0:.2}%");
        assert!(h32 > h0);
    }

    #[test]
    fn fig8_hlo_beats_blanket_fp() {
        let m = MachineModel::itanium2();
        let (f06, f00) = fig8(&m, SCALE);
        assert!(
            f06.geomean(1) > f06.geomean(0),
            "HLO hints should add gains over FP-L2: {:.2}% vs {:.2}%",
            f06.geomean(1),
            f06.geomean(0)
        );
        // mcf benefits from integer-load hints only in the HLO arm.
        let mcf_fp = f06.gain_of("429.mcf", 0).unwrap();
        let mcf_hlo = f06.gain_of("429.mcf", 1).unwrap();
        assert!(mcf_hlo > mcf_fp + 1.0);
        // 177.mesa must not regress in either production arm.
        // The headroom experiment loses ~4-5% on mesa; under the
        // production policies the loss shrinks to a small residual.
        let mesa = f00.gain_of("177.mesa", 1).unwrap();
        assert!(mesa > -2.5, "mesa loss should mostly disappear: {mesa:.2}%");
    }

    #[test]
    fn fig9_hlo_positive_blanket_mixed() {
        let m = MachineModel::itanium2();
        let f = fig9(&m, SCALE);
        let blanket = f.geomean(0);
        let hlo = f.geomean(1);
        assert!(
            hlo > blanket,
            "HLO {hlo:.2}% must beat blanket {blanket:.2}%"
        );
        assert!(hlo > 0.5, "HLO without PGO should still gain: {hlo:.2}%");
        // gobmk is the persisting loss.
        let gobmk = f.gain_of("445.gobmk", 1).unwrap();
        assert!(gobmk < 0.0, "gobmk should lose without PGO: {gobmk:.2}%");
    }

    #[test]
    fn fig10_bucket_shifts() {
        let m = MachineModel::itanium2();
        let r = fig10(&m, SCALE);
        assert!(r.baseline.is_consistent());
        assert!(r.hlo.is_consistent());
        assert!(
            r.exe_bubble_delta() < 0.0,
            "data stalls must shrink: {:+.1}%",
            r.exe_bubble_delta()
        );
        let (oz_b, oz_h) = r.ozq_full_fractions();
        assert!(oz_h >= oz_b, "OzQ pressure grows: {oz_b:.2}% -> {oz_h:.2}%");
    }

    #[test]
    fn no_prefetch_headroom_exceeds_prefetched_headroom() {
        let m = MachineModel::itanium2();
        let nopf = no_prefetch_headroom(&m, SCALE);
        let col: Vec<f64> = nopf.rows.iter().map(|(_, g)| g[0]).collect();
        let g = geomean_gain(&col);
        let (f06, f00) = fig7(&m, SCALE);
        let with_pf = {
            let mut all: Vec<f64> = f06.rows.iter().map(|(_, g)| g[3]).collect();
            all.extend(f00.rows.iter().map(|(_, g)| g[3]));
            geomean_gain(&all)
        };
        assert!(
            g > with_pf,
            "headroom without prefetching {g:.2}% must exceed {with_pf:.2}%"
        );
    }
}
