//! A tiny, dependency-free micro-benchmark harness.
//!
//! Replaces Criterion for this workspace (the build must work with no
//! network access): each `harness = false` bench target constructs a
//! [`Bench`], registers closures, and gets median/min wall-clock timing
//! per iteration on stdout. Name filters passed on the command line select
//! a subset (`cargo bench -p ltsp-bench -- fig7`).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Harness configuration and name filters.
pub struct Bench {
    filters: Vec<String>,
    /// Measurement samples per benchmark.
    pub samples: u32,
    /// Target wall-clock time per sample; iteration counts adapt to it.
    pub sample_time: Duration,
}

/// One benchmark's timing summary (nanoseconds per iteration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Median over samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Iterations per sample used for measurement.
    pub iters: u64,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

impl Bench {
    /// A harness taking name filters from `std::env::args` (every non-flag
    /// argument is a substring filter; `--bench`/`--exact` and other
    /// harness flags cargo passes are ignored).
    pub fn new() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Bench {
            filters,
            samples: 10,
            sample_time: Duration::from_millis(50),
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs one benchmark: calibrates an iteration count to roughly
    /// [`Bench::sample_time`], then times `samples` batches and prints the
    /// median/min per-iteration cost. Returns `None` when filtered out.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Option<BenchResult> {
        if !self.selected(name) {
            return None;
        }
        // Calibration: grow the batch until it costs ~sample_time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_time || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (self.sample_time.as_nanos() / elapsed.as_nanos().max(1) + 1).min(16) as u64
            };
            iters = (iters * grow.max(2)).min(1 << 30);
        }

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            iters,
        };
        println!(
            "{name:<44} {:>12}/iter (min {:>12}, {} iters x {} samples)",
            format_ns(result.median_ns),
            format_ns(result.min_ns),
            iters,
            self.samples,
        );
        Some(result)
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_formats() {
        let b = Bench {
            filters: vec![],
            samples: 3,
            sample_time: Duration::from_micros(200),
        };
        let r = b.bench("smoke/add", || 2u64 + 2).unwrap();
        assert!(r.median_ns >= 0.0);
        assert!(r.iters >= 1);
        assert_eq!(format_ns(1.5e3), "1.500 us");
        assert_eq!(format_ns(2.5e6), "2.500 ms");
    }

    #[test]
    fn filters_by_substring() {
        let b = Bench {
            filters: vec!["fig7".to_string()],
            samples: 1,
            sample_time: Duration::from_micros(50),
        };
        assert!(b.bench("experiments/fig9", || 1).is_none());
        assert!(b.bench("experiments/fig7", || 1).is_some());
    }
}
