//! E-adaptive: how much of the static heuristic's cost the adaptive
//! feedback loop recovers, per kernel and kernel class.
//!
//! Three arms per library kernel, all measured on the identical
//! deterministic simulation window ([`ltsp_adaptive::measure_compiled`]):
//!
//! - **Baseline** — no latency boosting (the paper's comparison arm);
//! - **HloHints** — the production static policy the paper ships;
//! - **Adaptive** — [`ltsp_adaptive::compile_loop_adaptive`] run to its
//!   certified fixpoint from the HloHints arm.
//!
//! Each kernel is measured in both **kernel classes** the simulator
//! models (the paper's Sec. 4.2 contrast): `streaming`
//! ([`StreamMode::Progressive`] — fresh data every entry, prefetches do
//! real work) and `reuse` ([`StreamMode::Restart`] — a warm working set
//! revisited each call, where static prefetches are redundant body cost).
//!
//! The exact oracle's proven-minimal II (base latencies, pre-HLO loop — a
//! lower bound for *any* hint assignment) anchors the II columns: the
//! *gap* is `HloHints II − oracle II`, the price the static analysis pays
//! for tolerance, and the table reports how much of it the observed
//! verdicts win back, and at what simulated stall cost. The adaptive
//! round selection guarantees `Adaptive II ≤ HloHints II` on every row.
//! The expected shape: in the streaming class adaptive mostly recovers
//! stall cycles (hint corrections), while in the reuse class it drops
//! observed-redundant prefetches and recovers real II.

use ltsp_adaptive::{compile_loop_adaptive, measure_compiled, AdaptiveOptions};
use ltsp_core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp_ddg::Ddg;
use ltsp_machine::MachineModel;
use ltsp_memsim::StreamMode;
use ltsp_oracle::{prove_min_ii, IiVerdict, OracleOptions};
use ltsp_telemetry::Telemetry;
use ltsp_workloads::kernel_library;

/// One (kernel, class) row of the E-adaptive table.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// Kernel name.
    pub name: String,
    /// Kernel class: `"streaming"` (progressive streams) or `"reuse"`
    /// (restarting streams over a warm working set).
    pub class: &'static str,
    /// The oracle's proven minimal II at base latencies (`None` when the
    /// search budget ran out with only a lower bound).
    pub oracle_ii: Option<u32>,
    /// Baseline (no hints) II.
    pub baseline_ii: u32,
    /// Baseline simulated stall cycles over the measurement window.
    pub baseline_stalls: u64,
    /// Static HloHints II.
    pub hlo_ii: u32,
    /// Static HloHints stall cycles.
    pub hlo_stalls: u64,
    /// Converged adaptive II.
    pub adaptive_ii: u32,
    /// Converged adaptive stall cycles.
    pub adaptive_stalls: u64,
    /// Prefetches the converged overlay dropped as observed-redundant.
    pub dropped_prefetches: usize,
    /// Refinement rounds executed (including round 0).
    pub rounds: usize,
    /// True when the hint overlay reached its fixpoint within the cap.
    pub converged: bool,
    /// True when every intermediate schedule was validator-certified.
    pub certified: bool,
}

impl AdaptiveRow {
    /// `HloHints II − oracle II` when the oracle resolved (the static
    /// heuristic-vs-oracle gap).
    pub fn gap(&self) -> Option<u32> {
        self.oracle_ii.map(|o| self.hlo_ii.saturating_sub(o))
    }

    /// II cycles the adaptive arm won back from the static gap.
    pub fn ii_recovered(&self) -> u32 {
        self.hlo_ii.saturating_sub(self.adaptive_ii)
    }

    /// Stall cycles the adaptive arm saved versus the static HloHints
    /// arm (negative when it spent more).
    pub fn stalls_recovered(&self) -> i64 {
        self.hlo_stalls as i64 - self.adaptive_stalls as i64
    }
}

/// The E-adaptive experiment over the kernel library × kernel classes.
#[derive(Debug, Clone)]
pub struct AdaptiveGapResult {
    /// One row per (class, kernel): all streaming rows in library order,
    /// then all reuse rows.
    pub rows: Vec<AdaptiveRow>,
}

impl AdaptiveGapResult {
    /// Rows where the static policy sits above the proven minimum.
    pub fn gap_rows(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.gap().unwrap_or(0) > 0)
            .count()
    }

    /// Distinct kernels where adaptive hints recovered part of that gap
    /// in at least one class.
    pub fn recovered_kernels(&self) -> usize {
        let mut names: Vec<&str> = self
            .rows
            .iter()
            .filter(|r| r.gap().unwrap_or(0) > 0 && r.ii_recovered() > 0)
            .map(|r| r.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Rows where the adaptive II exceeds the static II (the round
    /// selection makes this impossible; reported so the table proves it).
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.adaptive_ii > r.hlo_ii)
            .count()
    }

    /// Rows that failed to reach the overlay fixpoint within the cap.
    pub fn unconverged(&self) -> usize {
        self.rows.iter().filter(|r| !r.converged).count()
    }

    /// Rows with an uncertified intermediate schedule (must be none).
    pub fn uncertified(&self) -> usize {
        self.rows.iter().filter(|r| !r.certified).count()
    }

    /// Renders the experiment table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "E-adaptive — feedback-directed hints vs Baseline/HloHints (kernel library × class)"
        );
        let mut class = "";
        for r in &self.rows {
            if r.class != class {
                class = r.class;
                let _ = writeln!(s, "-- class: {class}");
                let _ = writeln!(
                    s,
                    "{:<24} {:>6} {:>7} {:>9} {:>7} {:>9} {:>7} {:>9} {:>5} {:>4} {:>6}  status",
                    "kernel",
                    "oracle",
                    "base II",
                    "stalls",
                    "hlo II",
                    "stalls",
                    "ad II",
                    "stalls",
                    "drops",
                    "rnds",
                    "recov"
                );
            }
            let oracle = r
                .oracle_ii
                .map_or_else(|| "?".to_string(), |o| o.to_string());
            let recov = match r.gap() {
                Some(g) if g > 0 => format!("{}/{}", r.ii_recovered(), g),
                _ => "-".to_string(),
            };
            let status = if !r.certified {
                "UNCERTIFIED"
            } else if !r.converged {
                "cap-hit (certified)"
            } else {
                "fixpoint (certified)"
            };
            let _ = writeln!(
                s,
                "{:<24} {:>6} {:>7} {:>9} {:>7} {:>9} {:>7} {:>9} {:>5} {:>4} {:>6}  {}",
                r.name,
                oracle,
                r.baseline_ii,
                r.baseline_stalls,
                r.hlo_ii,
                r.hlo_stalls,
                r.adaptive_ii,
                r.adaptive_stalls,
                r.dropped_prefetches,
                r.rounds,
                recov,
                status
            );
        }
        let _ = writeln!(
            s,
            "gap rows: {}   kernels recovered: {}   II regressions: {}   \
             unconverged: {}   uncertified: {}",
            self.gap_rows(),
            self.recovered_kernels(),
            self.regressions(),
            self.unconverged(),
            self.uncertified()
        );
        s
    }
}

/// Runs the E-adaptive experiment over every kernel in the library, in
/// both stream classes, on `jobs` worker threads; rows (and their
/// round-by-round telemetry) come back in a fixed order whatever the
/// worker count.
pub fn adaptive_gap(machine: &MachineModel, tel: &Telemetry, jobs: usize) -> AdaptiveGapResult {
    let oracle_opts = OracleOptions::default();
    let classes: [(&'static str, StreamMode); 2] = [
        ("streaming", StreamMode::Progressive),
        ("reuse", StreamMode::Restart),
    ];
    let items: Vec<_> = classes
        .iter()
        .flat_map(|&(class, mode)| {
            kernel_library()
                .into_iter()
                .map(move |(_, lp)| (class, mode, lp))
        })
        .collect();
    let rows = ltsp_par::Pool::new(jobs).map_traced(
        tel,
        "adaptive-gap",
        &items,
        |tel, _idx, (class, mode, lp)| {
            let opts = AdaptiveOptions {
                stream_mode: *mode,
                ..AdaptiveOptions::default()
            };
            let trip = opts.trip as f64;
            let base_cfg = CompileConfig::new(LatencyPolicy::Baseline);
            let hlo_cfg = CompileConfig::new(LatencyPolicy::HloHints);

            let base = compile_loop_with_profile(lp, machine, &base_cfg, trip);
            let base_m = measure_compiled(&base, machine, &opts);
            let hlo = compile_loop_with_profile(lp, machine, &hlo_cfg, trip);
            let hlo_m = measure_compiled(&hlo, machine, &opts);
            let ad = compile_loop_adaptive(lp, machine, &hlo_cfg, trip, &opts, tel);

            // The oracle proves the base-latency minimum on the pre-HLO
            // loop — a lower bound for any hint assignment, anchoring
            // the gap column.
            let ddg = Ddg::build_with_load_floor(lp, machine, 0);
            let oracle_ii = match prove_min_ii(lp, machine, &ddg, base.kernel.ii(), &oracle_opts) {
                IiVerdict::Exact { optimal_ii, .. } => Some(optimal_ii),
                IiVerdict::BoundedUnknown { .. } => None,
            };

            AdaptiveRow {
                name: lp.name().to_string(),
                class,
                oracle_ii,
                baseline_ii: base.kernel.ii(),
                baseline_stalls: base_m.stall_cycles,
                hlo_ii: hlo.kernel.ii(),
                hlo_stalls: hlo_m.stall_cycles,
                adaptive_ii: ad.ii(),
                adaptive_stalls: ad.chosen().stall_cycles,
                dropped_prefetches: ad.chosen().overlay.dropped_prefetches(),
                rounds: ad.rounds.len(),
                converged: ad.converged,
                certified: ad.all_certified(),
            }
        },
    );
    AdaptiveGapResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_converges_certifies_recovers_and_never_regresses() {
        let m = MachineModel::itanium2();
        let r = adaptive_gap(&m, &Telemetry::disabled(), 2);
        assert_eq!(r.rows.len(), 34, "17 kernels x 2 classes");
        assert_eq!(r.regressions(), 0, "{}", r.render());
        assert_eq!(r.unconverged(), 0, "{}", r.render());
        assert_eq!(r.uncertified(), 0, "{}", r.render());
        assert!(
            r.recovered_kernels() >= 3,
            "adaptive must recover II on >= 3 kernels:\n{}",
            r.render()
        );
    }
}
