//! The `reproduce --bench-out` wall-clock record, with partial-run
//! merging.
//!
//! A `--which` run used to rebuild the whole record from only the
//! experiments that ran, silently clobbering the committed full-run
//! record (`results/BENCH_reproduce.json` once read `total_wall_ms:
//! 0.329` with a single `oracle` entry). [`merged_bench_json`] fixes
//! that: per-experiment entries from the previous record survive a
//! partial rerun — only the experiments that actually ran are refreshed
//! — and the totals stay honest (`total_wall_ms` is the sum of the
//! merged per-experiment walls, and `which` reports `"all"` only when
//! every canonical experiment is covered).

use ltsp_telemetry::json::{self, JsonValue};
use ltsp_telemetry::Histogram;

/// Every experiment `reproduce` can run, in report order. Merged records
/// list experiments in this order regardless of which rerun refreshed
/// them.
pub const CANONICAL_EXPERIMENTS: [&str; 15] = [
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "mcf",
    "regstats",
    "compiletime",
    "noprefetch",
    "versioning",
    "sampling",
    "balanced",
    "oracle",
    "adaptive",
    "ablations",
];

/// Per-experiment wall timings carried over from an existing record.
fn existing_timings(existing: &str) -> Vec<(String, f64)> {
    let Ok(doc) = json::parse(existing) else {
        return Vec::new();
    };
    if doc.get("schema").and_then(JsonValue::as_str) != Some("ltsp.bench.reproduce.v1") {
        return Vec::new();
    }
    let Some(exps) = doc.get("experiments").and_then(JsonValue::as_array) else {
        return Vec::new();
    };
    exps.iter()
        .filter_map(|e| {
            let name = e.get("name").and_then(JsonValue::as_str)?;
            let ms = e.get("wall_ms").and_then(JsonValue::as_f64)?;
            Some((name.to_string(), ms))
        })
        .collect()
}

/// Renders the machine-readable wall-clock record
/// (`ltsp.bench.reproduce.v1`), merging this run's per-experiment
/// timings into `existing` (the previous record's bytes, if any).
///
/// Experiments that ran now take their fresh timing; experiments present
/// only in the previous record keep theirs; the rest are absent. Names
/// follow [`CANONICAL_EXPERIMENTS`] order (unknown leftover names keep
/// their relative order at the end). `total_wall_ms` is the sum of the
/// merged per-experiment walls. `which` is `"all"` when the merged
/// record covers every canonical experiment, otherwise this run's
/// selector. `scale`, `jobs` and the phase KPIs always describe the
/// current run.
pub fn merged_bench_json(
    which: &str,
    scale: f64,
    jobs: usize,
    timings: &[(String, f64)],
    phases: &[(&'static str, Histogram)],
    existing: Option<&str>,
) -> String {
    let mut merged: Vec<(String, f64)> = Vec::new();
    let mut leftover: Vec<(String, f64)> = existing.map(existing_timings).unwrap_or_default();
    // This run wins over the previous record.
    leftover.retain(|(n, _)| !timings.iter().any(|(t, _)| t == n));
    for name in CANONICAL_EXPERIMENTS {
        if let Some((_, ms)) = timings.iter().find(|(n, _)| n == name) {
            merged.push((name.to_string(), *ms));
        } else if let Some(pos) = leftover.iter().position(|(n, _)| n == name) {
            merged.push(leftover.remove(pos));
        }
    }
    // Fresh timings under unknown names (defensive), then unknown
    // leftovers from the previous record.
    for (n, ms) in timings {
        if !CANONICAL_EXPERIMENTS.contains(&n.as_str()) {
            merged.push((n.clone(), *ms));
        }
    }
    merged.extend(leftover);

    let covered = CANONICAL_EXPERIMENTS
        .iter()
        .all(|name| merged.iter().any(|(n, _)| n == name));
    let which = if covered { "all" } else { which };
    let total_ms: f64 = merged.iter().map(|(_, ms)| ms).sum();

    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"ltsp.bench.reproduce.v1\",\n");
    s.push_str(&format!("  \"which\": \"{which}\",\n"));
    s.push_str(&format!("  \"scale\": {scale},\n"));
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        ltsp_par::default_parallelism()
    ));
    s.push_str(&format!("  \"total_wall_ms\": {total_ms:.3},\n"));
    s.push_str("  \"phases\": {");
    for (i, (name, h)) in phases.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "\"{name}\": {{\"p50\": {}, \"p99\": {}, \"count\": {}}}",
            h.quantile(0.50).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            h.count
        ));
    }
    s.push_str("},\n");
    s.push_str("  \"experiments\": [\n");
    for (i, (name, ms)) in merged.iter().enumerate() {
        let sep = if i + 1 < merged.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"wall_ms\": {ms:.3}}}{sep}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings(entries: &[(&str, f64)]) -> Vec<(String, f64)> {
        entries.iter().map(|(n, ms)| (n.to_string(), *ms)).collect()
    }

    fn full_record() -> String {
        let all: Vec<(String, f64)> = CANONICAL_EXPERIMENTS
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), 100.0 + i as f64))
            .collect();
        merged_bench_json("all", 1.0, 4, &all, &[], None)
    }

    fn wall_of(record: &str, name: &str) -> Option<f64> {
        let doc = json::parse(record).unwrap();
        doc.get("experiments")?
            .as_array()?
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some(name))?
            .get("wall_ms")?
            .as_f64()
    }

    #[test]
    fn partial_rerun_does_not_clobber_the_full_record() {
        // The headline regression: a `--which oracle` rerun must keep
        // every other experiment's entry from the existing record.
        let full = full_record();
        let partial = merged_bench_json(
            "oracle",
            1.0,
            4,
            &timings(&[("oracle", 0.3)]),
            &[],
            Some(&full),
        );
        let doc = json::parse(&partial).unwrap();
        let exps = doc.get("experiments").unwrap().as_array().unwrap();
        assert_eq!(exps.len(), CANONICAL_EXPERIMENTS.len(), "{partial}");
        // The rerun experiment is refreshed...
        assert_eq!(wall_of(&partial, "oracle"), Some(0.3));
        // ...everything else survives with its old timing...
        assert_eq!(wall_of(&partial, "fig7"), Some(101.0));
        assert_eq!(wall_of(&partial, "ablations"), Some(114.0));
        // ...the record still covers all experiments...
        assert_eq!(doc.get("which").unwrap().as_str(), Some("all"));
        // ...and the total is the honest sum of the merged walls.
        let expect: f64 = (0..15).map(|i| 100.0 + i as f64).sum::<f64>() - (100.0 + 12.0) + 0.3;
        let total = doc.get("total_wall_ms").unwrap().as_f64().unwrap();
        assert!((total - expect).abs() < 1e-6, "total {total} != {expect}");
    }

    #[test]
    fn experiments_come_back_in_canonical_order() {
        let full = full_record();
        let partial =
            merged_bench_json("fig9", 1.0, 2, &timings(&[("fig9", 7.0)]), &[], Some(&full));
        let doc = json::parse(&partial).unwrap();
        let names: Vec<String> = doc
            .get("experiments")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, CANONICAL_EXPERIMENTS.to_vec());
    }

    #[test]
    fn partial_run_without_existing_record_reports_partial_coverage() {
        let rec = merged_bench_json("oracle", 1.0, 1, &timings(&[("oracle", 0.5)]), &[], None);
        let doc = json::parse(&rec).unwrap();
        assert_eq!(doc.get("which").unwrap().as_str(), Some("oracle"));
        assert_eq!(doc.get("experiments").unwrap().as_array().unwrap().len(), 1);
        let total = doc.get("total_wall_ms").unwrap().as_f64().unwrap();
        assert!((total - 0.5).abs() < 1e-6);
    }

    #[test]
    fn garbage_existing_record_is_ignored() {
        for existing in [
            "",
            "not json",
            r#"{"schema": "other.v1", "experiments": []}"#,
        ] {
            let rec = merged_bench_json(
                "fig5",
                1.0,
                1,
                &timings(&[("fig5", 1.0)]),
                &[],
                Some(existing),
            );
            let doc = json::parse(&rec).unwrap();
            assert_eq!(
                doc.get("experiments").unwrap().as_array().unwrap().len(),
                1,
                "existing {existing:?}"
            );
        }
    }

    #[test]
    fn full_rerun_replaces_everything() {
        let full = full_record();
        let all: Vec<(String, f64)> = CANONICAL_EXPERIMENTS
            .iter()
            .map(|n| (n.to_string(), 1.0))
            .collect();
        let rec = merged_bench_json("all", 1.0, 4, &all, &[], Some(&full));
        let doc = json::parse(&rec).unwrap();
        let total = doc.get("total_wall_ms").unwrap().as_f64().unwrap();
        assert!((total - 15.0).abs() < 1e-6, "all walls refreshed");
    }
}
