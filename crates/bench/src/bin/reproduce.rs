//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! reproduce [all|fig5|fig7|fig8|fig9|fig10|mcf|regstats|compiletime|noprefetch|versioning|sampling|balanced|ablations|oracle]
//!           [--scale X] [--csv] [--trace-out FILE] [--metrics-out FILE] [-v]
//! ```
//!
//! `--scale` multiplies each loop's simulated entry count (default 1.0;
//! use e.g. 0.1 for a quick pass). `--csv` switches the per-benchmark
//! gain experiments to CSV output for external plotting. `--trace-out`
//! writes a JSONL span/event trace of the run, `--metrics-out` a JSON
//! metrics snapshot, and `-v` narrates experiment progress on stderr
//! (per-experiment wall-clock timing included).

use ltsp_bench::{
    balanced_recurrence_experiment, boost_magnitude_ablation, compile_time, fig10, fig5, fig7,
    fig8, fig9, issue_width_ablation, mcf_case_study, miss_sampling_experiment,
    mve_code_size_ablation, no_prefetch_headroom, oracle_gap, ozq_capacity_ablation, regstats,
    versioning_experiment,
};
use ltsp_machine::MachineModel;
use ltsp_telemetry::Telemetry;
use std::io::Write as _;

/// Prints without panicking on a closed pipe (`reproduce ... | head`).
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    if out
        .write_all(text.as_bytes())
        .and_then(|()| out.write_all(b"\n"))
        .is_err()
    {
        std::process::exit(0);
    }
}

/// Writes one telemetry artifact, reporting failures on stderr.
fn write_artifact(
    path: Option<&str>,
    what: &str,
    f: impl FnOnce(&mut dyn std::io::Write) -> std::io::Result<()>,
) {
    let Some(path) = path else { return };
    let res = std::fs::File::create(path)
        .map(std::io::BufWriter::new)
        .and_then(|mut w| f(&mut w));
    if let Err(e) = res {
        eprintln!("reproduce: cannot write {what} {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = 1.0f64;
    let mut csv = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv = true,
            "--scale" => {
                scale = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale requires a number");
                    std::process::exit(2);
                });
            }
            "--trace-out" => trace_out = it.next().cloned(),
            "--metrics-out" => metrics_out = it.next().cloned(),
            "-v" | "--verbose" => verbose = true,
            other => which = other.to_string(),
        }
    }

    let tel = if trace_out.is_some() || metrics_out.is_some() || verbose {
        Telemetry::enabled_with(verbose)
    } else {
        Telemetry::disabled()
    };
    let machine = MachineModel::itanium2();
    let run_all = which == "all";
    let table = |e: &ltsp_bench::GainExperiment| if csv { e.to_csv() } else { e.render() };
    // Each artifact runs under a span so `-v` narrates progress with
    // wall-clock timing and `--trace-out` records the run's timeline.
    let ran = |name: &str| tel.info(format!("reproducing {name} (scale {scale})"));

    if run_all || which == "fig5" {
        ran("fig5");
        let _s = tel.span("experiment:fig5");
        emit(&fig5().render());
    }
    if run_all || which == "fig7" {
        ran("fig7");
        let _s = tel.span("experiment:fig7");
        let (f06, f00) = fig7(&machine, scale);
        emit(&table(&f06));
        emit(&table(&f00));
    }
    if run_all || which == "fig8" {
        ran("fig8");
        let _s = tel.span("experiment:fig8");
        let (f06, f00) = fig8(&machine, scale);
        emit(&table(&f06));
        emit(&table(&f00));
    }
    if run_all || which == "fig9" {
        ran("fig9");
        let _s = tel.span("experiment:fig9");
        emit(&table(&fig9(&machine, scale)));
    }
    if run_all || which == "fig10" {
        ran("fig10");
        let _s = tel.span("experiment:fig10");
        emit(&fig10(&machine, scale).render());
    }
    if run_all || which == "mcf" {
        ran("mcf");
        let _s = tel.span("experiment:mcf");
        let entries = ((900.0 * scale) as u32).max(50);
        emit(&mcf_case_study(&machine, entries).render());
    }
    if run_all || which == "regstats" {
        ran("regstats");
        let _s = tel.span("experiment:regstats");
        emit(&regstats(&machine, scale).render());
    }
    if run_all || which == "compiletime" {
        ran("compiletime");
        let _s = tel.span("experiment:compiletime");
        emit(&compile_time(&machine, scale).render());
    }
    if run_all || which == "noprefetch" {
        ran("noprefetch");
        let _s = tel.span("experiment:noprefetch");
        emit(&table(&no_prefetch_headroom(&machine, scale)));
    }
    if run_all || which == "versioning" {
        ran("versioning");
        let _s = tel.span("experiment:versioning");
        emit(&table(&versioning_experiment(&machine, scale)));
    }
    if run_all || which == "sampling" {
        ran("sampling");
        let _s = tel.span("experiment:sampling");
        emit(&table(&miss_sampling_experiment(&machine, scale)));
    }
    if run_all || which == "balanced" {
        ran("balanced");
        let _s = tel.span("experiment:balanced");
        let entries = ((800.0 * scale) as u32).max(100);
        emit(&balanced_recurrence_experiment(&machine, entries).render());
    }
    if run_all || which == "oracle" {
        ran("oracle");
        let _s = tel.span("experiment:oracle");
        emit(&oracle_gap(&machine, &tel).render());
    }
    if run_all || which == "ablations" {
        ran("ablations");
        let _s = tel.span("experiment:ablations");
        emit(&ozq_capacity_ablation(&machine).render());
        let (missing, warm) = boost_magnitude_ablation(&machine);
        emit(&missing.render());
        emit(&warm.render());
        emit(&mve_code_size_ablation(&machine).render());
        let (width_gain, width_k) = issue_width_ablation();
        emit(&width_gain.render());
        emit(&width_k.render());
    }

    write_artifact(trace_out.as_deref(), "trace", |w| tel.write_events_jsonl(w));
    write_artifact(metrics_out.as_deref(), "metrics", |w| {
        tel.write_metrics_json(w)
    });
}
