//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! reproduce [all|fig5|fig7|fig8|fig9|fig10|mcf|regstats|compiletime|noprefetch|versioning|sampling|balanced|ablations|oracle|adaptive]
//!           [--scale X] [--jobs N] [--csv] [--trace-out FILE] [--metrics-out FILE]
//!           [--bench-out FILE] [--no-bench] [-v]
//! ```
//!
//! `--adaptive` is an alias for the `adaptive` experiment (the E-adaptive
//! feedback-directed-hints table).
//!
//! The `--bench-out` record also carries a `"phases"` block: the kernel
//! library is compiled once per policy with a phase timer attached, and
//! each compiler phase (parse is server-side only; here hlo → ddg → mrt
//! → sched → regalloc) reports p50/p99 wall microseconds — the
//! compile-latency KPI baseline the serving-path histograms are compared
//! against.
//!
//! `--scale` multiplies each loop's simulated entry count (default 1.0;
//! use e.g. 0.1 for a quick pass). `--jobs` sets the worker-thread count
//! for every batch layer (default: the machine's available parallelism);
//! any value produces byte-identical reports, traces and metrics — only
//! wall-clock changes. `--csv` switches the per-benchmark gain
//! experiments to CSV output for external plotting. `--trace-out` writes
//! a JSONL span/event trace of the run, `--metrics-out` a JSON metrics
//! snapshot, `--bench-out` the machine-readable wall-clock record
//! (default `BENCH_reproduce.json`; `--no-bench` suppresses it), and `-v`
//! narrates experiment progress on stderr (per-experiment wall-clock
//! timing included).
//!
//! A partial run (`reproduce oracle --bench-out ...`) merges into an
//! existing record at that path rather than replacing it: only the
//! experiments that ran are refreshed, the rest keep their previous
//! timings, and `total_wall_ms` is the sum of the merged per-experiment
//! walls (see `ltsp_bench::bench_record`).

use ltsp_bench::{
    adaptive_gap, balanced_recurrence_experiment, boost_magnitude_ablation, compile_time, fig10,
    fig5, fig7, fig8, fig9, issue_width_ablation, mcf_case_study, merged_bench_json,
    miss_sampling_experiment, mve_code_size_ablation, no_prefetch_headroom, oracle_gap,
    ozq_capacity_ablation, regstats, versioning_experiment,
};
use ltsp_machine::MachineModel;
use ltsp_telemetry::phase::{PhaseTimer, ALL_PHASES};
use ltsp_telemetry::{Histogram, Telemetry};
use std::io::Write as _;
use std::time::Instant;

/// Prints without panicking on a closed pipe (`reproduce ... | head`).
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    if out
        .write_all(text.as_bytes())
        .and_then(|()| out.write_all(b"\n"))
        .is_err()
    {
        std::process::exit(0);
    }
}

/// Writes one telemetry artifact, reporting failures on stderr.
fn write_artifact(
    path: Option<&str>,
    what: &str,
    f: impl FnOnce(&mut dyn std::io::Write) -> std::io::Result<()>,
) {
    let Some(path) = path else { return };
    let res = std::fs::File::create(path)
        .map(std::io::BufWriter::new)
        .and_then(|mut w| f(&mut w));
    if let Err(e) = res {
        eprintln!("reproduce: cannot write {what} {path}: {e}");
        std::process::exit(1);
    }
}

/// Compiles the kernel library once per latency policy with a phase
/// timer attached and folds each compiler phase's wall-clock into a
/// histogram: the compile-latency KPI source for the bench record.
fn compile_phase_kpis(machine: &MachineModel) -> Vec<(&'static str, Histogram)> {
    use ltsp_core::{compile_loop_with_profile_phased, CompileConfig, LatencyPolicy};
    let tel = Telemetry::disabled();
    let mut hists: Vec<(&'static str, Histogram)> = ALL_PHASES
        .iter()
        .map(|p| (p.name(), Histogram::default()))
        .collect();
    for policy in [
        LatencyPolicy::Baseline,
        LatencyPolicy::AllLoadsL3,
        LatencyPolicy::AllFpLoadsL2,
        LatencyPolicy::HloHints,
    ] {
        let cfg = CompileConfig::new(policy);
        for (_, lp) in ltsp_workloads::kernel_library() {
            let phases = PhaseTimer::new();
            let _ =
                compile_loop_with_profile_phased(&lp, machine, &cfg, 100.0, &tel, Some(&phases));
            for (phase, us) in phases.snapshot() {
                if us == 0 {
                    continue;
                }
                if let Some((_, h)) = hists.iter_mut().find(|(n, _)| *n == phase.name()) {
                    h.record(us);
                }
            }
        }
    }
    hists.retain(|(_, h)| h.count > 0);
    hists
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = 1.0f64;
    let mut jobs = ltsp_par::default_parallelism();
    let mut csv = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut bench_out: Option<String> = Some("BENCH_reproduce.json".to_string());
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv = true,
            "--scale" => {
                scale = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale requires a number");
                    std::process::exit(2);
                });
            }
            "--jobs" => {
                let v = it.next().cloned().unwrap_or_default();
                jobs = ltsp_par::parse_jobs(&v).unwrap_or_else(|e| {
                    eprintln!("reproduce: {e}");
                    std::process::exit(2);
                });
            }
            "--trace-out" => trace_out = it.next().cloned(),
            "--metrics-out" => metrics_out = it.next().cloned(),
            "--bench-out" => bench_out = it.next().cloned(),
            "--no-bench" => bench_out = None,
            "-v" | "--verbose" => verbose = true,
            "--adaptive" => which = "adaptive".to_string(),
            other => which = other.to_string(),
        }
    }
    // Experiments construct their own RunConfigs; route the worker count
    // through the process-wide default they pick up.
    ltsp_core::set_default_jobs(jobs);

    let tel = if trace_out.is_some() || metrics_out.is_some() || verbose {
        Telemetry::enabled_with(verbose)
    } else {
        Telemetry::disabled()
    };
    let machine = MachineModel::itanium2();
    let run_all = which == "all";
    let table = |e: &ltsp_bench::GainExperiment| if csv { e.to_csv() } else { e.render() };
    // Each artifact runs under a span so `-v` narrates progress with
    // wall-clock timing and `--trace-out` records the run's timeline.
    let ran = |name: &str| tel.info(format!("reproducing {name} (scale {scale}, jobs {jobs})"));
    let mut timings: Vec<(String, f64)> = Vec::new();
    let timed = |timings: &mut Vec<(String, f64)>, name: &str, f: &mut dyn FnMut()| {
        ran(name);
        let t0 = Instant::now();
        f();
        timings.push((name.to_string(), t0.elapsed().as_secs_f64() * 1e3));
    };
    let t_run = Instant::now();

    if run_all || which == "fig5" {
        timed(&mut timings, "fig5", &mut || {
            let _s = tel.span("experiment:fig5");
            emit(&fig5().render());
        });
    }
    if run_all || which == "fig7" {
        timed(&mut timings, "fig7", &mut || {
            let _s = tel.span("experiment:fig7");
            let (f06, f00) = fig7(&machine, scale);
            emit(&table(&f06));
            emit(&table(&f00));
        });
    }
    if run_all || which == "fig8" {
        timed(&mut timings, "fig8", &mut || {
            let _s = tel.span("experiment:fig8");
            let (f06, f00) = fig8(&machine, scale);
            emit(&table(&f06));
            emit(&table(&f00));
        });
    }
    if run_all || which == "fig9" {
        timed(&mut timings, "fig9", &mut || {
            let _s = tel.span("experiment:fig9");
            emit(&table(&fig9(&machine, scale)));
        });
    }
    if run_all || which == "fig10" {
        timed(&mut timings, "fig10", &mut || {
            let _s = tel.span("experiment:fig10");
            emit(&fig10(&machine, scale).render());
        });
    }
    if run_all || which == "mcf" {
        timed(&mut timings, "mcf", &mut || {
            let _s = tel.span("experiment:mcf");
            let entries = ((900.0 * scale) as u32).max(50);
            emit(&mcf_case_study(&machine, entries).render());
        });
    }
    if run_all || which == "regstats" {
        timed(&mut timings, "regstats", &mut || {
            let _s = tel.span("experiment:regstats");
            emit(&regstats(&machine, scale).render());
        });
    }
    if run_all || which == "compiletime" {
        timed(&mut timings, "compiletime", &mut || {
            let _s = tel.span("experiment:compiletime");
            emit(&compile_time(&machine, scale).render());
        });
    }
    if run_all || which == "noprefetch" {
        timed(&mut timings, "noprefetch", &mut || {
            let _s = tel.span("experiment:noprefetch");
            emit(&table(&no_prefetch_headroom(&machine, scale)));
        });
    }
    if run_all || which == "versioning" {
        timed(&mut timings, "versioning", &mut || {
            let _s = tel.span("experiment:versioning");
            emit(&table(&versioning_experiment(&machine, scale)));
        });
    }
    if run_all || which == "sampling" {
        timed(&mut timings, "sampling", &mut || {
            let _s = tel.span("experiment:sampling");
            emit(&table(&miss_sampling_experiment(&machine, scale)));
        });
    }
    if run_all || which == "balanced" {
        timed(&mut timings, "balanced", &mut || {
            let _s = tel.span("experiment:balanced");
            let entries = ((800.0 * scale) as u32).max(100);
            emit(&balanced_recurrence_experiment(&machine, entries).render());
        });
    }
    if run_all || which == "oracle" {
        timed(&mut timings, "oracle", &mut || {
            let _s = tel.span("experiment:oracle");
            emit(&oracle_gap(&machine, &tel, jobs).render());
        });
    }
    if run_all || which == "adaptive" {
        timed(&mut timings, "adaptive", &mut || {
            let _s = tel.span("experiment:adaptive");
            emit(&adaptive_gap(&machine, &tel, jobs).render());
        });
    }
    if run_all || which == "ablations" {
        timed(&mut timings, "ablations", &mut || {
            let _s = tel.span("experiment:ablations");
            emit(&ozq_capacity_ablation(&machine).render());
            let (missing, warm) = boost_magnitude_ablation(&machine);
            emit(&missing.render());
            emit(&warm.render());
            emit(&mve_code_size_ablation(&machine).render());
            let (width_gain, width_k) = issue_width_ablation();
            emit(&width_gain.render());
            emit(&width_k.render());
        });
    }
    tel.info(format!(
        "reproduce: {} experiment(s) in {:.1} ms",
        timings.len(),
        t_run.elapsed().as_secs_f64() * 1e3
    ));

    write_artifact(trace_out.as_deref(), "trace", |w| tel.write_events_jsonl(w));
    write_artifact(metrics_out.as_deref(), "metrics", |w| {
        tel.write_metrics_json(w)
    });
    let phase_kpis = if bench_out.is_some() {
        compile_phase_kpis(&machine)
    } else {
        Vec::new()
    };
    // A partial `--which` run merges into the existing record instead of
    // clobbering it: only the experiments that ran are refreshed.
    let existing = bench_out
        .as_deref()
        .and_then(|p| std::fs::read_to_string(p).ok());
    write_artifact(bench_out.as_deref(), "bench record", |w| {
        w.write_all(
            merged_bench_json(
                &which,
                scale,
                jobs,
                &timings,
                &phase_kpis,
                existing.as_deref(),
            )
            .as_bytes(),
        )
    });
}
