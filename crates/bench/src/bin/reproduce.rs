//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! reproduce [all|fig5|fig7|fig8|fig9|fig10|mcf|regstats|compiletime|noprefetch|versioning|sampling|balanced|ablations] [--scale X]
//! ```
//!
//! `--scale` multiplies each loop's simulated entry count (default 1.0;
//! use e.g. 0.1 for a quick pass). `--csv` switches the per-benchmark
//! gain experiments to CSV output for external plotting.

use ltsp_bench::{
    balanced_recurrence_experiment, boost_magnitude_ablation, compile_time, fig10, fig5, fig7,
    fig8, fig9, issue_width_ablation, mcf_case_study, miss_sampling_experiment,
    mve_code_size_ablation,
    no_prefetch_headroom, ozq_capacity_ablation, regstats, versioning_experiment,
};
use ltsp_machine::MachineModel;
use std::io::Write as _;

/// Prints without panicking on a closed pipe (`reproduce ... | head`).
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    if out.write_all(text.as_bytes()).and_then(|()| out.write_all(b"\n")).is_err() {
        std::process::exit(0);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = 1.0f64;
    let mut csv = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv = true,
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale requires a number");
                        std::process::exit(2);
                    });
            }
            other => which = other.to_string(),
        }
    }

    let machine = MachineModel::itanium2();
    let run_all = which == "all";
    let table = |e: &ltsp_bench::GainExperiment| if csv { e.to_csv() } else { e.render() };

    if run_all || which == "fig5" {
        emit(&fig5().render());
    }
    if run_all || which == "fig7" {
        let (f06, f00) = fig7(&machine, scale);
        emit(&table(&f06));
        emit(&table(&f00));
    }
    if run_all || which == "fig8" {
        let (f06, f00) = fig8(&machine, scale);
        emit(&table(&f06));
        emit(&table(&f00));
    }
    if run_all || which == "fig9" {
        emit(&table(&fig9(&machine, scale)));
    }
    if run_all || which == "fig10" {
        emit(&fig10(&machine, scale).render());
    }
    if run_all || which == "mcf" {
        let entries = ((900.0 * scale) as u32).max(50);
        emit(&mcf_case_study(&machine, entries).render());
    }
    if run_all || which == "regstats" {
        emit(&regstats(&machine, scale).render());
    }
    if run_all || which == "compiletime" {
        emit(&compile_time(&machine, scale).render());
    }
    if run_all || which == "noprefetch" {
        emit(&table(&no_prefetch_headroom(&machine, scale)));
    }
    if run_all || which == "versioning" {
        emit(&table(&versioning_experiment(&machine, scale)));
    }
    if run_all || which == "sampling" {
        emit(&table(&miss_sampling_experiment(&machine, scale)));
    }
    if run_all || which == "balanced" {
        let entries = ((800.0 * scale) as u32).max(100);
        emit(&balanced_recurrence_experiment(&machine, entries).render());
    }
    if run_all || which == "ablations" {
        emit(&ozq_capacity_ablation(&machine).render());
        let (missing, warm) = boost_magnitude_ablation(&machine);
        emit(&missing.render());
        emit(&warm.render());
        emit(&mve_code_size_ablation(&machine).render());
        let (width_gain, width_k) = issue_width_ablation();
        emit(&width_gain.render());
        emit(&width_k.render());
    }
}
