//! `compile_phases` — the benchmark-locked compile-latency KPI harness.
//!
//! Buckets per-phase compile latency (parse/hlo/ddg/mrt/sched/regalloc/
//! render) over the library and scale kernel groups, writes the
//! machine-readable record, and — given `--baseline` — fails loudly on
//! gross per-phase regressions against the locked record in `results/`.
//!
//! ```text
//! compile_phases [--out BENCH_compile_phases.json] [--repeat N]
//!                [--scale N] [--baseline results/BENCH_compile_phases.json]
//!                [--max-regression 2.0] [--floor-us 25]
//! ```

use std::process::ExitCode;

use ltsp_bench::compile_phases::{compare_to_baseline, compile_phases};
use ltsp_machine::MachineModel;

fn main() -> ExitCode {
    let mut out = String::from("BENCH_compile_phases.json");
    let mut baseline: Option<String> = None;
    let mut repeat = 3usize;
    let mut scale = 3usize;
    let mut max_regression = 2.0f64;
    let mut floor_us = 25.0f64;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut val = |name: &str| {
            argv.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--out" => out = val("--out"),
            "--baseline" => baseline = Some(val("--baseline")),
            "--repeat" => repeat = val("--repeat").parse().expect("--repeat: integer"),
            "--scale" => scale = val("--scale").parse().expect("--scale: integer"),
            "--max-regression" => {
                max_regression = val("--max-regression")
                    .parse()
                    .expect("--max-regression: float")
            }
            "--floor-us" => floor_us = val("--floor-us").parse().expect("--floor-us: float"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: compile_phases [--out FILE] [--repeat N] [--scale N] \
                     [--baseline FILE] [--max-regression F] [--floor-us F]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let machine = MachineModel::itanium2();
    let result = compile_phases(&machine, repeat, scale);
    print!("{}", result.render());

    let record = result.to_json();
    if let Err(e) = std::fs::write(&out, &record) {
        eprintln!("compile_phases: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    if let Some(base_path) = baseline {
        let base = match std::fs::read_to_string(&base_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("compile_phases: cannot read baseline {base_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match compare_to_baseline(&record, &base, max_regression, floor_us) {
            Ok(regressions) if regressions.is_empty() => {
                println!("baseline check vs {base_path}: OK (no phase mean >{max_regression}x)");
            }
            Ok(regressions) => {
                eprintln!("baseline check vs {base_path}: FAIL");
                for r in &regressions {
                    eprintln!("  regression: {r}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("baseline check vs {base_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
