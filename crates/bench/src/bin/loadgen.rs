//! `loadgen` — closed-loop load generator for the `ltspd` daemon.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--conns N] [--requests N] [--mix C:V:O]
//!         [--backend heuristic|exact|tiered] [--mode static|adaptive]
//!         [--corpus DIR] [--burst K] [--seed N] [--out FILE]
//!         [--timings] [--metrics-out FILE] [--fault-mode] [--shutdown]
//! ```
//!
//! Opens `--conns` connections; each runs a closed loop (send one
//! request, wait for its response) of `--requests` requests drawn
//! deterministically — op by the `--mix compile:verify:oracle` weights,
//! loop file from `--corpus` — from a per-connection `SplitMix64`
//! stream, so two runs with the same seed issue the same workload.
//!
//! `--burst K` prepends an open-loop phase: each connection fires `K`
//! requests back-to-back *without* reading responses, then drains them —
//! the way to push the admission queue past its high-water mark and
//! observe `overloaded` responses (backpressure, not hangs).
//!
//! The report (written to `--out`, default `results/BENCH_serve.json`)
//! gives p50/p95/p99 latency overall and split by cache hit/miss,
//! throughput, cache hit rate, and per-status counts. `--shutdown`
//! drains the server at the end.
//!
//! `--backend` stamps every *compile* request with a scheduling backend
//! (verify/oracle requests are backend-less). With `tiered`, cold
//! compiles answer heuristically and schedule an asynchronous exact
//! refinement that upgrades the cache entry in place; responses served
//! from an upgraded entry carry `cache:"upgraded"` and count as warm
//! hits here. After the main run, loadgen re-polls the corpus (bounded
//! rounds) until at least one upgraded entry is observed — refinement
//! landing is part of the tiered contract — and reports a `"tiered"`
//! block with the upgraded-hit count; zero upgraded entries after the
//! polling budget fails the run.
//!
//! `--mode adaptive` stamps every compile request with the adaptive
//! compilation mode instead: cold compiles answer with the fast static
//! schedule and enqueue an asynchronous feedback-directed refinement
//! (simulate → refine hints → re-pipeline to a certified fixpoint) that
//! upgrades the cache entry in place with the converged bytes. As with
//! tiered, `cache:"upgraded"` responses count as warm hits, a bounded
//! post-run poll waits for at least one adaptive upgrade to land, and
//! zero upgrades after the budget fails the run; the report carries a
//! matching `"adaptive"` block. Adaptive refines the heuristic backend
//! only, so `--mode adaptive` rejects `--backend exact|tiered`.
//!
//! `--timings` sets the opt-in per-request flag: every response carries
//! its server-side per-phase breakdown, which loadgen accumulates into
//! client-side histograms and reports as a `"phases"` block (p50/p99
//! per phase) — the per-phase KPI record. `--metrics-out FILE` scrapes
//! the daemon's `{"op":"metrics"}` Prometheus snapshot at the end of
//! the run (before `--shutdown`), writes it to FILE, and **fails
//! loudly** when observability disagrees with the load generator's own
//! accounting: expected phase histograms empty, panic counters nonzero
//! outside fault mode, or shed/panic counters inconsistent with the
//! drops and errors the client actually saw.
//!
//! `--fault-mode` drives a daemon running under `LTSP_FAULT` (see
//! `ltsp_server::fault`): injected connection drops are *expected*, so a
//! mid-workload EOF/reset reconnects and moves on (counted in the
//! report's `fault` block) instead of aborting, `error` responses
//! (contained handler panics) don't fail the run, and every read gets a
//! 30s deadline — a response that never comes means a wedged
//! connection, which *does* fail the run. That is the chaos-smoke CI
//! contract: faults are shed, nothing hangs.
//!
//! Pointed at an `ltspr` cluster router instead of a single daemon,
//! loadgen detects the aggregated snapshot (via `ltsp_shard_up`) and
//! adds a `"cluster"` block to the report — shard count, router
//! proxy/failover counters, and per-shard request share, hit rate, and
//! handler p99. The `--metrics-out` cross-check sums shard-labeled
//! samples so the same invariants hold against a router.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Instant;

use std::collections::BTreeMap;

use ltsp_ir::SplitMix64;
use ltsp_telemetry::prom::PromSnapshot;
use ltsp_telemetry::{json, Histogram};

struct Options {
    addr: String,
    conns: usize,
    requests: usize,
    mix: (u64, u64, u64),
    backend: Option<String>,
    mode: Option<String>,
    corpus: String,
    burst: usize,
    synthetic: usize,
    seed: u64,
    out: String,
    timings: bool,
    metrics_out: Option<String>,
    fault_mode: bool,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--conns N] [--requests N] [--mix C:V:O]\n\
         \x20              [--backend heuristic|exact|tiered] [--mode static|adaptive]\n\
         \x20              [--corpus DIR] [--synthetic N] [--burst K] [--seed N]\n\
         \x20              [--out FILE] [--timings] [--metrics-out FILE]\n\
         \x20              [--fault-mode] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut o = Options {
        addr: "127.0.0.1:7099".to_string(),
        conns: 4,
        requests: 64,
        mix: (6, 3, 1),
        backend: None,
        mode: None,
        corpus: "loops".to_string(),
        burst: 0,
        synthetic: 0,
        seed: 42,
        out: "results/BENCH_serve.json".to_string(),
        timings: false,
        metrics_out: None,
        fault_mode: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    let num =
        |v: Option<String>| -> u64 { v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()) };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => o.addr = args.next().unwrap_or_else(|| usage()),
            "--conns" => o.conns = num(args.next()).max(1) as usize,
            "--requests" => o.requests = num(args.next()) as usize,
            "--mix" => {
                let v = args.next().unwrap_or_else(|| usage());
                let parts: Vec<u64> = v.split(':').filter_map(|p| p.parse().ok()).collect();
                if parts.len() != 3 || parts.iter().sum::<u64>() == 0 {
                    usage()
                }
                o.mix = (parts[0], parts[1], parts[2]);
            }
            "--backend" => {
                o.backend = match args.next().as_deref() {
                    Some(b @ ("heuristic" | "exact" | "tiered")) => Some(b.to_string()),
                    _ => usage(),
                }
            }
            "--mode" => {
                o.mode = match args.next().as_deref() {
                    Some(m @ ("static" | "adaptive")) => Some(m.to_string()),
                    _ => usage(),
                }
            }
            "--corpus" => o.corpus = args.next().unwrap_or_else(|| usage()),
            "--burst" => o.burst = num(args.next()) as usize,
            "--synthetic" => o.synthetic = num(args.next()) as usize,
            "--dump" => {
                // Debug aid: write the synthetic kernels as .loop files and exit.
                let dir = args.next().unwrap_or_else(|| usage());
                std::fs::create_dir_all(&dir).expect("create dump dir");
                let n = o.synthetic.max(1);
                for i in 0..n {
                    let lp = synthetic_loop(i);
                    let path = format!("{dir}/syn{i}.loop");
                    std::fs::write(&path, lp.to_string()).expect("write loop");
                    eprintln!("loadgen: wrote {path}");
                }
                std::process::exit(0);
            }
            "--seed" => o.seed = num(args.next()),
            "--out" => o.out = args.next().unwrap_or_else(|| usage()),
            "--timings" => o.timings = true,
            "--metrics-out" => o.metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "--fault-mode" => o.fault_mode = true,
            "--shutdown" => o.shutdown = true,
            _ => usage(),
        }
    }
    if o.mode.as_deref() == Some("adaptive")
        && !matches!(o.backend.as_deref(), None | Some("heuristic"))
    {
        eprintln!("loadgen: --mode adaptive refines the heuristic backend only");
        std::process::exit(2);
    }
    o
}

/// A deterministic scheduling-heavy kernel: several FP streams, each
/// feeding a long dependent fma/fmul chain. Dozens of instructions and
/// high register pressure make the modulo scheduler work for a living —
/// the workload class where a schedule cache actually pays, as opposed
/// to the microsecond-scale corpus kernels. Shared with the
/// compile-phases KPI harness via [`ltsp_workloads::scheduling_heavy`].
fn synthetic_loop(i: usize) -> ltsp_ir::LoopIr {
    ltsp_workloads::scheduling_heavy(&format!("syn{i}"), 3, 9 + i % 5)
}

/// One response's accounting.
struct Sample {
    status: String,
    cache: String,
    micros: u64,
}

/// The sorted `.loop` corpus: (name, JSON-escaped text).
fn load_corpus(dir: &str) -> Vec<(String, String)> {
    // `--corpus ''` means "no on-disk corpus" — used with --synthetic to
    // benchmark a purely scheduling-heavy workload.
    if dir.is_empty() {
        return Vec::new();
    }
    let mut files: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "loop"))
            .collect(),
        Err(e) => {
            eprintln!("loadgen: cannot read corpus {dir}: {e}");
            std::process::exit(3);
        }
    };
    files.sort();
    files
        .into_iter()
        .filter_map(|p| {
            let name = p.file_stem()?.to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).ok()?;
            Some((name, json::escape(&text)))
        })
        .collect()
}

/// Builds the `i`-th request line for one connection's PRNG stream.
fn build_request(
    rng: &mut SplitMix64,
    o: &Options,
    corpus: &[(String, String)],
    conn: usize,
    i: usize,
) -> String {
    let (c, v, z) = o.mix;
    let pick = rng.next_u64() % (c + v + z);
    let op = if pick < c {
        "compile"
    } else if pick < c + v {
        "verify"
    } else {
        "oracle"
    };
    let (name, text) = &corpus[(rng.next_u64() % corpus.len() as u64) as usize];
    let flags = if o.timings { ",\"timings\":true" } else { "" };
    // The scheduling backend and compilation mode are compile-time
    // concepts; verify/oracle requests stay unstamped whatever
    // --backend/--mode say.
    let backend = match (&o.backend, op) {
        (Some(b), "compile") => format!(",\"backend\":\"{b}\""),
        _ => String::new(),
    };
    let mode = match (&o.mode, op) {
        (Some(m), "compile") => format!(",\"mode\":\"{m}\""),
        _ => String::new(),
    };
    // deadline_ms:0 keeps oracle work node-budget-bound (deterministic).
    format!(
        "{{\"op\":\"{op}\",\"id\":\"{conn}-{i}-{name}\",\"loop\":\"{text}\"{backend}{mode},\"deadline_ms\":0{flags}}}\n"
    )
}

/// Fault-mode accounting for one connection: injected drops survived.
#[derive(Default)]
struct FaultStats {
    /// Times the connection died mid-workload and was reopened.
    reconnects: u64,
    /// Requests whose responses were lost to a drop (not re-sent — an
    /// injected drop keys on the response id and would fire again).
    lost: u64,
}

/// True for the error kinds an injected connection drop produces at the
/// client (as opposed to a deadline expiry, which means a wedge).
fn is_drop(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
    )
}

/// Runs one connection's workload; returns its samples (plus survived
/// drops in fault mode).
fn run_conn(
    o: &Options,
    corpus: &[(String, String)],
    conn: usize,
) -> std::io::Result<(Vec<Sample>, FaultStats, BTreeMap<String, Histogram>)> {
    let connect = || -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
        let stream = TcpStream::connect(&o.addr)?;
        stream.set_nodelay(true)?;
        if o.fault_mode {
            // The wedge detector: under faults, a response that never
            // arrives must fail the run loudly, not hang it.
            stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
        }
        let writer = stream.try_clone()?;
        Ok((writer, BufReader::new(stream)))
    };
    let (mut writer, mut reader) = connect()?;
    let mut stats = FaultStats::default();
    let mut phases: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut rng = SplitMix64::new(o.seed ^ (conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut samples = Vec::with_capacity(o.burst + o.requests);
    let mut line = String::new();
    let read_sample = |reader: &mut BufReader<TcpStream>,
                       line: &mut String,
                       phases: &mut BTreeMap<String, Histogram>,
                       micros: u64|
     -> std::io::Result<Sample> {
        line.clear();
        if reader.read_line(line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-workload",
            ));
        }
        let v = json::parse(line).map_err(std::io::Error::other)?;
        // Opt-in server-side phase breakdown: fold each `<phase>_us`
        // field into the client's own histograms. Zero spans are skipped
        // — a request that never touched a phase is not a 0us sample of
        // that phase.
        if let Some(t) = v.get("timings") {
            if let Some(fields) = t.as_object() {
                for (k, val) in fields {
                    let (Some(name), Some(us)) = (k.strip_suffix("_us"), val.as_u64()) else {
                        continue;
                    };
                    if us > 0 {
                        phases.entry(name.to_string()).or_default().record(us);
                    }
                }
            }
        }
        Ok(Sample {
            status: v
                .get("status")
                .and_then(|s| s.as_str())
                .unwrap_or("?")
                .to_string(),
            cache: v
                .get("cache")
                .and_then(|s| s.as_str())
                .unwrap_or("-")
                .to_string(),
            micros,
        })
    };

    // Open-loop burst: flood first, drain after (latency not meaningful
    // here — recorded as 0 and excluded from percentiles).
    if o.burst > 0 {
        for i in 0..o.burst {
            writer.write_all(build_request(&mut rng, o, corpus, conn, i).as_bytes())?;
        }
        writer.flush()?;
        for got in 0..o.burst {
            match read_sample(&mut reader, &mut line, &mut phases, 0) {
                Ok(mut s) => {
                    s.micros = 0;
                    samples.push(s);
                }
                Err(e) if o.fault_mode && is_drop(&e) => {
                    // A drop mid-burst kills every response still
                    // queued behind it on this connection.
                    stats.lost += (o.burst - got) as u64;
                    stats.reconnects += 1;
                    (writer, reader) = connect()?;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
    }

    // Closed loop: one request in flight at a time.
    for i in 0..o.requests {
        let req = build_request(&mut rng, o, corpus, conn, o.burst + i);
        let t0 = Instant::now();
        let sent = writer
            .write_all(req.as_bytes())
            .and_then(|()| writer.flush());
        let outcome = sent.and_then(|()| read_sample(&mut reader, &mut line, &mut phases, 0));
        match outcome {
            Ok(mut s) => {
                s.micros = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                samples.push(s);
            }
            Err(e) if o.fault_mode && is_drop(&e) => {
                // Injected drop: the response is gone by design. Move
                // on with a fresh connection; the id is not re-sent
                // (the drop decision is deterministic per id and would
                // just fire again).
                stats.lost += 1;
                stats.reconnects += 1;
                (writer, reader) = connect()?;
            }
            Err(e) => return Err(e),
        }
    }
    Ok((samples, stats, phases))
}

/// Re-sends compile requests (stamped with `stamp` — the tiered backend
/// or the adaptive mode) for every corpus entry until at least one
/// response carries `cache:"upgraded"`, up to `max_rounds` sweeps with a
/// 10ms breather between them. Returns the number of upgraded responses
/// observed in the final sweep and the rounds used.
fn poll_for_upgrades(
    o: &Options,
    corpus: &[(String, String)],
    stamp: &str,
    max_rounds: usize,
) -> std::io::Result<(usize, usize)> {
    let stream = TcpStream::connect(&o.addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for round in 1..=max_rounds {
        let mut seen = 0usize;
        for (name, text) in corpus {
            let req = format!(
                "{{\"op\":\"compile\",\"id\":\"upgrade-poll-{round}-{name}\",\"loop\":\"{text}\",\
                 {stamp},\"deadline_ms\":0}}\n"
            );
            writer.write_all(req.as_bytes())?;
            writer.flush()?;
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed during upgrade poll",
                ));
            }
            if line.contains("\"cache\":\"upgraded\"") {
                seen += 1;
            }
        }
        if seen > 0 {
            return Ok((seen, round));
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    Ok((0, max_rounds))
}

/// One metrics-op round trip: returns the Prometheus text snapshot.
fn scrape_metrics(addr: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"op\":\"metrics\",\"id\":\"loadgen-metrics\"}\n")?;
    writer.flush()?;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed before answering metrics",
        ));
    }
    let v = json::parse(&line).map_err(std::io::Error::other)?;
    v.get("metrics")
        .and_then(|m| m.as_str())
        .map(ToString::to_string)
        .ok_or_else(|| std::io::Error::other("metrics response carries no \"metrics\" field"))
}

/// Shard indices present in an aggregated (router) metrics snapshot —
/// empty against a plain single-process daemon. Presence of the
/// `ltsp_shard_up` family is how loadgen detects it talked to `ltspr`.
fn shard_ids(snap: &PromSnapshot) -> Vec<String> {
    let mut ids: Vec<u64> = snap
        .samples
        .iter()
        .filter(|s| s.name == "ltsp_shard_up")
        .filter_map(|s| {
            s.labels
                .iter()
                .find(|(k, _)| k == "shard")
                .and_then(|(_, v)| v.parse().ok())
        })
        .collect();
    ids.sort_unstable();
    ids.into_iter().map(|i| i.to_string()).collect()
}

/// The report's `"cluster"` block: router routing/failover counters
/// plus one entry per shard (liveness, request share, hit rate, p99).
fn cluster_block(snap: &PromSnapshot, ids: &[String]) -> String {
    let v = |name: &str, labels: &[(&str, &str)]| snap.value(name, labels).unwrap_or(0.0);
    let mut out = String::from("{\n");
    out.push_str(&format!("    \"shards\": {},\n", ids.len()));
    out.push_str(&format!(
        "    \"router_proxied\": {:.0},\n",
        v("ltsp_router_proxied_total", &[])
    ));
    out.push_str(&format!(
        "    \"router_failovers\": {:.0},\n",
        v("ltsp_router_failovers_total", &[])
    ));
    out.push_str(&format!(
        "    \"router_retries_exhausted\": {:.0},\n",
        v("ltsp_router_retries_exhausted_total", &[])
    ));
    out.push_str("    \"per_shard\": {");
    for (i, s) in ids.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let requests: f64 = ["ok", "rejected", "error", "overloaded", "draining"]
            .iter()
            .map(|st| v("ltsp_requests_total", &[("shard", s), ("status", st)]))
            .sum();
        let hits = v(
            "ltsp_cache_hits_total",
            &[("shard", s), ("cache", "result")],
        );
        let misses = v(
            "ltsp_cache_misses_total",
            &[("shard", s), ("cache", "result")],
        );
        let hit_rate = if hits + misses > 0.0 {
            hits / (hits + misses)
        } else {
            0.0
        };
        let p99 = snap
            .histogram_quantile("ltsp_phase_us", &[("phase", "handler"), ("shard", s)], 0.99)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "\"{s}\": {{\"up\": {}, \"requests\": {requests:.0}, \"routed\": {:.0}, \
             \"failed\": {:.0}, \"respawns\": {:.0}, \"hit_rate\": {hit_rate:.4}, \
             \"handler_p99_us\": {p99:.0}}}",
            v("ltsp_shard_up", &[("shard", s)]),
            v("ltsp_shard_routed_total", &[("shard", s)]),
            v("ltsp_shard_failed_total", &[("shard", s)]),
            v("ltsp_shard_respawns_total", &[("shard", s)]),
        ));
    }
    out.push_str("}\n  }");
    out
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn pct_block(latencies: &mut [u64]) -> String {
    latencies.sort_unstable();
    format!(
        "{{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"count\": {}}}",
        percentile(latencies, 50.0),
        percentile(latencies, 95.0),
        percentile(latencies, 99.0),
        latencies.len()
    )
}

fn main() {
    let o = parse_args();
    let mut corpus = load_corpus(&o.corpus);
    for i in 0..o.synthetic {
        let lp = synthetic_loop(i);
        corpus.push((lp.name().to_string(), json::escape(&lp.to_string())));
    }
    if corpus.is_empty() {
        eprintln!("loadgen: no .loop files in {}", o.corpus);
        std::process::exit(3);
    }

    let t0 = Instant::now();
    type ConnResult = std::io::Result<(Vec<Sample>, FaultStats, BTreeMap<String, Histogram>)>;
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..o.conns)
            .map(|conn| {
                let o = &o;
                let corpus = &corpus;
                scope.spawn(move || run_conn(o, corpus, conn))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let mut samples = Vec::new();
    let mut fault = FaultStats::default();
    let mut phases: BTreeMap<String, Histogram> = BTreeMap::new();
    for r in results {
        match r {
            Ok((s, f, ph)) => {
                samples.extend(s);
                fault.reconnects += f.reconnects;
                fault.lost += f.lost;
                for (name, h) in ph {
                    phases.entry(name).or_default().merge(&h);
                }
            }
            Err(e) => {
                let wedged = e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut;
                if wedged {
                    eprintln!("loadgen: connection wedged (no response within deadline): {e}");
                } else {
                    eprintln!("loadgen: connection failed: {e}");
                }
                std::process::exit(3);
            }
        }
    }

    let count = |status: &str| samples.iter().filter(|s| s.status == status).count();
    let (ok, rejected, error) = (count("ok"), count("rejected"), count("error"));
    let (overloaded, draining) = (count("overloaded"), count("draining"));
    // An "upgraded" tag is a warm hit whose entry the refinement worker
    // replaced in place with exact-backend bytes — warm for accounting.
    let upgraded = samples.iter().filter(|s| s.cache == "upgraded").count();
    let hits = samples.iter().filter(|s| s.cache == "hit").count() + upgraded;
    let misses = samples.iter().filter(|s| s.cache == "miss").count();
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    // Closed-loop samples only (burst-phase latencies are recorded as 0).
    let lat = |f: &dyn Fn(&Sample) -> bool| -> Vec<u64> {
        samples
            .iter()
            .filter(|s| s.micros > 0 && f(s))
            .map(|s| s.micros)
            .collect()
    };
    let mut all = lat(&|_| true);
    let mut cold = lat(&|s| s.cache == "miss");
    let mut warm = lat(&|s| s.cache == "hit" || s.cache == "upgraded");
    let speedup = {
        let (mut c, mut w) = (cold.clone(), warm.clone());
        c.sort_unstable();
        w.sort_unstable();
        let (cp, wp) = (percentile(&c, 50.0), percentile(&w, 50.0));
        if wp > 0 {
            cp as f64 / wp as f64
        } else {
            0.0
        }
    };

    // Tiered runs must observe the upgrade path end to end: re-poll the
    // corpus (bounded rounds, fresh connection) until at least one
    // response is served from an upgraded entry. Refinement is
    // asynchronous, so the main run may finish before any exact body
    // lands — but landing at all is the tiered contract, and a poll
    // budget exhausted with zero upgrades fails the run loudly.
    let run_poll = |stamp: &str| -> (usize, usize) {
        match poll_for_upgrades(&o, &corpus, stamp, 400) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: upgrade poll failed: {e}");
                std::process::exit(3);
            }
        }
    };
    let tiered_poll: Option<(usize, usize)> =
        (o.backend.as_deref() == Some("tiered")).then(|| run_poll("\"backend\":\"tiered\""));
    // Adaptive runs have the same contract: the feedback-directed
    // refinement is asynchronous, but landing at all is part of the
    // mode, so a poll budget exhausted with zero upgrades fails the run.
    let adaptive_poll: Option<(usize, usize)> =
        (o.mode.as_deref() == Some("adaptive")).then(|| run_poll("\"mode\":\"adaptive\""));
    for (what, poll) in [("tiered", tiered_poll), ("adaptive", adaptive_poll)] {
        if let Some((seen, rounds)) = poll {
            if seen == 0 {
                eprintln!("loadgen: no upgraded {what} cache entries after {rounds} poll rounds");
                std::process::exit(1);
            }
        }
    }

    // Scrape once before rendering the report: against `ltspr` the
    // snapshot carries `ltsp_shard_up` samples, which switches the
    // report into cluster mode and feeds the `"cluster"` block below.
    let cluster_snap: Option<PromSnapshot> = scrape_metrics(&o.addr)
        .ok()
        .and_then(|t| PromSnapshot::parse(&t).ok())
        .filter(|s| !shard_ids(s).is_empty());

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"addr\": \"{}\",\n", json::escape(&o.addr)));
    out.push_str(&format!("  \"conns\": {},\n", o.conns));
    out.push_str(&format!("  \"requests_per_conn\": {},\n", o.requests));
    out.push_str(&format!("  \"burst_per_conn\": {},\n", o.burst));
    out.push_str(&format!(
        "  \"mix\": \"compile:{}:verify:{}:oracle:{}\",\n",
        o.mix.0, o.mix.1, o.mix.2
    ));
    out.push_str(&format!("  \"seed\": {},\n", o.seed));
    out.push_str(&format!("  \"corpus_files\": {},\n", corpus.len()));
    out.push_str(&format!("  \"wall_s\": {wall_s:.3},\n"));
    out.push_str(&format!(
        "  \"throughput_rps\": {:.1},\n",
        samples.len() as f64 / wall_s.max(1e-9)
    ));
    out.push_str(&format!("  \"responses\": {},\n", samples.len()));
    out.push_str(&format!(
        "  \"status_counts\": {{\"ok\": {ok}, \"rejected\": {rejected}, \"error\": {error}, \
         \"overloaded\": {overloaded}, \"draining\": {draining}}},\n"
    ));
    if o.fault_mode {
        out.push_str(&format!(
            "  \"fault\": {{\"mode\": true, \"reconnects\": {}, \"lost_responses\": {}}},\n",
            fault.reconnects, fault.lost
        ));
    }
    out.push_str(&format!("  \"cache_hits\": {hits},\n"));
    out.push_str(&format!("  \"cache_misses\": {misses},\n"));
    out.push_str(&format!("  \"cache_upgraded\": {upgraded},\n"));
    out.push_str(&format!("  \"cache_hit_rate\": {hit_rate:.4},\n"));
    if let Some(b) = &o.backend {
        out.push_str(&format!("  \"backend\": \"{b}\",\n"));
    }
    if let Some(m) = &o.mode {
        out.push_str(&format!("  \"mode\": \"{m}\",\n"));
    }
    if let Some((seen, rounds)) = tiered_poll {
        out.push_str(&format!(
            "  \"tiered\": {{\"upgraded_observed\": {seen}, \"poll_rounds\": {rounds}, \
             \"upgraded_in_run\": {upgraded}}},\n"
        ));
    }
    if let Some((seen, rounds)) = adaptive_poll {
        out.push_str(&format!(
            "  \"adaptive\": {{\"upgraded_observed\": {seen}, \"poll_rounds\": {rounds}, \
             \"upgraded_in_run\": {upgraded}}},\n"
        ));
    }
    out.push_str(&format!("  \"latency_us\": {},\n", pct_block(&mut all)));
    out.push_str(&format!(
        "  \"cold_latency_us\": {},\n",
        pct_block(&mut cold)
    ));
    out.push_str(&format!(
        "  \"warm_latency_us\": {},\n",
        pct_block(&mut warm)
    ));
    if o.timings {
        out.push_str("  \"phases\": {");
        for (i, (name, h)) in phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {{\"p50\": {}, \"p99\": {}, \"count\": {}}}",
                h.quantile(0.50).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
                h.count
            ));
        }
        out.push_str("},\n");
    }
    if let Some(snap) = &cluster_snap {
        let ids = shard_ids(snap);
        out.push_str(&format!("  \"cluster\": {},\n", cluster_block(snap, &ids)));
    }
    out.push_str(&format!("  \"speedup_warm_p50\": {speedup:.2}\n"));
    out.push_str("}\n");

    if let Some(dir) = std::path::Path::new(&o.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&o.out, &out) {
        eprintln!("loadgen: cannot write {}: {e}", o.out);
        std::process::exit(3);
    }
    print!("{out}");

    // The observability cross-check: scrape the daemon's own metrics
    // (before shutdown) and fail loudly when they disagree with what the
    // load generator just saw. This is the CI guard that the phase
    // histograms are actually fed and the chaos counters actually count.
    if let Some(path) = &o.metrics_out {
        let text = match scrape_metrics(&o.addr) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("loadgen: metrics scrape failed: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("loadgen: cannot write {path}: {e}");
            std::process::exit(3);
        }
        let snap = match PromSnapshot::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("loadgen: metrics snapshot malformed: {e}");
                std::process::exit(1);
            }
        };
        let mut bad = false;
        // Every served request crosses these lifecycle phases; compile
        // phases additionally require at least one result-cache miss.
        let mut expected = vec!["queue_wait", "dispatch", "handler", "write"];
        if misses > 0 {
            expected.push("parse");
        }
        // Router snapshots re-emit every shard sample with a `shard`
        // label; sum across shards so the same invariants hold whether
        // loadgen pointed at a daemon or at `ltspr`.
        let ids = shard_ids(&snap);
        for phase in expected {
            let n: f64 = if ids.is_empty() {
                snap.histogram_count("ltsp_phase_us", &[("phase", phase)])
                    .unwrap_or(0.0)
            } else {
                ids.iter()
                    .map(|s| {
                        snap.histogram_count("ltsp_phase_us", &[("phase", phase), ("shard", s)])
                            .unwrap_or(0.0)
                    })
                    .sum()
            };
            if n <= 0.0 {
                eprintln!("loadgen: phase histogram '{phase}' has no samples");
                bad = true;
            }
        }
        let counter = |name: &str| -> u64 {
            if ids.is_empty() {
                snap.value(name, &[]).unwrap_or(0.0) as u64
            } else {
                ids.iter()
                    .map(|s| snap.value(name, &[("shard", s)]).unwrap_or(0.0))
                    .sum::<f64>() as u64
            }
        };
        let panics = counter("ltsp_request_panics_total");
        let conn_shed = counter("ltsp_connections_shed_total");
        if o.fault_mode {
            // Every contained-panic error the client saw must be counted
            // server-side, and every injected-drop reconnect implies a
            // shed connection.
            if (panics as usize) < error {
                eprintln!(
                    "loadgen: saw {error} panic-error responses but server counted \
                     only {panics} request panics"
                );
                bad = true;
            }
            if conn_shed < fault.reconnects {
                eprintln!(
                    "loadgen: survived {} injected drops but server counted only \
                     {conn_shed} shed connections",
                    fault.reconnects
                );
                bad = true;
            }
        } else {
            for (name, v) in [
                ("ltsp_request_panics_total", panics),
                ("ltsp_connections_shed_total", conn_shed),
                (
                    "ltsp_responses_shed_total",
                    counter("ltsp_responses_shed_total"),
                ),
                (
                    "ltsp_dispatcher_deaths_total",
                    counter("ltsp_dispatcher_deaths_total"),
                ),
            ] {
                if v != 0 {
                    eprintln!("loadgen: {name} = {v} on a fault-free run");
                    bad = true;
                }
            }
        }
        if bad {
            eprintln!("loadgen: metrics disagree with load-generator accounting");
            std::process::exit(1);
        }
        eprintln!("loadgen: metrics cross-check ok ({path})");
    }

    if o.shutdown {
        if let Ok(mut s) = TcpStream::connect(&o.addr) {
            let _ = s.write_all(b"{\"op\":\"shutdown\",\"id\":\"loadgen-shutdown\"}\n");
            let mut line = String::new();
            let _ = BufReader::new(s).read_line(&mut line);
        }
    }

    // Contained handler panics surface as `error` responses — under
    // fault injection that is the success criterion, not a failure.
    if error > 0 && !o.fault_mode {
        eprintln!("loadgen: {error} error responses");
        std::process::exit(1);
    }
}
