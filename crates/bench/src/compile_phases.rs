//! The benchmark-locked compile-latency KPI harness.
//!
//! Compiles two kernel groups — the canonical [`kernel_library`] corpus
//! and a *scale* group of scheduling-heavy synthetic loops (the workload
//! class the serving path sees cold, where compile latency is dominated
//! by the MRT and scheduler phases) — once per latency policy and per
//! repetition, with a [`PhaseTimer`] attached to every compile. Each
//! compiler phase (`parse`, `hlo`, `ddg`, `mrt`, `sched`, `regalloc`,
//! `render`) gets one sample per compile, folded into a per-group
//! histogram.
//!
//! The output is a machine-readable record
//! (`ltsp.bench.compile_phases.v1`). A committed run of it in `results/`
//! is the **locked baseline**: the `compile_phases` binary re-runs the
//! harness in CI and [`compare_to_baseline`] fails loudly when any phase
//! bucket grossly regresses (mean above `factor ×` baseline and past an
//! absolute floor that keeps microsecond-scale noise out of the gate).
//!
//! Invariants (see DESIGN.md §18): timing is observational — the harness
//! compiles through the exact production entry points
//! ([`compile_loop_with_profile_phased`] and the shared report renderer)
//! and changes nothing about their results; any optimization judged by
//! this harness must leave every compiled artifact byte-identical.

use ltsp_core::{compile_loop_with_profile_phased, CompileConfig, LatencyPolicy};
use ltsp_ir::{parse_loop, LoopIr};
use ltsp_machine::MachineModel;
use ltsp_server::render_compile_report;
use ltsp_telemetry::json::{self, JsonValue};
use ltsp_telemetry::phase::{Phase, PhaseTimer};
use ltsp_telemetry::{Histogram, Telemetry};
use ltsp_workloads::{kernel_library, scheduling_heavy};

/// The compiler phases the harness buckets, in pipeline order.
pub const COMPILE_PHASES: [Phase; 7] = [
    Phase::Parse,
    Phase::Hlo,
    Phase::Ddg,
    Phase::Mrt,
    Phase::Sched,
    Phase::Regalloc,
    Phase::Render,
];

/// One phase's KPI bucket: a latency histogram over per-compile samples
/// plus the exact accumulated wall time.
#[derive(Debug, Clone, Default)]
pub struct PhaseBucket {
    /// Per-compile phase latencies in microseconds.
    pub hist: Histogram,
    /// Total microseconds across all compiles (exact, not bucketed).
    pub total_us: u64,
}

/// KPIs for one kernel group.
#[derive(Debug, Clone)]
pub struct GroupKpis {
    /// Group name (`library` or `scale`).
    pub group: &'static str,
    /// Kernels in the group.
    pub kernels: usize,
    /// Compiles performed (kernels × policies × repeat).
    pub compiles: u64,
    /// One bucket per entry of [`COMPILE_PHASES`], in that order.
    pub phases: Vec<(Phase, PhaseBucket)>,
}

/// The harness result: per-group per-phase compile-latency KPIs.
#[derive(Debug, Clone)]
pub struct CompilePhasesResult {
    /// Repetitions per kernel × policy.
    pub repeat: usize,
    /// Scale-group size multiplier.
    pub scale: usize,
    /// The measured groups.
    pub groups: Vec<GroupKpis>,
}

/// The scale group: scheduling-heavy loops in the size class the serving
/// path compiles cold (~100–300 instructions). Wider and deeper than the
/// `loadgen --synthetic` kernels so the II-escalation and MRT-probing hot
/// paths dominate the measurement.
fn scale_kernels(scale: usize) -> Vec<LoopIr> {
    let n = 4 * scale.max(1);
    (0..n)
        .map(|i| scheduling_heavy(&format!("scale{i}"), 3 + i % 3, 9 + (3 * i) % 12))
        .collect()
}

/// The latency policies every kernel is compiled under (matches the
/// reproduce record's phase-KPI source).
const POLICIES: [LatencyPolicy; 4] = [
    LatencyPolicy::Baseline,
    LatencyPolicy::AllLoadsL3,
    LatencyPolicy::AllFpLoadsL2,
    LatencyPolicy::HloHints,
];

fn measure_group(
    group: &'static str,
    kernels: &[(String, LoopIr)],
    machine: &MachineModel,
    repeat: usize,
) -> GroupKpis {
    let tel = Telemetry::disabled();
    let mut phases: Vec<(Phase, PhaseBucket)> = COMPILE_PHASES
        .iter()
        .map(|&p| (p, PhaseBucket::default()))
        .collect();
    let mut compiles = 0u64;
    // Render each kernel to its wire text once, outside any timer: the
    // parse bucket measures `parse_loop`, not the printer.
    let texts: Vec<String> = kernels.iter().map(|(_, lp)| lp.to_string()).collect();
    for policy in POLICIES {
        let cfg = CompileConfig::new(policy);
        for (text, _) in texts.iter().zip(kernels.iter()) {
            for _ in 0..repeat {
                let timer = PhaseTimer::new();
                let lp = timer.time(Phase::Parse, || parse_loop(text).expect("printed loop"));
                let compiled =
                    compile_loop_with_profile_phased(&lp, machine, &cfg, 100.0, &tel, Some(&timer));
                let report = timer.time(Phase::Render, || {
                    render_compile_report(&compiled, policy, 100.0)
                });
                std::hint::black_box(report);
                compiles += 1;
                for (phase, bucket) in &mut phases {
                    let us = timer.get_us(*phase);
                    bucket.hist.record(us);
                    bucket.total_us += us;
                }
            }
        }
    }
    GroupKpis {
        group,
        kernels: kernels.len(),
        compiles,
        phases,
    }
}

/// Runs the harness: compiles both kernel groups `repeat` times per
/// policy with phase attribution and returns the bucketed KPIs.
pub fn compile_phases(machine: &MachineModel, repeat: usize, scale: usize) -> CompilePhasesResult {
    let library: Vec<(String, LoopIr)> = kernel_library()
        .into_iter()
        .map(|(n, lp)| (n.to_string(), lp))
        .collect();
    let scaled: Vec<(String, LoopIr)> = scale_kernels(scale)
        .into_iter()
        .map(|lp| (lp.name().to_string(), lp))
        .collect();
    CompilePhasesResult {
        repeat,
        scale,
        groups: vec![
            measure_group("library", &library, machine, repeat),
            measure_group("scale", &scaled, machine, repeat),
        ],
    }
}

impl CompilePhasesResult {
    /// The machine-readable record (`ltsp.bench.compile_phases.v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"ltsp.bench.compile_phases.v1\",\n");
        s.push_str(&format!("  \"repeat\": {},\n", self.repeat));
        s.push_str(&format!("  \"scale\": {},\n", self.scale));
        s.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            ltsp_par::default_parallelism()
        ));
        s.push_str("  \"groups\": {\n");
        for (gi, g) in self.groups.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {{\"kernels\": {}, \"compiles\": {}, \"phases\": {{\n",
                g.group, g.kernels, g.compiles
            ));
            for (pi, (phase, b)) in g.phases.iter().enumerate() {
                let sep = if pi + 1 < g.phases.len() { "," } else { "" };
                s.push_str(&format!(
                    "      \"{}\": {{\"p50\": {}, \"p99\": {}, \"count\": {}, \
                     \"total_us\": {}, \"mean_us\": {:.1}}}{}\n",
                    phase.name(),
                    b.hist.quantile(0.50).unwrap_or(0),
                    b.hist.quantile(0.99).unwrap_or(0),
                    b.hist.count,
                    b.total_us,
                    b.mean_us(),
                    sep
                ));
            }
            let sep = if gi + 1 < self.groups.len() { "," } else { "" };
            s.push_str(&format!("    }}}}{sep}\n"));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// A human-readable per-group table (the `results/` before/after
    /// artifact is two of these side by side).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for g in &self.groups {
            s.push_str(&format!(
                "compile phases [{}]: {} kernels, {} compiles\n",
                g.group, g.kernels, g.compiles
            ));
            s.push_str("  phase      p50_us    p99_us   mean_us    total_ms\n");
            for (phase, b) in &g.phases {
                s.push_str(&format!(
                    "  {:<9} {:>7} {:>9} {:>9.1} {:>11.3}\n",
                    phase.name(),
                    b.hist.quantile(0.50).unwrap_or(0),
                    b.hist.quantile(0.99).unwrap_or(0),
                    b.mean_us(),
                    b.total_us as f64 / 1e3
                ));
            }
        }
        s
    }
}

impl PhaseBucket {
    /// Mean microseconds per compile.
    pub fn mean_us(&self) -> f64 {
        if self.hist.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.hist.count as f64
        }
    }
}

/// One gross per-phase regression against the locked baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRegression {
    /// Kernel group the bucket belongs to.
    pub group: String,
    /// Phase name.
    pub phase: String,
    /// Current mean microseconds per compile.
    pub current_mean_us: f64,
    /// Baseline mean microseconds per compile.
    pub baseline_mean_us: f64,
    /// `current / baseline`.
    pub ratio: f64,
}

impl std::fmt::Display for PhaseRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: mean {:.1}us vs baseline {:.1}us ({:.2}x)",
            self.group, self.phase, self.current_mean_us, self.baseline_mean_us, self.ratio
        )
    }
}

fn group_phase_means(doc: &JsonValue) -> Result<Vec<(String, String, f64)>, String> {
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema")?;
    if schema != "ltsp.bench.compile_phases.v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let groups = doc
        .get("groups")
        .and_then(JsonValue::as_object)
        .ok_or("missing groups")?;
    let mut out = Vec::new();
    for (gname, g) in groups {
        let phases = g
            .get("phases")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| format!("group {gname}: missing phases"))?;
        for (pname, p) in phases {
            let mean = p
                .get("mean_us")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("{gname}/{pname}: missing mean_us"))?;
            let count = p.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
            if count > 0 {
                out.push((gname.clone(), pname.clone(), mean));
            }
        }
    }
    Ok(out)
}

/// Compares a current harness record against the locked baseline.
///
/// A phase bucket regresses when its mean exceeds `factor ×` the
/// baseline mean **and** the absolute growth exceeds `floor_us` (wall
/// clock at microsecond scale is noisy; the gate is for gross
/// regressions, not jitter). Buckets present on only one side are
/// ignored — adding a phase is not a regression.
///
/// # Errors
///
/// When either document does not parse as a
/// `ltsp.bench.compile_phases.v1` record.
pub fn compare_to_baseline(
    current: &str,
    baseline: &str,
    factor: f64,
    floor_us: f64,
) -> Result<Vec<PhaseRegression>, String> {
    let cur = json::parse(current).map_err(|e| format!("current record: {e}"))?;
    let base = json::parse(baseline).map_err(|e| format!("baseline record: {e}"))?;
    let cur_means = group_phase_means(&cur).map_err(|e| format!("current record: {e}"))?;
    let base_means = group_phase_means(&base).map_err(|e| format!("baseline record: {e}"))?;
    let mut regressions = Vec::new();
    for (group, phase, mean) in &cur_means {
        let Some((_, _, base_mean)) = base_means.iter().find(|(g, p, _)| g == group && p == phase)
        else {
            continue;
        };
        if *mean > base_mean * factor && *mean - base_mean > floor_us {
            regressions.push(PhaseRegression {
                group: group.clone(),
                phase: phase.clone(),
                current_mean_us: *mean,
                baseline_mean_us: *base_mean,
                ratio: if *base_mean > 0.0 {
                    *mean / *base_mean
                } else {
                    f64::INFINITY
                },
            });
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(library_sched_mean: f64, scale_sched_mean: f64) -> String {
        format!(
            r#"{{"schema": "ltsp.bench.compile_phases.v1", "repeat": 1, "scale": 1,
               "host_parallelism": 1,
               "groups": {{
                 "library": {{"kernels": 17, "compiles": 68, "phases": {{
                   "sched": {{"p50": 1, "p99": 2, "count": 68, "total_us": 100,
                              "mean_us": {library_sched_mean}}}}}}},
                 "scale": {{"kernels": 4, "compiles": 16, "phases": {{
                   "sched": {{"p50": 1, "p99": 2, "count": 16, "total_us": 100,
                              "mean_us": {scale_sched_mean}}}}}}}
               }}}}"#
        )
    }

    #[test]
    fn equal_records_have_no_regressions() {
        let r = record(100.0, 1000.0);
        assert_eq!(compare_to_baseline(&r, &r, 2.0, 25.0).unwrap(), vec![]);
    }

    #[test]
    fn gross_regression_is_reported_per_group() {
        let base = record(100.0, 1000.0);
        let cur = record(120.0, 2500.0);
        let regs = compare_to_baseline(&cur, &base, 2.0, 25.0).unwrap();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].group, "scale");
        assert_eq!(regs[0].phase, "sched");
        assert!((regs[0].ratio - 2.5).abs() < 1e-9);
    }

    #[test]
    fn absolute_floor_filters_microsecond_noise() {
        // 3x on a 4us mean is jitter, not a regression.
        let base = record(4.0, 1000.0);
        let cur = record(12.0, 1000.0);
        assert_eq!(compare_to_baseline(&cur, &base, 2.0, 25.0).unwrap(), vec![]);
    }

    #[test]
    fn schema_mismatch_is_loud() {
        let good = record(1.0, 1.0);
        let bad = good.replace("compile_phases.v1", "other.v9");
        assert!(compare_to_baseline(&good, &bad, 2.0, 25.0).is_err());
    }

    #[test]
    fn harness_buckets_every_phase() {
        let m = MachineModel::itanium2();
        // Tiny configuration: 1 rep over the library + 4 scale kernels is
        // still a few hundred compiles; keep the test meaningful but fast
        // by measuring the scale group at its smallest size.
        let r = compile_phases(&m, 1, 1);
        assert_eq!(r.groups.len(), 2);
        for g in &r.groups {
            assert_eq!(g.phases.len(), COMPILE_PHASES.len());
            assert_eq!(g.compiles, (g.kernels * POLICIES.len()) as u64);
            for (phase, b) in &g.phases {
                assert_eq!(
                    b.hist.count,
                    g.compiles,
                    "{}: one sample per compile",
                    phase.name()
                );
            }
            // The scheduler does real work on every kernel group.
            let sched = &g.phases[4].1;
            assert!(sched.total_us > 0, "sched bucket must not be empty");
        }
        // The record round-trips through the baseline comparator.
        let j = r.to_json();
        assert_eq!(compare_to_baseline(&j, &j, 2.0, 25.0).unwrap(), vec![]);
    }
}
