//! Fig. 5: the analytic stall-reduction curves, cross-validated against
//! the execution simulator.

use ltsp_core::theory;
use ltsp_core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp_ir::{DataClass, LoopBuilder};
use ltsp_machine::MachineModel;
use ltsp_memsim::{Executor, ExecutorConfig, StreamMode};

/// The Fig. 5 data: one curve per coverage ratio, plus a simulator
/// validation point.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// `(coverage, [(k, reduction%)])` curves.
    pub curves: Vec<(f64, Vec<(u32, f64)>)>,
    /// Measured stall reduction (percent) of a boosted single-load loop
    /// versus baseline on the simulator.
    pub simulated_reduction: f64,
    /// The analytic prediction for the simulated configuration.
    pub predicted_reduction: f64,
}

impl Fig5Result {
    /// Renders the figure as text (the paper's y-axis values per k).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "Fig. 5 — stall reduction vs clustering factor (Eq. 2)");
        let _ = write!(s, "{:>10}", "k");
        for k in 1..=8 {
            let _ = write!(s, " {k:>7}");
        }
        let _ = writeln!(s);
        for (c, pts) in &self.curves {
            let _ = write!(s, "c = {c:>6.2}");
            for (_, r) in pts {
                let _ = write!(s, " {r:>6.1}%");
            }
            let _ = writeln!(s);
        }
        let _ = writeln!(
            s,
            "simulator check: measured {:.1}% vs predicted {:.1}% stall reduction",
            self.simulated_reduction, self.predicted_reduction
        );
        s
    }
}

/// Generates Fig. 5 and validates one point on the simulator: a
/// single-load memory-missing loop, baseline vs boosted, compared against
/// Eq. 2's prediction from the *measured* base stall per iteration.
pub fn fig5() -> Fig5Result {
    let curves = theory::fig5_curves();
    let machine = MachineModel::itanium2();

    // A single delinquent load (large stride: every access misses to
    // memory) plus an add and a store of the result.
    let build = || {
        let mut b = LoopBuilder::new("fig5-loop");
        let src = b.affine_ref("a[i]", DataClass::Int, 0x100_0000, 256, 4);
        let c = b.live_in_gr("c");
        let v = b.load(src);
        let s = b.add(v, c);
        let dst = b.affine_ref("y[i]", DataClass::Int, 0x9000_0000, 4, 4);
        b.store(dst, s);
        b.build().expect("fig5 loop is well-formed")
    };
    let lp = build();

    // Disable prefetching so the raw latency is exposed (the Sec. 2
    // setting), then compare baseline vs L3-boosted schedules.
    let base_cfg = CompileConfig::new(LatencyPolicy::Baseline).with_prefetch(false);
    let boost_cfg = CompileConfig::new(LatencyPolicy::AllLoadsL3)
        .with_threshold(0)
        .with_prefetch(false);
    let trip = 4000u64;
    let base = compile_loop_with_profile(&lp, &machine, &base_cfg, trip as f64);
    let boost = compile_loop_with_profile(&lp, &machine, &boost_cfg, trip as f64);

    let run = |c: &ltsp_core::CompiledLoop| {
        let mut ex = Executor::new(
            &c.lp,
            &c.kernel,
            &machine,
            c.regs_total,
            ExecutorConfig {
                stream_mode: StreamMode::Progressive,
                ..ExecutorConfig::default()
            },
        );
        ex.run_entry(trip);
        *ex.counters()
    };
    let cb = run(&base);
    let cx = run(&boost);

    let measured = if cb.be_exe_bubble == 0 {
        0.0
    } else {
        100.0 * (1.0 - cx.be_exe_bubble as f64 / cb.be_exe_bubble as f64)
    };

    // Analytic prediction: L from the measured base stall per iteration,
    // d and k from the boosted schedule.
    let l = (cb.be_exe_bubble as f64 / trip as f64).max(1.0);
    let d = f64::from(
        machine.load_latency(
            DataClass::Int,
            ltsp_machine::LatencyQuery::Hinted(ltsp_ir::LatencyHint::L3),
        ) - 1,
    );
    let k = theory::clustering_factor(d as u32, boost.kernel.ii());
    let predicted = theory::stall_reduction_percent((d / l).min(1.0), k);

    Fig5Result {
        curves,
        simulated_reduction: measured,
        predicted_reduction: predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_match_equation_two() {
        let r = fig5();
        assert_eq!(r.curves.len(), 4);
        // c=1 curve is flat at 100.
        let full = &r.curves[0];
        assert!(full.1.iter().all(|&(_, v)| (v - 100.0).abs() < 1e-9));
        // c=0.01, k=3 is about 67%.
        let low = &r.curves[3];
        assert!((low.1[2].1 - 67.0).abs() < 1.0);
    }

    #[test]
    fn simulator_confirms_the_direction_and_magnitude() {
        let r = fig5();
        assert!(
            r.simulated_reduction > 30.0,
            "boosting a delinquent load must cut stalls substantially: {:.1}%",
            r.simulated_reduction
        );
        // The analytic model should land in the same regime.
        assert!(
            (r.simulated_reduction - r.predicted_reduction).abs() < 35.0,
            "measured {:.1}% vs predicted {:.1}%",
            r.simulated_reduction,
            r.predicted_reduction
        );
    }

    #[test]
    fn render_contains_all_curves() {
        let s = fig5().render();
        assert!(s.contains("c =   1.00"));
        assert!(s.contains("c =   0.01"));
        assert!(s.contains("simulator check"));
    }
}
