//! Sec. 4.5 register statistics and the Sec. 3.3 compile-time proxy.

use ltsp_core::{run_suite, CompileConfig, LatencyPolicy, RunConfig, SuiteRun};
use ltsp_machine::MachineModel;
use ltsp_workloads::cpu2006;

/// Register-pressure statistics of pipelined loops, baseline vs HLO hints
/// (no PGO) over CPU2006 — the paper's Sec. 4.5 first block.
#[derive(Debug, Clone)]
pub struct RegStatsResult {
    /// Summed (GR, FR, PR) registers over pipelined loops, baseline.
    pub base: (u64, u64, u64),
    /// Summed (GR, FR, PR) registers, HLO hints.
    pub hlo: (u64, u64, u64),
    /// Average fraction of the architected supply used per loop (HLO arm),
    /// per class.
    pub supply_fraction: (f64, f64, f64),
    /// Estimated spill counts outside pipelined loops (base, HLO) — the
    /// pressure the loops' register usage exports to surrounding code.
    pub spills: (u64, u64),
}

impl RegStatsResult {
    /// Percent growth per register class.
    pub fn growth(&self) -> (f64, f64, f64) {
        let pct = |b: u64, h: u64| 100.0 * (h as f64 / b.max(1) as f64 - 1.0);
        (
            pct(self.base.0, self.hlo.0),
            pct(self.base.1, self.hlo.1),
            pct(self.base.2, self.hlo.2),
        )
    }

    /// Percent growth of outside-loop spills (paper: +1.8%).
    pub fn spill_growth(&self) -> f64 {
        100.0 * (self.spills.1 as f64 / self.spills.0.max(1) as f64 - 1.0)
    }

    /// Renders the statistics block.
    pub fn render(&self) -> String {
        let (g, f, p) = self.growth();
        format!(
            "Sec. 4.5 — register statistics (CPU2006, HLO hints vs baseline, no PGO)\n\
             GR {:+.1}%  FR {:+.1}%  PR {:+.1}%   (paper: +14% / +20% / +35%)\n\
             avg supply used (HLO): GR {:.1}%  FR {:.1}%  PR {:.1}%  (paper: < 20%)\n\
             outside-loop spill growth: {:+.1}% (paper: +1.8%)\n",
            g,
            f,
            p,
            100.0 * self.supply_fraction.0,
            100.0 * self.supply_fraction.1,
            100.0 * self.supply_fraction.2,
            self.spill_growth()
        )
    }
}

fn reg_sums(run: &SuiteRun) -> (u64, u64, u64) {
    let mut s = (0u64, 0u64, 0u64);
    for b in &run.runs {
        for l in &b.loops {
            if l.pipelined {
                s.0 += u64::from(l.regs.0);
                s.1 += u64::from(l.regs.1);
                s.2 += u64::from(l.regs.2);
            }
        }
    }
    s
}

/// Spills exported to surrounding code: registers a loop occupies beyond
/// a caller-saved budget force saves/restores around the loop.
fn spill_estimate(run: &SuiteRun) -> u64 {
    const FREE_BUDGET: u32 = 40;
    let mut total = 1u64; // avoid a zero denominator in ratios
    for b in &run.runs {
        for l in &b.loops {
            let used = l.regs.0 + l.regs.1;
            total += u64::from(used.saturating_sub(FREE_BUDGET));
        }
    }
    total
}

/// Computes the Sec. 4.5 register statistics.
pub fn regstats(machine: &MachineModel, scale: f64) -> RegStatsResult {
    let benchs = cpu2006();
    let base_rc = RunConfig::new(CompileConfig::new(LatencyPolicy::Baseline).with_pgo(false))
        .with_entry_scale(scale);
    let hlo_rc = RunConfig::new(CompileConfig::new(LatencyPolicy::HloHints).with_pgo(false))
        .with_entry_scale(scale);
    let base = run_suite(&benchs, machine, &base_rc);
    let hlo = run_suite(&benchs, machine, &hlo_rc);

    let supply = machine.registers();
    let mut fracs = (0.0, 0.0, 0.0);
    let mut n = 0u32;
    for b in &hlo.runs {
        for l in &b.loops {
            if l.pipelined {
                fracs.0 += f64::from(l.regs.0) / f64::from(supply.total_gr);
                fracs.1 += f64::from(l.regs.1) / f64::from(supply.total_fr);
                fracs.2 += f64::from(l.regs.2) / f64::from(supply.total_pr);
                n += 1;
            }
        }
    }
    if n > 0 {
        fracs = (
            fracs.0 / f64::from(n),
            fracs.1 / f64::from(n),
            fracs.2 / f64::from(n),
        );
    }

    RegStatsResult {
        base: reg_sums(&base),
        hlo: reg_sums(&hlo),
        supply_fraction: fracs,
        spills: (spill_estimate(&base), spill_estimate(&hlo)),
    }
}

/// Compile-time proxy: total modulo-scheduling attempts, baseline vs HLO
/// hints. The paper measured the wall-clock increase "in the noise range
/// (0.5%)"; attempts are the mechanism behind it (extra scheduling rounds
/// when register allocation fails).
#[derive(Debug, Clone)]
pub struct CompileTimeResult {
    /// Total scheduling attempts, baseline.
    pub base_attempts: u64,
    /// Total scheduling attempts, HLO hints.
    pub hlo_attempts: u64,
}

impl CompileTimeResult {
    /// Percent growth in attempts.
    pub fn growth(&self) -> f64 {
        100.0 * (self.hlo_attempts as f64 / self.base_attempts.max(1) as f64 - 1.0)
    }

    /// Renders the block.
    pub fn render(&self) -> String {
        format!(
            "Sec. 3.3 — scheduling attempts: baseline {}, HLO hints {} ({:+.1}%; paper: compile time +0.5%)\n",
            self.base_attempts,
            self.hlo_attempts,
            self.growth()
        )
    }
}

/// Counts scheduling attempts across CPU2006 under both arms.
pub fn compile_time(machine: &MachineModel, scale: f64) -> CompileTimeResult {
    let benchs = cpu2006();
    let attempts = |policy: LatencyPolicy| -> u64 {
        let rc = RunConfig::new(CompileConfig::new(policy).with_pgo(false)).with_entry_scale(scale);
        run_suite(&benchs, machine, &rc)
            .runs
            .iter()
            .flat_map(|b| &b.loops)
            .map(|l| u64::from(l.schedule_attempts))
            .sum()
    };
    CompileTimeResult {
        base_attempts: attempts(LatencyPolicy::Baseline),
        hlo_attempts: attempts(LatencyPolicy::HloHints),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.03;

    #[test]
    fn register_pressure_grows_moderately() {
        let m = MachineModel::itanium2();
        let r = regstats(&m, SCALE);
        let (g, f, p) = r.growth();
        assert!(g >= 0.0, "GR growth {g:+.1}%");
        assert!(f >= 0.0, "FR growth {f:+.1}%");
        assert!(p >= 0.0, "PR growth {p:+.1}%");
        assert!(
            f > 0.0 || g > 0.0 || p > 0.0,
            "boosting must consume extra registers somewhere"
        );
        // Far from exhausting the supply.
        assert!(r.supply_fraction.0 < 0.6);
        assert!(r.supply_fraction.1 < 0.6);
        let s = r.render();
        assert!(s.contains("register statistics"));
    }

    #[test]
    fn attempts_grow_slightly() {
        let m = MachineModel::itanium2();
        let r = compile_time(&m, SCALE);
        assert!(r.hlo_attempts >= r.base_attempts);
        assert!(
            r.growth() < 50.0,
            "attempt growth should be modest: {:+.1}%",
            r.growth()
        );
    }
}
