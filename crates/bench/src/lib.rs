//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each `figN`/case-study function runs the corresponding experiment on
//! the synthetic suites and returns both structured results and a
//! rendered text block shaped like the paper's artifact. The `reproduce`
//! binary prints them; `EXPERIMENTS.md` records paper-vs-measured.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`fig5`] | Fig. 5 — stall reduction vs clustering factor (Eq. 2) |
//! | [`fig7`] | Fig. 7 — headroom with trip-count thresholds (PGO) |
//! | [`fig8`] | Fig. 8 — blanket FP-L2 vs HLO hints (PGO) |
//! | [`fig9`] | Fig. 9 — headroom vs HLO hints without PGO |
//! | [`fig10`] | Fig. 10 + Sec. 4.5 — cycle accounting & OzQ statistics |
//! | [`mcf_case_study`] | Sec. 4.4 — 429.mcf `refresh_potential()` |
//! | [`regstats`] | Sec. 4.5 — register pressure & spill statistics |
//! | [`compile_time`] | Sec. 3.3 — extra scheduling attempts |
//! | [`no_prefetch_headroom`] | Sec. 4.2 — headroom with prefetching off |
//! | [`versioning_experiment`] | Sec. 6 outlook — trip-count versioning |
//! | [`miss_sampling_experiment`] | Sec. 6 outlook — dynamic miss sampling |
//! | [`ozq_capacity_ablation`] | Sec. 4.5 claim — more queuing, more benefit |
//! | [`boost_magnitude_ablation`] | Sec. 2.2 guidance — 20-30 cycle sweet spot |
//! | [`oracle_gap`] | E-oracle — heuristic II vs exact-oracle minimal II |
//! | [`adaptive_gap`] | E-adaptive — feedback-directed hints vs static policies |

mod adaptive_gap;
pub mod bench_record;
pub mod compile_phases;
mod experiments;
mod extensions;
mod fig5;
mod mcf;
pub mod microbench;
mod oracle_gap;
mod stats;

pub use adaptive_gap::{adaptive_gap, AdaptiveGapResult, AdaptiveRow};
pub use bench_record::{merged_bench_json, CANONICAL_EXPERIMENTS};
pub use experiments::{
    fig10, fig7, fig8, fig9, no_prefetch_headroom, AccountingResult, GainExperiment,
};
pub use extensions::{
    balanced_recurrence_experiment, boost_magnitude_ablation, issue_width_ablation,
    miss_sampling_experiment, mve_code_size_ablation, ozq_capacity_ablation, versioning_experiment,
    AblationSeries, BalancedResult,
};
pub use fig5::{fig5, Fig5Result};
pub use mcf::{mcf_case_study, McfCaseStudy};
pub use microbench::{Bench, BenchResult};
pub use oracle_gap::{oracle_gap, OracleGapResult};
pub use stats::{compile_time, regstats, CompileTimeResult, RegStatsResult};
