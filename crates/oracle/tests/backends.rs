//! Cross-backend differential suite: the heuristic pipeliner vs. the
//! exact scheduling backend, over the committed kernel library and the
//! same 200-case fixed-seed fuzz corpus the oracle differential run
//! uses.
//!
//! Invariants pinned here (each failure is a real bug in one backend):
//! - exact II ≤ heuristic II (the backend never regresses the caller);
//! - both schedules pass the independent validator;
//! - whenever the oracle verdict is `Exact`, the exact backend's emitted
//!   II equals the proven minimum (the backend actually delivers the
//!   optimality the proof promises, register allocation included).

use ltsp_ddg::Ddg;
use ltsp_ir::LoopIr;
use ltsp_machine::MachineModel;
use ltsp_oracle::{exact_schedule, prove_min_ii, validate_schedule, IiVerdict, OracleOptions};
use ltsp_pipeliner::{acyclic_schedule, pipeline_loop, ModuloSchedule, PipelineOptions};

const SEED0: u64 = 0x5eed;
const CASES: u64 = 200;

fn opts() -> OracleOptions {
    OracleOptions {
        node_budget: 30_000,
        ..OracleOptions::default()
    }
}

/// Runs one loop through both backends and checks every cross-backend
/// invariant. Returns (heuristic II, exact II, proven_optimal).
fn cross_check(name: &str, lp: &LoopIr, m: &MachineModel) -> (u32, u32, bool) {
    let ddg = Ddg::build_with_load_floor(lp, m, 0);
    let heur: ModuloSchedule = match pipeline_loop(lp, m, &|_| None, &PipelineOptions::default()) {
        Ok(p) => p.schedule,
        Err(_) => acyclic_schedule(lp, m, &ddg),
    };
    validate_schedule(lp, &ddg, &heur, m)
        .unwrap_or_else(|v| panic!("{name}: heuristic schedule rejected: {v:?}"));

    let r = exact_schedule(lp, m, &ddg, &heur, &opts())
        .unwrap_or_else(|v| panic!("{name}: exact backend rejected: {v:?}"));
    assert!(
        r.schedule.ii() <= heur.ii(),
        "{name}: exact II {} above heuristic II {}",
        r.schedule.ii(),
        heur.ii()
    );
    validate_schedule(lp, &ddg, &r.schedule, m)
        .unwrap_or_else(|v| panic!("{name}: exact schedule rejected: {v:?}"));

    // Same proof the oracle op runs: when it resolves, the backend must
    // emit at exactly the proven minimum.
    match prove_min_ii(lp, m, &ddg, heur.ii(), &opts()) {
        IiVerdict::Exact { optimal_ii, .. } => {
            assert_eq!(
                r.schedule.ii(),
                optimal_ii,
                "{name}: verdict is Exact but the backend emitted II {} != proven {}",
                r.schedule.ii(),
                optimal_ii
            );
            assert!(r.proven_optimal, "{name}: optimality flag must be set");
        }
        IiVerdict::BoundedUnknown { proven_lower, .. } => {
            assert!(
                r.schedule.ii() >= proven_lower,
                "{name}: emitted II below a proven lower bound"
            );
        }
    }
    (heur.ii(), r.schedule.ii(), r.proven_optimal)
}

#[test]
fn kernel_library_exact_matches_proven_minimum() {
    let m = MachineModel::itanium2();
    let lib = ltsp_workloads::kernel_library();
    assert_eq!(lib.len(), 17);
    let mut proven = 0usize;
    for (name, lp) in &lib {
        let (heur_ii, exact_ii, proven_optimal) = cross_check(name, lp, &m);
        assert!(exact_ii <= heur_ii);
        // Acceptance bar: every library kernel gets a validator-certified
        // schedule at the oracle-proven minimal II.
        assert!(
            proven_optimal,
            "{name}: library kernel not emitted at a proven-minimal II"
        );
        proven += 1;
    }
    assert_eq!(proven, 17, "all 17 kernels proven optimal");
}

#[test]
fn fixed_seed_fuzz_corpus_cross_backend() {
    let m = MachineModel::itanium2();
    let mut refined = 0usize;
    let mut proven = 0usize;
    for seed in SEED0..SEED0 + CASES {
        let lp = ltsp_workloads::random_loop(seed);
        let name = format!("random-{seed:x}");
        let (heur_ii, exact_ii, proven_optimal) = cross_check(&name, &lp, &m);
        if exact_ii < heur_ii {
            refined += 1;
        }
        if proven_optimal {
            proven += 1;
        }
    }
    // The known corpus shape: one gap-1 outlier the exact backend closes,
    // and the harness resolves most cases (mirrors the oracle suite's
    // "must actually prove things" bar).
    assert!(refined >= 1, "the 0x5f71 outlier must be refined");
    assert!(
        proven * 2 > CASES as usize,
        "exact backend proved only {proven}/{CASES} cases optimal"
    );
    println!("cross-backend fuzz: {CASES} cases, {proven} proven optimal, {refined} refined");
}
