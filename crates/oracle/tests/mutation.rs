//! Mutation tests for the independent validator: take a schedule the
//! validator certifies, apply a targeted mutation that breaks exactly one
//! constraint class, and assert the validator rejects the mutant *with
//! the right violation kind*. This is the validator's own soundness
//! suite — a checker that certifies everything is worse than no checker.

use ltsp_ddg::Ddg;
use ltsp_ir::{DataClass, InstId, LoopBuilder, LoopIr};
use ltsp_machine::MachineModel;
use ltsp_oracle::validate_schedule;
use ltsp_pipeliner::{ModuloSchedule, ModuloScheduler};

fn running_example() -> LoopIr {
    let mut b = LoopBuilder::new("ex");
    let s = b.affine_ref("s", DataClass::Int, 0, 4, 4);
    let d = b.affine_ref("d", DataClass::Int, 1 << 20, 4, 4);
    let c = b.live_in_gr("c");
    let v = b.load(s);
    let sum = b.add(v, c);
    b.store(d, sum);
    b.build().unwrap()
}

fn certified_schedule(lp: &LoopIr, m: &MachineModel, ddg: &Ddg, ii: u32) -> ModuloSchedule {
    let sched = ModuloScheduler::new(lp, m, ddg).schedule_at(ii, 8).unwrap();
    validate_schedule(lp, ddg, &sched, m).expect("baseline must certify");
    sched
}

fn times_of(lp: &LoopIr, sched: &ModuloSchedule) -> Vec<i64> {
    (0..lp.insts().len())
        .map(|i| sched.time(InstId(i as u32)))
        .collect()
}

/// Shifting one operation a cycle earlier breaks the load's flow edge.
#[test]
fn mutant_shifted_early_is_rejected_as_dependence() {
    let m = MachineModel::itanium2();
    let lp = running_example();
    let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
    let sched = certified_schedule(&lp, &m, &ddg, 1);

    // The add consumes the load's value: pull it to the load's cycle.
    let mut times = times_of(&lp, &sched);
    times[1] = times[0];
    let mutant = ModuloSchedule::new(sched.ii(), times);
    let v = validate_schedule(&lp, &ddg, &mutant, &m).unwrap_err();
    assert!(
        v.iter().any(|x| x.kind() == "dependence"),
        "expected a dependence violation, got {v:?}"
    );
}

/// Shifting an operation a cycle *later* must also be caught when it
/// breaks an edge in the other direction (producer past its consumer).
#[test]
fn mutant_shifted_late_is_rejected_as_dependence() {
    let m = MachineModel::itanium2();
    let lp = running_example();
    let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
    let sched = certified_schedule(&lp, &m, &ddg, 1);

    // Push the add past the store that reads it.
    let mut times = times_of(&lp, &sched);
    times[1] = times[2] + 1;
    let mutant = ModuloSchedule::new(sched.ii(), times);
    let v = validate_schedule(&lp, &ddg, &mutant, &m).unwrap_err();
    assert!(
        v.iter().any(|x| x.kind() == "dependence"),
        "expected a dependence violation, got {v:?}"
    );
}

/// Collapsing a stage (moving an op a full II earlier) preserves the
/// kernel row but violates the latency the stage was buying.
#[test]
fn mutant_dropped_stage_is_rejected() {
    let m = MachineModel::itanium2();
    let lp = running_example();
    // Boosted latencies: the load is scheduled at 21 cycles, so the add
    // sits many stages downstream; dropping one stage keeps its row.
    let ddg = Ddg::build_with_load_floor(&lp, &m, 21);
    let sched = certified_schedule(&lp, &m, &ddg, 1);
    assert!(sched.stage_count() > 3, "boost must grow stages");

    let mut times = times_of(&lp, &sched);
    times[1] -= i64::from(sched.ii()); // same row, one stage earlier
    let mutant = ModuloSchedule::new(sched.ii(), times);
    let v = validate_schedule(&lp, &ddg, &mutant, &m).unwrap_err();
    assert!(
        v.iter().any(|x| x.kind() == "dependence"),
        "expected a dependence violation, got {v:?}"
    );
}

/// Packing more memory ops into one kernel row than the machine has M
/// slots must be caught by the resource check.
#[test]
fn mutant_oversubscribed_row_is_rejected_as_resource() {
    let m = MachineModel::itanium2();
    let mut b = LoopBuilder::new("mem");
    for k in 0..4u64 {
        let r = b.affine_ref(&format!("p{k}"), DataClass::Int, k << 22, 4, 4);
        let _ = b.load(r);
    }
    let lp = b.build().unwrap();
    let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
    let sched = certified_schedule(&lp, &m, &ddg, 2);

    // Move every load into row 0 (keeping times legal per dependences:
    // the only edges are post-increment self-edges, satisfied by any
    // non-negative times at II 2).
    let times: Vec<i64> = (0..lp.insts().len())
        .map(|i| 2 * i as i64) // all even -> all in row 0
        .collect();
    let mutant = ModuloSchedule::new(sched.ii(), times);
    let v = validate_schedule(&lp, &ddg, &mutant, &m).unwrap_err();
    assert!(
        v.iter()
            .any(|x| matches!(x, ltsp_oracle::Violation::Resource { class: "M", .. })),
        "expected an M-slot resource violation, got {v:?}"
    );
}

/// A schedule whose lifetimes demand more rotating registers than the
/// machine provides must be rejected, even though dependences and
/// resources hold.
#[test]
fn mutant_stretched_lifetime_is_rejected_as_register_overflow() {
    use ltsp_machine::RegisterFiles;
    let m = MachineModel::itanium2();
    let lp = running_example();
    let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
    let sched = certified_schedule(&lp, &m, &ddg, 1);

    // Validate the same schedule against a machine with almost no
    // rotating GRs: the re-derived lifetime demand must overflow.
    let tight = MachineModel::new(
        *m.issue(),
        *m.latencies(),
        *m.caches(),
        RegisterFiles {
            rotating_gr: 1,
            ..*m.registers()
        },
    );
    let v = validate_schedule(&lp, &ddg, &sched, &tight).unwrap_err();
    assert!(
        v.iter().any(|x| x.kind() == "register-overflow"),
        "expected a register overflow, got {v:?}"
    );
}

/// A schedule reporting times for the wrong number of instructions is a
/// shape violation and nothing else is checked.
#[test]
fn mutant_wrong_shape_is_rejected_as_shape() {
    let m = MachineModel::itanium2();
    let lp = running_example();
    let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
    let mutant = ModuloSchedule::new(1, vec![0, 1, 2, 3]);
    let v = validate_schedule(&lp, &ddg, &mutant, &m).unwrap_err();
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].kind(), "shape");
}

/// Every mutation class across a set of machine-generated loops: shift
/// each op ±1 cycle and assert the validator never certifies a mutant
/// that violates an edge (no false acceptance), while re-certifying the
/// unmutated schedule (no false rejection).
#[test]
fn systematic_single_op_shifts_never_falsely_certify() {
    let m = MachineModel::itanium2();
    for seed in 0..20u64 {
        let lp = ltsp_workloads::random_loop(seed);
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let Ok(p) = ltsp_pipeliner::pipeline_loop(&lp, &m, &|_| None, &Default::default()) else {
            continue;
        };
        let sched = p.schedule;
        validate_schedule(&lp, &ddg, &sched, &m)
            .unwrap_or_else(|v| panic!("seed {seed}: false rejection {v:?}"));
        let base = times_of(&lp, &sched);
        for op in 0..lp.insts().len() {
            for delta in [-1i64, 1] {
                let mut times = base.clone();
                times[op] += delta;
                if times[op] < 0 {
                    continue;
                }
                let mutant = ModuloSchedule::new(sched.ii(), times.clone());
                let broken = ddg.edges().iter().any(|e| {
                    times[e.from.index()] + i64::from(e.latency)
                        > times[e.to.index()] + i64::from(sched.ii()) * i64::from(e.omega)
                });
                let verdict = validate_schedule(&lp, &ddg, &mutant, &m);
                if broken {
                    let v = verdict.expect_err("mutant with broken edge certified");
                    assert!(
                        v.iter().any(|x| x.kind() == "dependence"),
                        "seed {seed} op {op} delta {delta}: wrong kind {v:?}"
                    );
                }
            }
        }
    }
}
