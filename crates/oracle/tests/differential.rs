//! The fixed-seed differential fuzzing run the CI `differential` job
//! executes: 200 machine-generated loops through the heuristic pipeliner,
//! every accepted schedule certified by the independent validator, every
//! II measured against the exact oracle.
//!
//! Failure conditions (both indicate a real bug somewhere):
//! - the validator rejects a schedule the pipeliner accepted;
//! - a heuristic II sits *below* an II the oracle proved minimal (the
//!   two engines disagree about what the machine can do).

use ltsp_machine::MachineModel;
use ltsp_oracle::{differential_fuzz, OracleOptions};
use ltsp_telemetry::Telemetry;

const SEED0: u64 = 0x5eed;
const CASES: u64 = 200;

#[test]
fn two_hundred_case_fixed_seed_fuzz() {
    let m = MachineModel::itanium2();
    let opts = OracleOptions {
        node_budget: 30_000,
        ..OracleOptions::default()
    };
    let s = differential_fuzz(SEED0, CASES, &m, &opts, &Telemetry::disabled());
    assert_eq!(s.cases.len(), CASES as usize);

    let rejected: Vec<String> = s
        .cases
        .iter()
        .filter(|c| !c.violations.is_empty())
        .map(|c| format!("{}: {:?}", c.name, c.violations))
        .collect();
    assert!(
        rejected.is_empty(),
        "validator rejected {} heuristic schedules:\n{}",
        rejected.len(),
        rejected.join("\n")
    );

    let unsound: Vec<String> = s
        .cases
        .iter()
        .filter(|c| !c.sound())
        .map(|c| {
            format!(
                "{}: heuristic II {} vs verdict {:?}",
                c.name, c.heuristic_ii, c.verdict
            )
        })
        .collect();
    assert!(
        unsound.is_empty(),
        "heuristic II below a proven minimum:\n{}",
        unsound.join("\n")
    );

    // The harness must actually resolve most cases — a fuzz run where the
    // oracle always times out proves nothing.
    let exact = s.proven_optimal + s.proven_suboptimal;
    assert!(
        exact * 2 > s.cases.len(),
        "oracle resolved only {exact}/{} cases",
        s.cases.len()
    );
    println!(
        "fuzz: {} cases, {} proven optimal, {} proven suboptimal (max gap {}), {} unresolved",
        s.cases.len(),
        s.proven_optimal,
        s.proven_suboptimal,
        s.max_gap(),
        s.unknown
    );
}

#[test]
fn fuzz_is_deterministic() {
    let m = MachineModel::itanium2();
    let opts = OracleOptions {
        node_budget: 10_000,
        ..OracleOptions::default()
    };
    let a = differential_fuzz(7, 10, &m, &opts, &Telemetry::disabled());
    let b = differential_fuzz(7, 10, &m, &opts, &Telemetry::disabled());
    for (x, y) in a.cases.iter().zip(&b.cases) {
        assert_eq!(x.heuristic_ii, y.heuristic_ii);
        assert_eq!(x.verdict, y.verdict);
    }
}
