//! The fixed-seed differential fuzzing run the CI `differential` job
//! executes: 200 machine-generated loops through the heuristic pipeliner,
//! every accepted schedule certified by the independent validator, every
//! II measured against the exact oracle.
//!
//! Failure conditions (both indicate a real bug somewhere):
//! - the validator rejects a schedule the pipeliner accepted;
//! - a heuristic II sits *below* an II the oracle proved minimal (the
//!   two engines disagree about what the machine can do).

use ltsp_machine::MachineModel;
use ltsp_oracle::{differential_fuzz, OracleOptions};
use ltsp_telemetry::Telemetry;

mod outlier_exact {
    use ltsp_ddg::Ddg;
    use ltsp_machine::MachineModel;
    use ltsp_oracle::{exact_schedule, validate_schedule, OracleOptions};
    use ltsp_pipeliner::{pipeline_loop, PipelineOptions};

    /// The gap-1 outlier pinned below is exactly what the exact backend
    /// exists for: where the heuristic settles at II=4 and the oracle
    /// proves II=3, the backend must *emit* a validated, register-
    /// allocated II-3 schedule — closing the gap for real, not just in a
    /// verdict.
    #[test]
    fn exact_backend_emits_the_proven_ii3_schedule_for_seed_0x5f71() {
        let m = MachineModel::itanium2();
        let lp = ltsp_workloads::random_loop(0x5f71);
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let heur = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default())
            .expect("outlier pipelines")
            .schedule;
        assert_eq!(heur.ii(), 4, "heuristic II drifted; re-pin this test");
        let opts = OracleOptions {
            node_budget: 30_000,
            ..OracleOptions::default()
        };
        let r = exact_schedule(&lp, &m, &ddg, &heur, &opts).expect("backend emits");
        assert_eq!(r.schedule.ii(), 3, "exact backend must close the gap");
        assert!(r.proven_optimal, "II 3 is the oracle-proven minimum");
        assert!(r.refined, "the emitted schedule improves on the heuristic");
        let cert = validate_schedule(&lp, &ddg, &r.schedule, &m)
            .expect("emitted schedule re-certifies independently");
        assert_eq!(cert.ii, 3);
        assert_eq!(cert.ii, r.certificate.ii);
    }
}

const SEED0: u64 = 0x5eed;
const CASES: u64 = 200;

#[test]
fn two_hundred_case_fixed_seed_fuzz() {
    let m = MachineModel::itanium2();
    let opts = OracleOptions {
        node_budget: 30_000,
        ..OracleOptions::default()
    };
    let s = differential_fuzz(SEED0, CASES, &m, &opts, &Telemetry::disabled(), 2);
    assert_eq!(s.cases.len(), CASES as usize);

    let rejected: Vec<String> = s
        .cases
        .iter()
        .filter(|c| !c.violations.is_empty())
        .map(|c| format!("{}: {:?}", c.name, c.violations))
        .collect();
    assert!(
        rejected.is_empty(),
        "validator rejected {} heuristic schedules:\n{}",
        rejected.len(),
        rejected.join("\n")
    );

    let unsound: Vec<String> = s
        .cases
        .iter()
        .filter(|c| !c.sound())
        .map(|c| {
            format!(
                "{}: heuristic II {} vs verdict {:?}",
                c.name, c.heuristic_ii, c.verdict
            )
        })
        .collect();
    assert!(
        unsound.is_empty(),
        "heuristic II below a proven minimum:\n{}",
        unsound.join("\n")
    );

    // The harness must actually resolve most cases — a fuzz run where the
    // oracle always times out proves nothing.
    let exact = s.proven_optimal + s.proven_suboptimal;
    assert!(
        exact * 2 > s.cases.len(),
        "oracle resolved only {exact}/{} cases",
        s.cases.len()
    );
    println!(
        "fuzz: {} cases, {} proven optimal, {} proven suboptimal (max gap {}), {} unresolved",
        s.cases.len(),
        s.proven_optimal,
        s.proven_suboptimal,
        s.max_gap(),
        s.unknown
    );
}

/// The one known optimality gap in the fixed-seed 200-case run above:
/// seed `0x5eed + 132 = 0x5f71` generates a loop where the heuristic
/// settles at II=4 while the oracle proves II=3 feasible (a witness
/// schedule exists; ~1k search nodes). This is the expected
/// heuristic/optimal trade-off, not a soundness bug — the schedule is
/// still validator-certified — but the gap is pinned so it can neither
/// silently grow nor silently vanish: a scheduler change that closes it
/// (or widens it) must update this test deliberately.
#[test]
fn known_gap_one_outlier_seed_0x5f71() {
    let m = MachineModel::itanium2();
    let opts = OracleOptions {
        node_budget: 30_000,
        ..OracleOptions::default()
    };
    let s = differential_fuzz(0x5f71, 1, &m, &opts, &Telemetry::disabled(), 1);
    let c = &s.cases[0];
    assert_eq!(c.name, "random-5f71");
    assert!(c.violations.is_empty(), "schedule must stay certified");
    assert!(c.sound());
    assert_eq!(c.heuristic_ii, 4, "heuristic II drifted: {:?}", c.verdict);
    assert_eq!(
        c.gap(),
        Some(1),
        "known heuristic/optimal gap changed: {:?}",
        c.verdict
    );
}

#[test]
fn fuzz_is_deterministic() {
    let m = MachineModel::itanium2();
    let opts = OracleOptions {
        node_budget: 10_000,
        ..OracleOptions::default()
    };
    // Different worker counts must not change a single verdict: seeds are
    // split by index and results merge in index order.
    let a = differential_fuzz(7, 10, &m, &opts, &Telemetry::disabled(), 1);
    let b = differential_fuzz(7, 10, &m, &opts, &Telemetry::disabled(), 4);
    for (x, y) in a.cases.iter().zip(&b.cases) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.heuristic_ii, y.heuristic_ii);
        assert_eq!(x.verdict, y.verdict);
    }
}
