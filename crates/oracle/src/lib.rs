//! Trust-but-verify infrastructure for the software pipeliner.
//!
//! The heuristic pipeliner is a large, stateful piece of machinery —
//! criticality analysis, iterative modulo scheduling with eviction, a
//! fallback ladder. This crate answers two questions about its output
//! with *independent* machinery:
//!
//! 1. **Is an accepted schedule actually legal?** The
//!    [`validate_schedule`] checker re-derives every constraint (modulo
//!    dependence inequalities, per-row issue resources via Hall's
//!    condition, rotating-register lifetimes) straight from the IR, the
//!    dependence graph and the machine description, sharing no code with
//!    the scheduler, the reservation table or the register allocator.
//! 2. **Is the chosen II any good?** The exact oracle
//!    ([`prove_min_ii`]) runs a complete residue-level branch-and-bound
//!    search that *proves* the minimal feasible II of small loops, so
//!    the heuristic's II can be labeled optimal, suboptimal by a known
//!    gap, or unresolved within budget ([`IiVerdict`]).
//!
//! The [`differential_case`]/[`differential_fuzz`] harness glues the two
//! to the production pipeline: every accepted schedule is certified, and
//! every certified II is measured against the proven minimum.
//!
//! On top of the proof machinery sits the **exact scheduling backend**
//! ([`exact_schedule`]): the same branch-and-bound run in emission mode
//! (rotating-register feasibility checked inside the search), producing
//! real kernels at the proven-minimal II — every emitted schedule
//! re-certified by the validator and register-allocated before it leaves
//! this crate.

mod backend;
mod differential;
mod exact;
mod validator;

pub use backend::{exact_case, exact_schedule, ExactCase, ExactSchedule};
pub use differential::{differential_case, differential_fuzz, CaseReport, FuzzSummary};
pub use exact::{
    lower_bound, prove_min_ii, search_at, search_at_bounded, search_at_registered, Feasibility,
    IiVerdict, OracleOptions,
};
pub use validator::{validate_schedule, Certificate, Violation};
