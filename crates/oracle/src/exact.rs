//! The exact-II oracle: a complete branch-and-bound search that proves
//! the minimal feasible initiation interval of a loop.
//!
//! The heuristic iterative modulo scheduler can fail at a feasible II
//! (its eviction budget is finite), so its chosen II is only an upper
//! bound on the true minimum. This module decides, for each candidate II
//! below that upper bound, whether *any* modulo schedule exists — no SMT
//! solver, just a hand-rolled DPLL-style search (in the spirit of
//! Roorda's optimal-pipelining-as-SAT formulation) over a decomposition
//! that makes the problem finite:
//!
//! Write every issue time as `t_i = r_i + II·q_i` with the **residue**
//! `r_i ∈ [0, II)` and an integer **level** `q_i`. Resource constraints
//! depend only on the residues (the kernel row is `t mod II`); a
//! dependence edge `t_to − t_from ≥ latency − II·omega` becomes the
//! integer difference constraint
//!
//! ```text
//! q_to − q_from ≥ ceil((latency − II·omega − r_to + r_from) / II)
//! ```
//!
//! which is satisfiable iff the residue-induced constraint graph has no
//! positive-weight cycle. The search assigns residues operation by
//! operation (highest dependence height first, the first operation pinned
//! to residue 0 by rotation symmetry), maintaining per-row slot counts
//! and an incrementally-closed longest-path matrix over the assigned
//! subgraph; a full row or a positive diagonal prunes the subtree. A
//! search that exhausts the space **proves** the II infeasible; a leaf
//! yields a witness schedule (levels from Bellman-Ford on the constraint
//! graph). A node budget bounds the worst case, downgrading the verdict
//! to [`IiVerdict::BoundedUnknown`].

use ltsp_ddg::Ddg;
use ltsp_ir::{LoopIr, RegClass, UnitClass};
use ltsp_machine::MachineModel;
use ltsp_pipeliner::ModuloSchedule;

/// Tunables for the oracle search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOptions {
    /// Search nodes (residue assignments tried) per candidate II before
    /// the verdict degrades to [`IiVerdict::BoundedUnknown`].
    pub node_budget: u64,
    /// Loops with more instructions than this are not searched at all
    /// (the proof is exponential in the worst case).
    pub max_insts: usize,
    /// Optional wall-clock budget for the whole proof. When it expires
    /// the verdict degrades to [`IiVerdict::BoundedUnknown`] exactly as a
    /// node-budget exhaustion would — the search never hangs its thread.
    /// `None` (the default) keeps the oracle purely node-bounded, and
    /// therefore bit-deterministic across machines; serving layers with
    /// per-request deadlines set it from the request.
    pub time_budget: Option<std::time::Duration>,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            node_budget: 200_000,
            max_insts: 24,
            time_budget: None,
        }
    }
}

/// Outcome of one fixed-II feasibility search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feasibility {
    /// A schedule exists; the witness is attached.
    Feasible(ModuloSchedule),
    /// The exhaustive search proved no schedule exists at this II.
    Infeasible,
    /// The node budget ran out before the space was exhausted.
    Unknown,
}

/// The oracle's answer about the minimal feasible II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IiVerdict {
    /// The minimal feasible II is proven.
    Exact {
        /// The proven minimum.
        optimal_ii: u32,
        /// A witness schedule at `optimal_ii`; `None` when the proof
        /// closed the gap to the caller's known-feasible upper bound
        /// (whose schedule is the witness).
        witness: Option<ModuloSchedule>,
        /// Search nodes expanded over all candidate IIs.
        nodes: u64,
    },
    /// The budget ran out: the minimum lies in `[proven_lower, upper]`
    /// where `upper` is the caller's known-feasible II.
    BoundedUnknown {
        /// Every II below this is proven infeasible.
        proven_lower: u32,
        /// Search nodes expanded before giving up.
        nodes: u64,
    },
}

impl IiVerdict {
    /// Short tag for telemetry and tables.
    pub fn tag(&self) -> &'static str {
        match self {
            IiVerdict::Exact { .. } => "exact",
            IiVerdict::BoundedUnknown { .. } => "bounded-unknown",
        }
    }
}

/// Proves the minimal feasible II of `lp` under the dependence latencies
/// in `ddg`, given that `upper` is known feasible (the caller holds a
/// validated schedule at `upper`, e.g. the heuristic pipeliner's).
///
/// Candidate IIs from the oracle's own lower bound up to `upper − 1` are
/// searched in order; each is either proven infeasible or yields a
/// witness. If every II below `upper` is infeasible, `upper` itself is
/// the proven minimum.
pub fn prove_min_ii(
    lp: &LoopIr,
    machine: &MachineModel,
    ddg: &Ddg,
    upper: u32,
    opts: &OracleOptions,
) -> IiVerdict {
    let n = lp.insts().len();
    let mut nodes = 0u64;
    if n > opts.max_insts {
        return IiVerdict::BoundedUnknown {
            proven_lower: lower_bound(lp, machine, ddg),
            nodes,
        };
    }
    // One deadline for the whole proof: every candidate II shares it, so
    // an adversarial loop cannot stretch a request to IIs × budget.
    let deadline = opts.time_budget.map(|d| std::time::Instant::now() + d);
    let lb = lower_bound(lp, machine, ddg);
    for ii in lb..upper {
        match search_at_bounded(lp, machine, ddg, ii, opts.node_budget, deadline, &mut nodes) {
            Feasibility::Feasible(s) => {
                return IiVerdict::Exact {
                    optimal_ii: ii,
                    witness: Some(s),
                    nodes,
                }
            }
            Feasibility::Infeasible => continue,
            Feasibility::Unknown => {
                return IiVerdict::BoundedUnknown {
                    proven_lower: ii,
                    nodes,
                }
            }
        }
    }
    IiVerdict::Exact {
        optimal_ii: upper.max(lb),
        witness: None,
        nodes,
    }
}

/// The oracle's own lower bound on the feasible II: the per-class and
/// joint M/I issue-slot bounds, and the smallest II with no
/// positive-weight recurrence cycle (checked by the oracle's own
/// Bellman-Ford, independent of `Ddg::rec_mii`).
pub fn lower_bound(lp: &LoopIr, machine: &MachineModel, ddg: &Ddg) -> u32 {
    let res = machine.issue();
    let mut counts = [0u32; 5]; // m, i, f, b, a
    for inst in lp.insts() {
        counts[match inst.unit_class() {
            UnitClass::M => 0,
            UnitClass::I => 1,
            UnitClass::F => 2,
            UnitClass::B => 3,
            UnitClass::A => 4,
        }] += 1;
    }
    let [m, i, f, b, a] = counts;
    let mut lb = 1u32;
    for (used, have) in [
        (m, res.m),
        (i, res.i),
        (f, res.f),
        (b, res.b),
        (m + i + a, res.m + res.i),
    ] {
        if used > 0 {
            lb = lb.max(used.div_ceil(have.max(1)));
        }
    }
    while !cycles_feasible(ddg, lb, lp.insts().len()) {
        lb += 1;
    }
    lb
}

/// True when no dependence cycle has positive weight under
/// `latency − ii·omega` — the oracle's own longest-path Bellman-Ford.
fn cycles_feasible(ddg: &Ddg, ii: u32, n: usize) -> bool {
    let mut dist = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for e in ddg.edges() {
            let w = i64::from(e.latency) - i64::from(ii) * i64::from(e.omega);
            let cand = dist[e.from.index()] + w;
            if cand > dist[e.to.index()] {
                dist[e.to.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
        if round == n {
            return false;
        }
    }
    true
}

const NEG_INF: i64 = i64::MIN / 4;

/// `ceil(a / b)` for positive `b` and any `a`.
fn div_ceil_i64(a: i64, b: i64) -> i64 {
    (a + b - 1).div_euclid(b)
}

struct Search<'a> {
    lp: &'a LoopIr,
    ddg: &'a Ddg,
    ii: u32,
    order: Vec<usize>,
    /// Per-row `[m, i, f, b, a]` occupancy.
    rows: Vec<[u32; 5]>,
    slots: [u32; 4], // machine M, I, F, B
    /// Rotating-register caps `[GR, FR, PR]` when the search must emit a
    /// register-allocatable witness; `None` for the register-free proof.
    reg_caps: Option<[u32; 3]>,
    residue: Vec<u32>,
    assigned: Vec<usize>,
    /// One longest-path matrix per search depth (copy-down on descent).
    dist: Vec<Vec<i64>>,
    budget: u64,
    deadline: Option<std::time::Instant>,
    nodes: u64,
    exhausted: bool,
}

/// Exhaustive feasibility search at a fixed `ii`. Adds the nodes it
/// expands to `nodes_out`.
pub fn search_at(
    lp: &LoopIr,
    machine: &MachineModel,
    ddg: &Ddg,
    ii: u32,
    node_budget: u64,
    nodes_out: &mut u64,
) -> Feasibility {
    search_at_bounded(lp, machine, ddg, ii, node_budget, None, nodes_out)
}

/// [`search_at`] with an optional wall-clock deadline; past it the search
/// degrades to [`Feasibility::Unknown`] (checked every 1024 nodes, so a
/// stuck subtree surrenders within microseconds of the deadline).
pub fn search_at_bounded(
    lp: &LoopIr,
    machine: &MachineModel,
    ddg: &Ddg,
    ii: u32,
    node_budget: u64,
    deadline: Option<std::time::Instant>,
    nodes_out: &mut u64,
) -> Feasibility {
    search_at_impl(
        lp,
        machine,
        ddg,
        ii,
        node_budget,
        deadline,
        nodes_out,
        false,
    )
}

/// [`search_at_bounded`] with rotating-register feasibility enforced
/// inside the search: every candidate leaf's minimal-level realization is
/// checked against the machine's rotating files (the same accounting the
/// validator and `allocate_rotating` use), and register-starved leaves
/// are rejected so the search keeps walking siblings.
///
/// This is the emission-grade search the exact scheduling backend runs: a
/// `Feasible` witness is guaranteed to register-allocate. The flip side
/// is that `Infeasible` is **weaker** here than in [`search_at_bounded`]:
/// minimal-level realization does not minimize register demand (raising a
/// definition within its slack shrinks its lifetime), so exhausting this
/// search proves only that no *minimal-level* schedule fits the register
/// files, not that the II is register-infeasible outright. Callers treat
/// a non-`Feasible` answer as "no emittable schedule found here", never
/// as a proof — II optimality proofs stay with the register-free search.
pub fn search_at_registered(
    lp: &LoopIr,
    machine: &MachineModel,
    ddg: &Ddg,
    ii: u32,
    node_budget: u64,
    deadline: Option<std::time::Instant>,
    nodes_out: &mut u64,
) -> Feasibility {
    // Sound residue-independent precheck: a defined value read through a
    // flow edge of latency L needs at least floor(L/II)+1 rotating
    // registers at this II (the dependence inequality forces the lifetime
    // to at least L), and every stage predicate costs a rotating PR. If
    // even those floors overflow a register file, no schedule at this II
    // can allocate — registered or not.
    if !register_floor_fits(lp, machine, ddg, ii) {
        return Feasibility::Infeasible;
    }
    search_at_impl(lp, machine, ddg, ii, node_budget, deadline, nodes_out, true)
}

/// Per-II lower bound on rotating-register demand vs. the machine's
/// supply. For each definition, the lifetime is at least the largest
/// flow-edge latency `L` into a reader whose operand distance is at
/// least the edge's omega (then `t_read + II·ω_read − t_def ≥ L`), so the
/// value occupies at least `floor(L/II) + 1` rotating registers; plus at
/// least one stage predicate.
fn register_floor_fits(lp: &LoopIr, machine: &MachineModel, ddg: &Ddg, ii: u32) -> bool {
    let ii64 = i64::from(ii);
    let mut demand = [0u32; 3]; // GR, FR, PR
    for inst in lp.insts() {
        let Some(def_reg) = inst.dst() else { continue };
        let mut span = 0i64;
        for e in ddg.edges() {
            if e.from != inst.id() {
                continue;
            }
            for s in lp.inst(e.to).reads() {
                if s.reg == def_reg && s.omega >= e.omega {
                    span = span.max(i64::from(e.latency) + ii64 * i64::from(s.omega - e.omega));
                }
            }
        }
        demand[reg_class_slot(def_reg.class())] += (span / ii64) as u32 + 1;
    }
    demand[reg_class_slot(RegClass::Pr)] += 1; // at least one stage predicate
    RegClass::ALL
        .iter()
        .all(|&class| demand[reg_class_slot(class)] <= machine.registers().rotating(class))
}

fn reg_class_slot(class: RegClass) -> usize {
    match class {
        RegClass::Gr => 0,
        RegClass::Fr => 1,
        RegClass::Pr => 2,
    }
}

#[allow(clippy::too_many_arguments)]
fn search_at_impl(
    lp: &LoopIr,
    machine: &MachineModel,
    ddg: &Ddg,
    ii: u32,
    node_budget: u64,
    deadline: Option<std::time::Instant>,
    nodes_out: &mut u64,
    check_registers: bool,
) -> Feasibility {
    let n = lp.insts().len();
    if !cycles_feasible(ddg, ii, n) {
        return Feasibility::Infeasible;
    }

    // Height-based order: operations feeding the longest dependence
    // chains are assigned first, so the distance matrix prunes early.
    let mut height = vec![0i64; n];
    for _ in 0..n {
        for e in ddg.edges() {
            let w = i64::from(e.latency) - i64::from(ii) * i64::from(e.omega);
            let cand = w + height[e.to.index()];
            if e.from != e.to && cand > height[e.from.index()] {
                height[e.from.index()] = cand;
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(height[i]), i));

    let res = machine.issue();
    let mut s = Search {
        lp,
        ddg,
        ii,
        order,
        rows: vec![[0u32; 5]; ii as usize],
        slots: [res.m, res.i, res.f, res.b],
        reg_caps: check_registers.then(|| {
            [
                machine.registers().rotating(RegClass::Gr),
                machine.registers().rotating(RegClass::Fr),
                machine.registers().rotating(RegClass::Pr),
            ]
        }),
        residue: vec![0; n],
        assigned: Vec::with_capacity(n),
        dist: vec![vec![NEG_INF; n * n]; n + 1],
        budget: node_budget,
        deadline,
        nodes: 0,
        exhausted: false,
    };
    let found = s.dfs(0);
    *nodes_out += s.nodes;
    match found {
        Some(times) => Feasibility::Feasible(ModuloSchedule::new(ii, times)),
        None if s.exhausted => Feasibility::Unknown,
        None => Feasibility::Infeasible,
    }
}

impl Search<'_> {
    /// True once the wall-clock deadline has passed. The clock is read
    /// only every 1024 nodes — `Instant::now` per node would dominate the
    /// search itself.
    fn deadline_expired(&self) -> bool {
        match self.deadline {
            Some(d) => self.nodes & 0x3FF == 0 && std::time::Instant::now() >= d,
            None => false,
        }
    }

    fn dfs(&mut self, depth: usize) -> Option<Vec<i64>> {
        let n = self.order.len();
        if depth == n {
            let times = self.realize();
            // Register-checked mode: a leaf whose minimal-level
            // realization overflows a rotating file is rejected, and the
            // parent keeps walking sibling residues. `None` here means
            // "no emittable schedule in this subtree", not infeasibility
            // of the II (see `search_at_registered`).
            if !self.registers_fit(&times) {
                return None;
            }
            return Some(times);
        }
        let op = self.order[depth];
        // Rotation symmetry: the first assignment's residue is free.
        let residues = if depth == 0 { 1 } else { self.ii };
        for r in 0..residues {
            if self.budget == 0 || self.deadline_expired() {
                self.exhausted = true;
                return None;
            }
            self.budget -= 1;
            self.nodes += 1;
            if !self.row_fits(op, r) {
                continue;
            }
            self.residue[op] = r;
            self.row_counts(op, r, 1);
            self.assigned.push(op);
            let consistent = self.extend_matrix(depth, op);
            if consistent {
                if let Some(times) = self.dfs(depth + 1) {
                    return Some(times);
                }
            }
            self.assigned.pop();
            self.row_counts(op, r, u32::MAX); // -1 via wrapping helper
        }
        None
    }

    fn class_slot(&self, op: usize) -> usize {
        match self.lp.insts()[op].unit_class() {
            UnitClass::M => 0,
            UnitClass::I => 1,
            UnitClass::F => 2,
            UnitClass::B => 3,
            UnitClass::A => 4,
        }
    }

    /// Hall-condition row check with `op` added at residue `r`.
    fn row_fits(&self, op: usize, r: u32) -> bool {
        let mut c = self.rows[r as usize];
        c[self.class_slot(op)] += 1;
        let [m, i, f, b, a] = c;
        let [sm, si, sf, sb] = self.slots;
        m <= sm && i <= si && f <= sf && b <= sb && m + i + a <= sm + si
    }

    fn row_counts(&mut self, op: usize, r: u32, delta: u32) {
        let slot = self.class_slot(op);
        self.rows[r as usize][slot] = self.rows[r as usize][slot].wrapping_add(delta);
    }

    /// Edge weight in the residue-induced level graph.
    fn level_weight(&self, from: usize, to: usize, latency: u32, omega: u32) -> i64 {
        let ii = i64::from(self.ii);
        let w = i64::from(latency) - ii * i64::from(omega);
        div_ceil_i64(
            w - i64::from(self.residue[to]) + i64::from(self.residue[from]),
            ii,
        )
    }

    /// Adds `op`'s level-graph arcs to the depth-local copy of the
    /// longest-path matrix and re-closes it. Returns `false` when a
    /// positive-weight cycle appears (the residue prefix is infeasible).
    fn extend_matrix(&mut self, depth: usize, op: usize) -> bool {
        let n = self.residue.len();
        let mut d = std::mem::take(&mut self.dist[depth + 1]);
        d.copy_from_slice(&self.dist[depth]);

        // Direct arcs between `op` and assigned operations (both
        // directions; self-edges land on the diagonal).
        for e in self.ddg.edges() {
            let (u, v) = (e.from.index(), e.to.index());
            let touches_op = u == op || v == op;
            if !touches_op || !self.assigned.contains(&u) || !self.assigned.contains(&v) {
                continue;
            }
            let c = self.level_weight(u, v, e.latency, e.omega);
            if c > d[u * n + v] {
                d[u * n + v] = c;
            }
        }
        if d[op * n + op] > 0 {
            self.dist[depth + 1] = d;
            return false;
        }

        // Close paths into and out of `op` through previously-assigned
        // intermediates, then re-close every pair through `op`.
        for idx in 0..self.assigned.len() {
            let u = self.assigned[idx];
            if u == op {
                continue;
            }
            let mut best_in = d[u * n + op];
            let mut best_out = d[op * n + u];
            for &k in &self.assigned {
                if k == op {
                    continue;
                }
                if d[u * n + k] > NEG_INF / 2 && d[k * n + op] > NEG_INF / 2 {
                    best_in = best_in.max(d[u * n + k] + d[k * n + op]);
                }
                if d[op * n + k] > NEG_INF / 2 && d[k * n + u] > NEG_INF / 2 {
                    best_out = best_out.max(d[op * n + k] + d[k * n + u]);
                }
            }
            d[u * n + op] = best_in;
            d[op * n + u] = best_out;
        }
        for &a in &self.assigned {
            if d[a * n + op] <= NEG_INF / 2 {
                continue;
            }
            for &b in &self.assigned {
                if d[op * n + b] <= NEG_INF / 2 {
                    continue;
                }
                let via = d[a * n + op] + d[op * n + b];
                if via > d[a * n + b] {
                    d[a * n + b] = via;
                }
            }
        }
        let ok = self.assigned.iter().all(|&x| d[x * n + x] <= 0);
        self.dist[depth + 1] = d;
        ok
    }

    /// True when a realized schedule's rotating-register demand fits the
    /// caps (always true in register-free mode). Same accounting as the
    /// allocator and the validator: a value defined at `t` and last read
    /// (through an omega-distance operand) at `t_last` needs
    /// `floor((t_last − t)/II) + 1` consecutive rotating registers; stage
    /// predicates claim one rotating PR per stage.
    fn registers_fit(&self, times: &[i64]) -> bool {
        let Some(caps) = self.reg_caps else {
            return true;
        };
        let ii = i64::from(self.ii);
        let mut used = [0u32; 3]; // GR, FR, PR
        let mut stages = 1u32;
        for inst in self.lp.insts() {
            stages = stages.max((times[inst.id().index()] / ii) as u32 + 1);
            let Some(def_reg) = inst.dst() else { continue };
            let t_def = times[inst.id().index()];
            let mut t_last = t_def;
            for reader in self.lp.insts() {
                for s in reader.reads() {
                    if s.reg == def_reg {
                        t_last = t_last.max(times[reader.id().index()] + ii * i64::from(s.omega));
                    }
                }
            }
            used[reg_class_slot(def_reg.class())] += ((t_last - t_def) / ii) as u32 + 1;
        }
        used[reg_class_slot(RegClass::Pr)] += stages;
        used[0] <= caps[0] && used[1] <= caps[1] && used[2] <= caps[2]
    }

    /// Turns a consistent full residue assignment into issue times:
    /// minimal non-negative levels from Bellman-Ford on the level graph.
    fn realize(&self) -> Vec<i64> {
        let n = self.residue.len();
        let mut level = vec![0i64; n];
        for _ in 0..n + 1 {
            let mut changed = false;
            for e in self.ddg.edges() {
                let (u, v) = (e.from.index(), e.to.index());
                let c = self.level_weight(u, v, e.latency, e.omega);
                if level[u] + c > level[v] {
                    level[v] = level[u] + c;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        (0..n)
            .map(|i| i64::from(self.residue[i]) + i64::from(self.ii) * level[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_schedule;
    use ltsp_ir::{DataClass, LoopBuilder};
    use ltsp_pipeliner::ModuloScheduler;

    fn running_example() -> LoopIr {
        let mut b = LoopBuilder::new("ex");
        let s = b.affine_ref("s", DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("d", DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        b.build().unwrap()
    }

    #[test]
    fn finds_the_known_optimum() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let mut nodes = 0;
        match search_at(&lp, &m, &ddg, 1, 100_000, &mut nodes) {
            Feasibility::Feasible(s) => {
                assert_eq!(s.ii(), 1);
                validate_schedule(&lp, &ddg, &s, &m).expect("witness must certify");
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn proves_infeasibility_below_recurrence_bound() {
        // FP reduction: fadd self-recurrence of latency 4 -> min II 4.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("red");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _ = b.fadd_reduce(v);
        let lp = b.build().unwrap();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let mut nodes = 0;
        for ii in 1..4 {
            assert_eq!(
                search_at(&lp, &m, &ddg, ii, 100_000, &mut nodes),
                Feasibility::Infeasible,
                "ii={ii}"
            );
        }
        assert!(matches!(
            search_at(&lp, &m, &ddg, 4, 100_000, &mut nodes),
            Feasibility::Feasible(_)
        ));
    }

    #[test]
    fn proves_resource_infeasibility_beyond_cycle_bound() {
        // 6 independent loads on 2 M slots: no recurrence forbids II 2,
        // but the rows cannot hold 6 M ops — the search must prove it.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("mem");
        for k in 0..6u64 {
            let r = b.affine_ref(&format!("p{k}"), DataClass::Int, k << 22, 4, 4);
            let _ = b.load(r);
        }
        let lp = b.build().unwrap();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let mut nodes = 0;
        assert_eq!(
            search_at(&lp, &m, &ddg, 2, 100_000, &mut nodes),
            Feasibility::Infeasible
        );
        assert!(matches!(
            search_at(&lp, &m, &ddg, 3, 100_000, &mut nodes),
            Feasibility::Feasible(_)
        ));
    }

    #[test]
    fn prove_min_ii_closes_the_gap_to_the_heuristic() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let heur = ModuloScheduler::new(&lp, &m, &ddg)
            .schedule_at(1, 8)
            .unwrap();
        match prove_min_ii(&lp, &m, &ddg, heur.ii(), &OracleOptions::default()) {
            IiVerdict::Exact {
                optimal_ii,
                witness,
                ..
            } => {
                assert_eq!(optimal_ii, 1);
                assert!(witness.is_none(), "lb == upper: heuristic is the witness");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tiny_budget_degrades_to_bounded_unknown() {
        let m = MachineModel::itanium2();
        // A loop whose min II is NOT at the lower bound: 6 loads at II 3
        // with a budget of 1 node cannot finish proving II 3 infeasible…
        // use II upper bound 3 and budget 1 against the 6-load loop at
        // II 2 (feasibility unknown after 1 node).
        let mut b = LoopBuilder::new("mem");
        for k in 0..6u64 {
            let r = b.affine_ref(&format!("p{k}"), DataClass::Int, k << 22, 4, 4);
            let _ = b.load(r);
        }
        let lp = b.build().unwrap();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        // Lower bound is already 3 (ResMII), so force a search below it
        // is impossible; instead check max_insts gating.
        let opts = OracleOptions {
            node_budget: 100_000,
            max_insts: 2,
            ..OracleOptions::default()
        };
        match prove_min_ii(&lp, &m, &ddg, 5, &opts) {
            IiVerdict::BoundedUnknown { proven_lower, .. } => {
                assert!(proven_lower >= 3, "own bound still applies");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expired_time_budget_degrades_to_bounded_unknown() {
        // A zero wall-clock budget must surrender immediately with a
        // sound interval — never hang, never fabricate an exact verdict
        // below the proven lower bound.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("mem");
        for k in 0..6u64 {
            let r = b.affine_ref(&format!("p{k}"), DataClass::Int, k << 22, 4, 4);
            let _ = b.load(r);
        }
        let lp = b.build().unwrap();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let opts = OracleOptions {
            time_budget: Some(std::time::Duration::ZERO),
            ..OracleOptions::default()
        };
        let lb = lower_bound(&lp, &m, &ddg);
        match prove_min_ii(&lp, &m, &ddg, lb + 2, &opts) {
            IiVerdict::BoundedUnknown { proven_lower, .. } => {
                assert!(proven_lower >= lb);
            }
            // The whole proof may close before the first deadline check
            // on a machine this small only if no search was needed.
            IiVerdict::Exact { optimal_ii, .. } => assert!(optimal_ii >= lb),
        }
        // A generous budget still resolves exactly.
        let opts = OracleOptions {
            time_budget: Some(std::time::Duration::from_secs(60)),
            ..OracleOptions::default()
        };
        assert!(matches!(
            prove_min_ii(&lp, &m, &ddg, lb + 2, &opts),
            IiVerdict::Exact { .. }
        ));
    }

    #[test]
    fn registered_witnesses_always_allocate() {
        // The register-checked search's witnesses must pass both the
        // validator (register check included) and the production
        // allocator, across a spread of machine-generated loops.
        use ltsp_pipeliner::allocate_rotating;
        let m = MachineModel::itanium2();
        for seed in 0..40u64 {
            let lp = ltsp_workloads::random_loop(seed);
            if lp.insts().len() > 16 {
                continue;
            }
            let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
            let lb = lower_bound(&lp, &m, &ddg);
            let mut nodes = 0;
            for ii in lb..lb + 3 {
                if let Feasibility::Feasible(s) =
                    search_at_registered(&lp, &m, &ddg, ii, 50_000, None, &mut nodes)
                {
                    validate_schedule(&lp, &ddg, &s, &m)
                        .unwrap_or_else(|v| panic!("seed {seed} ii {ii}: {v:?}"));
                    allocate_rotating(&lp, &s, &m)
                        .unwrap_or_else(|e| panic!("seed {seed} ii {ii}: {e}"));
                    break;
                }
            }
        }
    }

    #[test]
    fn registered_search_rejects_register_starved_realizations() {
        // On a machine with 2 rotating GRs the running example's minimal
        // II-1 realization (4 rotating GRs) must not be emitted; the
        // register-free search still proves II 1 feasible.
        use ltsp_machine::RegisterFiles;
        let m = MachineModel::itanium2();
        let tight = MachineModel::new(
            *m.issue(),
            *m.latencies(),
            *m.caches(),
            RegisterFiles {
                rotating_gr: 2,
                ..*m.registers()
            },
        );
        let lp = running_example();
        let ddg = Ddg::build_with_load_floor(&lp, &tight, 0);
        let mut nodes = 0;
        assert!(matches!(
            search_at(&lp, &tight, &ddg, 1, 100_000, &mut nodes),
            Feasibility::Feasible(_)
        ));
        match search_at_registered(&lp, &tight, &ddg, 1, 100_000, None, &mut nodes) {
            Feasibility::Feasible(s) => {
                // If a register-fitting realization exists the search may
                // find it — but then it must actually fit.
                validate_schedule(&lp, &ddg, &s, &tight).expect("emitted witness fits");
            }
            Feasibility::Infeasible | Feasibility::Unknown => {}
        }
        // On the real machine the registered search emits at II 1.
        let full_ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        assert!(matches!(
            search_at_registered(&lp, &m, &full_ddg, 1, 100_000, None, &mut nodes),
            Feasibility::Feasible(_)
        ));
    }

    #[test]
    fn witnesses_always_validate() {
        // Any witness the oracle produces must pass the independent
        // validator — over a spread of machine-generated loops.
        let m = MachineModel::itanium2();
        for seed in 0..40u64 {
            let lp = ltsp_workloads::random_loop(seed);
            if lp.insts().len() > 16 {
                continue;
            }
            let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
            let lb = lower_bound(&lp, &m, &ddg);
            let mut nodes = 0;
            for ii in lb..lb + 3 {
                if let Feasibility::Feasible(s) = search_at(&lp, &m, &ddg, ii, 50_000, &mut nodes) {
                    validate_schedule(&lp, &ddg, &s, &m)
                        .unwrap_or_else(|v| panic!("seed {seed} ii {ii}: {v:?}"));
                    break;
                }
            }
        }
    }
}
