//! The independent schedule validator.
//!
//! This checker certifies a [`ModuloSchedule`] against the constraints it
//! must satisfy, re-deriving every one of them from the [`LoopIr`], the
//! dependence graph and the machine description. It deliberately shares
//! **no code** with the scheduler (`scheduler.rs`), the modulo reservation
//! table (`mrt.rs`) or the register allocator (`regalloc.rs`): slot
//! accounting, lifetime accounting and the modulo dependence inequality
//! are all re-implemented here from the definitions, so a bug in the
//! heuristic pipeliner cannot silently certify its own output.
//!
//! Checked constraints:
//!
//! 1. **Shape** — one non-negative issue time per instruction, and the
//!    schedule's reported stage count matches the times.
//! 2. **Dependences** — every edge `(from, to, latency, omega)` satisfies
//!    `t(from) + latency <= t(to) + II·omega` (the modulo scheduling
//!    inequality; boosted latencies are whatever the DDG carries).
//! 3. **Resources** — no kernel row over-subscribes the machine's issue
//!    slots. A-class instructions may draw from M or I slots; by Hall's
//!    theorem the assignment exists iff `m <= M`, `i <= I` and
//!    `m + i + a <= M + I` per row (plus the fixed F/B checks).
//! 4. **Register lifetimes** — every value's rotating-register demand
//!    (`floor(lifetime/II) + 1` per value, one predicate per stage) fits
//!    the machine's rotating files.

use ltsp_ddg::Ddg;
use ltsp_ir::{InstId, LoopIr, RegClass, UnitClass, VReg};
use ltsp_machine::MachineModel;
use ltsp_pipeliner::ModuloSchedule;

/// One constraint violation found by [`validate_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The schedule does not cover exactly the loop's instructions.
    Shape {
        /// Instructions in the schedule.
        schedule_len: usize,
        /// Instructions in the loop.
        loop_len: usize,
    },
    /// The reported stage count disagrees with the issue times.
    StageCount {
        /// Stage count the schedule reports.
        reported: u32,
        /// Stage count derived from `max(time) / II + 1`.
        derived: u32,
    },
    /// A dependence edge is violated modulo the II.
    Dependence {
        /// Producer instruction.
        from: InstId,
        /// Consumer instruction.
        to: InstId,
        /// Edge latency (includes any latency boost).
        latency: u32,
        /// Iteration distance.
        omega: u32,
        /// Amount by which the inequality fails (positive).
        excess: i64,
    },
    /// A kernel row needs more issue slots of a class than the machine
    /// has.
    Resource {
        /// Kernel cycle (row) of the over-subscription.
        cycle: u32,
        /// Slot class (`"M"`, `"I"`, `"F"`, `"B"`, or `"M+I"` for the
        /// joint A-class constraint).
        class: &'static str,
        /// Slots demanded.
        used: u32,
        /// Slots available.
        available: u32,
    },
    /// Rotating-register demand exceeds a register file.
    RegisterOverflow {
        /// The class that overflowed.
        class: RegClass,
        /// Registers the schedule's lifetimes demand.
        needed: u32,
        /// Rotating registers the machine has.
        available: u32,
    },
}

impl Violation {
    /// A short machine-readable tag for the violation kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Shape { .. } => "shape",
            Violation::StageCount { .. } => "stage-count",
            Violation::Dependence { .. } => "dependence",
            Violation::Resource { .. } => "resource",
            Violation::RegisterOverflow { .. } => "register-overflow",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Shape {
                schedule_len,
                loop_len,
            } => write!(
                f,
                "schedule covers {schedule_len} instructions, loop has {loop_len}"
            ),
            Violation::StageCount { reported, derived } => write!(
                f,
                "schedule reports {reported} stages but times imply {derived}"
            ),
            Violation::Dependence {
                from,
                to,
                latency,
                omega,
                excess,
            } => write!(
                f,
                "dependence i{} -> i{} (latency {latency}, omega {omega}) \
                 violated by {excess} cycles",
                from.index(),
                to.index()
            ),
            Violation::Resource {
                cycle,
                class,
                used,
                available,
            } => write!(
                f,
                "kernel cycle {cycle} needs {used} {class} slots, machine has {available}"
            ),
            Violation::RegisterOverflow {
                class,
                needed,
                available,
            } => write!(
                f,
                "rotating {class} demand {needed} exceeds supply {available}"
            ),
        }
    }
}

/// A certificate that a schedule satisfies every re-derived constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Certificate {
    /// The certified II.
    pub ii: u32,
    /// Pipeline stages of the certified schedule.
    pub stages: u32,
    /// Dependence edges checked.
    pub edges_checked: usize,
    /// Kernel rows checked against issue resources.
    pub rows_checked: u32,
    /// Rotating registers the lifetimes demand, summed over classes.
    pub rotating_regs: u32,
}

/// Validates `sched` against every constraint re-derived from `lp`, the
/// dependence graph and `machine`.
///
/// The DDG determines the dependence latencies to enforce; pass the graph
/// the schedule was produced from (base or boosted latencies) — or a
/// stricter one to ask a stronger question.
///
/// # Errors
///
/// Returns every violation found (never an empty `Vec`). A `Shape`
/// violation short-circuits: no further checks are meaningful when the
/// schedule does not cover the loop.
pub fn validate_schedule(
    lp: &LoopIr,
    ddg: &Ddg,
    sched: &ModuloSchedule,
    machine: &MachineModel,
) -> Result<Certificate, Vec<Violation>> {
    let n = lp.insts().len();
    if sched.len() != n || ddg.len() != n {
        return Err(vec![Violation::Shape {
            schedule_len: sched.len(),
            loop_len: n,
        }]);
    }

    let ii = i64::from(sched.ii());
    let mut violations = Vec::new();

    // 1. Shape: the `ModuloSchedule` constructor rejects negative times
    // and II = 0, but re-derive the stage count rather than trusting it.
    let derived_stages = lp
        .insts()
        .iter()
        .map(|inst| (sched.time(inst.id()) / ii) as u32 + 1)
        .max()
        .unwrap_or(1);
    if derived_stages != sched.stage_count() {
        violations.push(Violation::StageCount {
            reported: sched.stage_count(),
            derived: derived_stages,
        });
    }

    // 2. Dependences: t(from) + latency <= t(to) + II * omega.
    for e in ddg.edges() {
        let lhs = sched.time(e.from) + i64::from(e.latency);
        let rhs = sched.time(e.to) + ii * i64::from(e.omega);
        if lhs > rhs {
            violations.push(Violation::Dependence {
                from: e.from,
                to: e.to,
                latency: e.latency,
                omega: e.omega,
                excess: lhs - rhs,
            });
        }
    }

    // 3. Resources: count per-row demand from scratch. A-class ops draw
    // from M or I; Hall's condition for this two-slot bipartite structure
    // is `m <= M`, `i <= I`, `m + i + a <= M + I`.
    let res = machine.issue();
    let rows = sched.ii() as usize;
    let mut demand = vec![[0u32; 5]; rows]; // m, i, f, b, a per row
    for inst in lp.insts() {
        let row = (sched.time(inst.id()) % ii) as usize;
        let slot = match inst.unit_class() {
            UnitClass::M => 0,
            UnitClass::I => 1,
            UnitClass::F => 2,
            UnitClass::B => 3,
            UnitClass::A => 4,
        };
        demand[row][slot] += 1;
    }
    for (row, &[m, i, f, b, a]) in demand.iter().enumerate() {
        let cycle = row as u32;
        let checks: [(&'static str, u32, u32); 4] = [
            ("M", m, res.m),
            ("I", i, res.i),
            ("F", f, res.f),
            ("B", b, res.b),
        ];
        for (class, used, available) in checks {
            if used > available {
                violations.push(Violation::Resource {
                    cycle,
                    class,
                    used,
                    available,
                });
            }
        }
        if m + i + a > res.m + res.i {
            violations.push(Violation::Resource {
                cycle,
                class: "M+I",
                used: m + i + a,
                available: res.m + res.i,
            });
        }
    }

    // 4. Register lifetimes: a value defined at t and last read (through
    // an omega-distance operand) at t_last occupies
    // floor((t_last - t)/II) + 1 consecutive rotating registers; stage
    // predicates claim one rotating PR per stage.
    let mut rotating = [0u32; 3]; // GR, FR, PR
    for inst in lp.insts() {
        let Some(def_reg) = inst.dst() else { continue };
        let t_def = sched.time(inst.id());
        let mut t_last = t_def;
        for reader in lp.insts() {
            for s in reader.reads() {
                if s.reg == def_reg {
                    let t = sched.time(reader.id()) + ii * i64::from(s.omega);
                    t_last = t_last.max(t);
                }
            }
        }
        let slot = class_index(def_reg);
        rotating[slot] += ((t_last - t_def) / ii) as u32 + 1;
    }
    rotating[class_index(VReg::new(RegClass::Pr, 0))] += derived_stages;
    for class in RegClass::ALL {
        let needed = rotating[class_index(VReg::new(class, 0))];
        let available = machine.registers().rotating(class);
        if needed > available {
            violations.push(Violation::RegisterOverflow {
                class,
                needed,
                available,
            });
        }
    }

    if violations.is_empty() {
        Ok(Certificate {
            ii: sched.ii(),
            stages: derived_stages,
            edges_checked: ddg.edges().len(),
            rows_checked: sched.ii(),
            rotating_regs: rotating.iter().sum(),
        })
    } else {
        Err(violations)
    }
}

fn class_index(reg: VReg) -> usize {
    match reg.class() {
        RegClass::Gr => 0,
        RegClass::Fr => 1,
        RegClass::Pr => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{DataClass, LoopBuilder};
    use ltsp_pipeliner::ModuloScheduler;

    fn running_example() -> LoopIr {
        let mut b = LoopBuilder::new("ex");
        let s = b.affine_ref("s", DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("d", DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        b.build().unwrap()
    }

    #[test]
    fn certifies_the_heuristic_schedule() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let sched = ModuloScheduler::new(&lp, &m, &ddg)
            .schedule_at(1, 8)
            .unwrap();
        let cert = validate_schedule(&lp, &ddg, &sched, &m).unwrap();
        assert_eq!(cert.ii, 1);
        assert_eq!(cert.stages, 3);
        assert!(cert.edges_checked >= 4);
    }

    #[test]
    fn rejects_dependence_violation() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        // ld at 0, add at 0 violates the 1-cycle load edge.
        let sched = ModuloSchedule::new(1, vec![0, 0, 2]);
        let v = validate_schedule(&lp, &ddg, &sched, &m).unwrap_err();
        assert!(v.iter().any(|x| x.kind() == "dependence"), "{v:?}");
    }

    #[test]
    fn rejects_oversubscribed_row() {
        // 3 loads in one row of a 2-M-slot machine.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("mem");
        for k in 0..3u64 {
            let r = b.affine_ref(&format!("p{k}"), DataClass::Int, k << 22, 4, 4);
            let _ = b.load(r);
        }
        let lp = b.build().unwrap();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let sched = ModuloSchedule::new(2, vec![0, 0, 0]);
        let v = validate_schedule(&lp, &ddg, &sched, &m).unwrap_err();
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::Resource {
                    cycle: 0,
                    class: "M",
                    used: 3,
                    available: 2
                }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn rejects_register_overflow() {
        use ltsp_machine::RegisterFiles;
        let m = MachineModel::itanium2();
        let tight = MachineModel::new(
            *m.issue(),
            *m.latencies(),
            *m.caches(),
            RegisterFiles {
                rotating_gr: 2,
                ..*m.registers()
            },
        );
        let lp = running_example();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let sched = ModuloScheduler::new(&lp, &m, &ddg)
            .schedule_at(1, 8)
            .unwrap();
        // The schedule needs 4 rotating GRs; the tight machine has 2.
        let v = validate_schedule(&lp, &ddg, &sched, &tight).unwrap_err();
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::RegisterOverflow {
                    class: RegClass::Gr,
                    needed: 4,
                    available: 2
                }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn shape_mismatch_short_circuits() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let sched = ModuloSchedule::new(1, vec![0, 1]);
        let v = validate_schedule(&lp, &ddg, &sched, &m).unwrap_err();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind(), "shape");
    }
}
