//! Differential testing of the heuristic pipeliner against the oracle.
//!
//! One case = one loop pushed through the production pipeline
//! ([`ltsp_pipeliner::pipeline_loop`] at base latencies), its accepted
//! schedule certified by the independent validator, and its II compared
//! against the exact oracle's proven minimum. Two properties fall out:
//!
//! - **Soundness** — every schedule the heuristic accepts satisfies every
//!   re-derived constraint, and its II is never *below* a proven-minimal
//!   II (which would mean one of the two engines mis-models the machine).
//! - **Optimality gap** — how far the heuristic's II sits above the
//!   proven minimum, the quantity the EXPERIMENTS table reports.

use ltsp_ddg::Ddg;
use ltsp_ir::LoopIr;
use ltsp_machine::MachineModel;
use ltsp_pipeliner::{acyclic_schedule, pipeline_loop, ModuloSchedule, PipelineOptions};
use ltsp_telemetry::{Event, Telemetry};

use crate::exact::{prove_min_ii, IiVerdict, OracleOptions};
use crate::validator::{validate_schedule, Violation};

/// The outcome of one differential case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Loop name.
    pub name: String,
    /// Instruction count.
    pub insts: usize,
    /// True when the pipeliner produced a modulo schedule; false when it
    /// rejected the loop and the acyclic fallback schedule was examined.
    pub pipelined: bool,
    /// The II of the accepted schedule (kernel II, or the acyclic
    /// schedule length on fallback).
    pub heuristic_ii: u32,
    /// Violations from the independent validator (empty = certified).
    pub violations: Vec<Violation>,
    /// The oracle's verdict on the minimal II.
    pub verdict: IiVerdict,
}

impl CaseReport {
    /// The proven (or lower-bounded) minimal II.
    pub fn oracle_ii(&self) -> u32 {
        match self.verdict {
            IiVerdict::Exact { optimal_ii, .. } => optimal_ii,
            IiVerdict::BoundedUnknown { proven_lower, .. } => proven_lower,
        }
    }

    /// `heuristic II − oracle II` when the oracle verdict is exact.
    pub fn gap(&self) -> Option<u32> {
        match self.verdict {
            IiVerdict::Exact { optimal_ii, .. } => {
                Some(self.heuristic_ii.saturating_sub(optimal_ii))
            }
            IiVerdict::BoundedUnknown { .. } => None,
        }
    }

    /// True when nothing about this case indicates a bug: the validator
    /// certified the schedule and the heuristic II is not below a proven
    /// minimal II.
    pub fn sound(&self) -> bool {
        let below_proven_min = match self.verdict {
            IiVerdict::Exact { optimal_ii, .. } => self.heuristic_ii < optimal_ii,
            IiVerdict::BoundedUnknown { .. } => false,
        };
        self.violations.is_empty() && !below_proven_min
    }
}

/// Runs one loop through the heuristic pipeliner, the validator and the
/// oracle. Emits an [`Event::OracleVerdict`] on `tel` when enabled.
pub fn differential_case(
    lp: &LoopIr,
    machine: &MachineModel,
    opts: &OracleOptions,
    tel: &Telemetry,
) -> CaseReport {
    // Base latencies on both sides: the pipeliner's base-latency graph and
    // `build_with_load_floor(.., 0)` are the same edges, so the oracle
    // answers exactly the question the heuristic attempted.
    let ddg = Ddg::build_with_load_floor(lp, machine, 0);
    let (sched, pipelined): (ModuloSchedule, bool) =
        match pipeline_loop(lp, machine, &|_| None, &PipelineOptions::default()) {
            Ok(p) => (p.schedule, true),
            Err(_) => (acyclic_schedule(lp, machine, &ddg), false),
        };
    let heuristic_ii = sched.ii();
    let violations = match validate_schedule(lp, &ddg, &sched, machine) {
        Ok(_) => Vec::new(),
        Err(v) => v,
    };
    let verdict = prove_min_ii(lp, machine, &ddg, heuristic_ii, opts);

    if tel.is_enabled() {
        let (oracle_ii, nodes) = match &verdict {
            IiVerdict::Exact {
                optimal_ii, nodes, ..
            } => (*optimal_ii, *nodes),
            IiVerdict::BoundedUnknown {
                proven_lower,
                nodes,
            } => (*proven_lower, *nodes),
        };
        tel.emit(Event::OracleVerdict {
            loop_name: lp.name().to_string(),
            heuristic_ii,
            oracle_ii,
            verdict: verdict.tag(),
            gap: i64::from(heuristic_ii) - i64::from(oracle_ii),
            nodes,
        });
    }

    CaseReport {
        name: lp.name().to_string(),
        insts: lp.insts().len(),
        pipelined,
        heuristic_ii,
        violations,
        verdict,
    }
}

/// Aggregate of a differential fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// Every case, in seed order.
    pub cases: Vec<CaseReport>,
    /// Cases whose schedule the validator rejected (must be 0).
    pub rejected: usize,
    /// Cases where the heuristic II undercuts a proven minimum (must
    /// be 0).
    pub unsound: usize,
    /// Exact verdicts with gap 0: heuristic proven optimal.
    pub proven_optimal: usize,
    /// Exact verdicts with gap > 0: heuristic provably suboptimal.
    pub proven_suboptimal: usize,
    /// Budget- or size-limited verdicts.
    pub unknown: usize,
}

impl FuzzSummary {
    /// Largest proven optimality gap across the run.
    pub fn max_gap(&self) -> u32 {
        self.cases
            .iter()
            .filter_map(CaseReport::gap)
            .max()
            .unwrap_or(0)
    }
}

/// Fuzzes `count` machine-generated loops (seeds `seed0..seed0+count`)
/// through [`differential_case`] on `jobs` worker threads and tallies the
/// outcomes. Each case's seed is a pure function of its index (`seed0 +
/// index`) and results — including per-case telemetry — are merged in
/// index order, so the summary and trace are byte-identical for any
/// `jobs` value; a fixed `seed0` makes the run reproducible.
pub fn differential_fuzz(
    seed0: u64,
    count: u64,
    machine: &MachineModel,
    opts: &OracleOptions,
    tel: &Telemetry,
    jobs: usize,
) -> FuzzSummary {
    let seeds: Vec<u64> = (seed0..seed0 + count).collect();
    let cases = ltsp_par::Pool::new(jobs).map_traced(tel, "fuzz", &seeds, |tel, _idx, &seed| {
        let lp = ltsp_workloads::random_loop(seed);
        differential_case(&lp, machine, opts, tel)
    });
    let rejected = cases.iter().filter(|c| !c.violations.is_empty()).count();
    let unsound = cases.iter().filter(|c| !c.sound()).count();
    let proven_optimal = cases.iter().filter(|c| c.gap() == Some(0)).count();
    let proven_suboptimal = cases.iter().filter(|c| c.gap().unwrap_or(0) > 0).count();
    let unknown = cases.iter().filter(|c| c.gap().is_none()).count();
    FuzzSummary {
        cases,
        rejected,
        unsound,
        proven_optimal,
        proven_suboptimal,
        unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_is_proven_optimal() {
        let m = MachineModel::itanium2();
        let mut b = ltsp_ir::LoopBuilder::new("ex");
        let s = b.affine_ref("s", ltsp_ir::DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("d", ltsp_ir::DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        let lp = b.build().unwrap();

        let tel = Telemetry::enabled();
        let r = differential_case(&lp, &m, &OracleOptions::default(), &tel);
        assert!(r.pipelined);
        assert!(r.violations.is_empty());
        assert_eq!(r.gap(), Some(0), "{:?}", r.verdict);
        assert!(r.sound());
        let events = tel.events();
        assert!(events.iter().any(|e| e.event.kind() == "oracle_verdict"));
    }

    #[test]
    fn small_fuzz_runs_clean() {
        let m = MachineModel::itanium2();
        let opts = OracleOptions {
            node_budget: 20_000,
            ..OracleOptions::default()
        };
        let s = differential_fuzz(0, 25, &m, &opts, &Telemetry::disabled(), 2);
        assert_eq!(s.cases.len(), 25);
        assert_eq!(s.rejected, 0, "validator rejected a heuristic schedule");
        assert_eq!(s.unsound, 0, "heuristic II below a proven minimum");
    }
}
