//! The exact scheduling backend: turns the oracle's feasibility search
//! into a second, emission-grade backend that produces real kernels.
//!
//! [`prove_min_ii`] answers "what is the minimal feasible II?" but its
//! witnesses are register-unchecked: the search proves II feasibility
//! against dependences and issue slots only, and a minimal-level witness
//! may overflow the rotating files. This module splits the two concerns
//! the only sound way around:
//!
//! 1. **The optimality claim** comes from the register-free proof
//!    (exactly the verdict the `oracle` op reports), because exhausting
//!    a register-*checked* search proves nothing about the II — minimal-
//!    level realization does not minimize register demand, so a register
//!    rejection there is a property of the realization, not the II.
//! 2. **The emitted schedule** comes from [`search_at_registered`],
//!    walked upward from the proven minimum: the first II with a
//!    register-allocatable witness wins. When no candidate below the
//!    heuristic's II yields one, the backend falls back to the caller's
//!    schedule — which is always register-feasible, because the caller
//!    holds an allocated schedule by construction.
//!
//! Either way, nothing leaves this function unchecked: the returned
//! schedule carries a [`Certificate`] from the independent validator and
//! a [`RegAllocation`] from the production allocator. A schedule that
//! fails either gate is never returned.

use std::time::Instant;

use ltsp_ddg::Ddg;
use ltsp_ir::LoopIr;
use ltsp_machine::MachineModel;
use ltsp_pipeliner::{
    acyclic_schedule, allocate_rotating, pipeline_loop, ModuloSchedule, PipelineOptions,
    RegAllocation,
};

use crate::exact::{prove_min_ii, search_at_registered, Feasibility, IiVerdict, OracleOptions};
use crate::validator::{validate_schedule, Certificate, Violation};

/// A validator-certified, register-allocated schedule from the exact
/// backend.
#[derive(Debug, Clone)]
pub struct ExactSchedule {
    /// The emitted schedule (the refined one, or the caller's fallback).
    pub schedule: ModuloSchedule,
    /// Rotating-register allocation of the emitted schedule.
    pub regs: RegAllocation,
    /// The independent validator's certificate for the emitted schedule.
    pub certificate: Certificate,
    /// True when the emitted II is the register-free proof's minimum —
    /// the schedule is provably II-optimal.
    pub proven_optimal: bool,
    /// True when the emitted schedule improves on the caller's upper
    /// bound (a strictly smaller II).
    pub refined: bool,
    /// Search nodes expanded across the proof and the emission walk.
    pub nodes: u64,
}

/// Runs the exact backend: proves the minimal II (register-free), then
/// searches for a register-allocatable witness from that minimum upward,
/// falling back to `upper` (the caller's known-good schedule, e.g. the
/// heuristic pipeliner's) when no better emittable schedule is found
/// within budget. The emitted schedule is re-certified by the
/// independent validator and register-allocated before it is returned.
///
/// The wall-clock budget in `opts` bounds each of the two phases (proof
/// and emission) separately, so a request spends at most twice the
/// configured deadline here; the node budget applies per candidate II as
/// in [`prove_min_ii`].
///
/// # Errors
///
/// Returns the validator's violations if the schedule selected for
/// emission fails certification — including the fallback path, so a
/// caller passing an illegal `upper` is told loudly instead of having
/// the bytes laundered through the backend.
pub fn exact_schedule(
    lp: &LoopIr,
    machine: &MachineModel,
    ddg: &Ddg,
    upper: &ModuloSchedule,
    opts: &OracleOptions,
) -> Result<ExactSchedule, Vec<Violation>> {
    let verdict = prove_min_ii(lp, machine, ddg, upper.ii(), opts);
    let (proven, target, mut nodes) = match verdict {
        IiVerdict::Exact {
            optimal_ii, nodes, ..
        } => (true, optimal_ii, nodes),
        IiVerdict::BoundedUnknown {
            proven_lower,
            nodes,
        } => (false, proven_lower, nodes),
    };

    // Emission walk: lowest candidate II with a register-allocatable
    // witness wins. Even under a BoundedUnknown verdict a witness found
    // here is a genuine improvement (just not a proven-optimal one).
    let deadline = opts.time_budget.map(|d| Instant::now() + d);
    let mut schedule = upper.clone();
    let mut refined = false;
    for ii in target..upper.ii() {
        match search_at_registered(lp, machine, ddg, ii, opts.node_budget, deadline, &mut nodes) {
            Feasibility::Feasible(s) => {
                schedule = s;
                refined = true;
                break;
            }
            Feasibility::Infeasible => continue,
            Feasibility::Unknown => break,
        }
    }

    let certificate = validate_schedule(lp, ddg, &schedule, machine)?;
    let regs = allocate_rotating(lp, &schedule, machine).map_err(|e| {
        vec![Violation::RegisterOverflow {
            class: e.class,
            needed: e.needed,
            available: e.available,
        }]
    })?;
    let proven_optimal = proven && schedule.ii() == target;
    Ok(ExactSchedule {
        schedule,
        regs,
        certificate,
        proven_optimal,
        refined,
        nodes,
    })
}

/// One full exact-backend case as a serving layer consumes it: the
/// heuristic schedule plus the exact backend's emission, with the
/// telemetry a response body carries.
#[derive(Debug, Clone)]
pub struct ExactCase {
    /// The loop's name.
    pub name: String,
    /// True when the heuristic upper bound is a real modulo schedule
    /// (false = acyclic fallback).
    pub pipelined: bool,
    /// The heuristic pipeliner's II (the exact backend's upper bound).
    pub heuristic_ii: u32,
    /// The exact backend's emission (schedule, allocation, certificate).
    pub result: ExactSchedule,
}

/// The one-call emission path servers use: builds the base-latency DDG,
/// runs the heuristic pipeliner (acyclic fallback included) for the
/// upper bound, then [`exact_schedule`]. The base-latency DDG matches
/// the `oracle` op's proof, and any latency-boosted heuristic schedule
/// still satisfies base constraints, so the upper bound is always legal.
///
/// # Errors
///
/// Propagates [`exact_schedule`]'s violations (which certify the
/// heuristic fallback too, so a broken pipeliner cannot hide here).
pub fn exact_case(
    lp: &LoopIr,
    machine: &MachineModel,
    opts: &OracleOptions,
) -> Result<ExactCase, Vec<Violation>> {
    let ddg = Ddg::build_with_load_floor(lp, machine, 0);
    let (upper, pipelined) =
        match pipeline_loop(lp, machine, &|_| None, &PipelineOptions::default()) {
            Ok(p) => (p.schedule, true),
            Err(_) => (acyclic_schedule(lp, machine, &ddg), false),
        };
    let heuristic_ii = upper.ii();
    let result = exact_schedule(lp, machine, &ddg, &upper, opts)?;
    Ok(ExactCase {
        name: lp.name().to_string(),
        pipelined,
        heuristic_ii,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heuristic(lp: &LoopIr, m: &MachineModel) -> ModuloSchedule {
        pipeline_loop(lp, m, &|_| None, &PipelineOptions::default())
            .expect("test loops pipeline")
            .schedule
    }

    #[test]
    fn emits_the_heuristic_schedule_when_already_optimal() {
        let m = MachineModel::itanium2();
        let mut b = ltsp_ir::LoopBuilder::new("ex");
        let s = b.affine_ref("s", ltsp_ir::DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("d", ltsp_ir::DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        let lp = b.build().unwrap();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        let upper = heuristic(&lp, &m);
        let r = exact_schedule(&lp, &m, &ddg, &upper, &OracleOptions::default()).unwrap();
        assert_eq!(r.schedule.ii(), upper.ii());
        assert!(r.proven_optimal);
        assert!(!r.refined, "nothing below the optimum to refine to");
        assert_eq!(r.certificate.ii, upper.ii());
    }

    #[test]
    fn rejects_an_illegal_upper_bound() {
        let m = MachineModel::itanium2();
        let mut b = ltsp_ir::LoopBuilder::new("bad");
        let s = b.affine_ref("s", ltsp_ir::DataClass::Int, 0, 4, 4);
        let v = b.load(s);
        let _ = b.add(v, v);
        let lp = b.build().unwrap();
        let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
        // ld and its consumer in the same cycle: violates the load edge.
        // The backend refuses to launder an illegal fallback. The search
        // may still refine below II=9; pick a large II so the proof's
        // node budget runs dry and the fallback is selected.
        let illegal = ModuloSchedule::new(9, vec![0, 0]);
        let opts = OracleOptions {
            node_budget: 0,
            ..OracleOptions::default()
        };
        let v = exact_schedule(&lp, &m, &ddg, &illegal, &opts).unwrap_err();
        assert!(v.iter().any(|x| x.kind() == "dependence"), "{v:?}");
    }

    #[test]
    fn exact_case_runs_end_to_end_from_a_bare_loop() {
        let m = MachineModel::itanium2();
        let lp = ltsp_workloads::saxpy("s");
        let c = exact_case(&lp, &m, &OracleOptions::default()).unwrap();
        assert_eq!(c.name, "s");
        assert!(c.pipelined);
        assert!(c.result.schedule.ii() <= c.heuristic_ii);
        assert!(c.result.proven_optimal, "saxpy is small enough to prove");
    }

    #[test]
    fn exact_backend_output_always_certifies_and_allocates() {
        let m = MachineModel::itanium2();
        let opts = OracleOptions {
            node_budget: 30_000,
            ..OracleOptions::default()
        };
        for seed in 0..40u64 {
            let lp = ltsp_workloads::random_loop(seed);
            if lp.insts().len() > 16 {
                continue;
            }
            let ddg = Ddg::build_with_load_floor(&lp, &m, 0);
            let Ok(p) = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()) else {
                continue;
            };
            let r = exact_schedule(&lp, &m, &ddg, &p.schedule, &opts)
                .unwrap_or_else(|v| panic!("seed {seed}: {v:?}"));
            assert!(r.schedule.ii() <= p.schedule.ii(), "seed {seed}");
            assert_eq!(
                r.regs,
                allocate_rotating(&lp, &r.schedule, &m).unwrap(),
                "seed {seed}: reported allocation matches a fresh one"
            );
        }
    }
}
