//! A self-contained, offline subset of the `proptest` crate.
//!
//! The real `proptest` lives on crates.io; this workspace must build with
//! no network access, so this crate reimplements exactly the surface the
//! test suite uses — random value generation from strategies, the
//! `proptest!` / `prop_assert!` macros, integer/float ranges, `Just`,
//! `any::<bool>()`, `prop_oneof!`, tuples and `collection::vec` — with a
//! deterministic per-test RNG. Shrinking and persistence are intentionally
//! omitted: on failure the offending inputs are printed instead (every
//! test derives its seed from the test name and case index, so a failure
//! reproduces by rerunning the test).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! `vec` strategy over element strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length falls in `len` (half-open, like the
    /// real API's `SizeRange` from a range).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, returning a
/// [`test_runner::TestCaseError`] instead of panicking so the harness can
/// report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Picks uniformly among alternative strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs (default 256, or
/// the `#![proptest_config(...)]` header's setting).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest '{}' failed at case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Color {
        Red,
        Green,
        Blue,
    }

    fn colors() -> impl Strategy<Value = Color> {
        prop_oneof![Just(Color::Red), Just(Color::Green), Just(Color::Blue)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 1u32..5, x in 1.0f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..5).contains(&b));
            prop_assert!((1.0..2.0).contains(&x));
        }

        #[test]
        fn oneof_and_vec_compose(
            c in colors(),
            v in crate::collection::vec((0u64..10, 1u32..4), 1..6),
        ) {
            prop_assert!(matches!(c, Color::Red | Color::Green | Color::Blue));
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (x, y) in v {
                prop_assert!(x < 10 && (1..4).contains(&y));
            }
        }

        #[test]
        fn early_return_is_allowed(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("generation");
        let mut b = crate::test_runner::TestRng::for_test("generation");
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn failure_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(x in 0u64..4) {
                    prop_assert!(x > 100, "x too small: {x}");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("x too small"), "{msg}");
        assert!(msg.contains("inputs: x ="), "{msg}");
    }
}
