//! Test configuration, RNG and failure type for the offline proptest.

use std::fmt;

/// How many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property within a test case (produced by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG (SplitMix64) seeded from the test name, so every run
/// of a given test sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
