//! Value-generation strategies (no shrinking).

use std::fmt::Debug;
use std::ops::Range;

use crate::test_runner::TestRng;

/// Generates random values of one type. Unlike the real proptest there is
/// no `ValueTree`: failures report the generated inputs instead of
/// shrinking them.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies of one value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy (only the handful the test
/// suite needs).
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy wrapper for [`Arbitrary`] types.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArbitraryStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
    ArbitraryStrategy(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
