//! Minimal JSON writing and parsing — just enough for the exporters and
//! for tests that validate emitted artifacts. No external crates: the
//! build must work with no network access.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A scalar field value in an event or metric record.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (written with enough precision to round-trip).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl Scalar {
    /// Writes the value as a JSON token.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Scalar::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Scalar::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Scalar::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Scalar::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Scalar::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

impl From<&str> for Scalar {
    fn from(s: &str) -> Self {
        Scalar::Str(s.to_string())
    }
}

impl From<String> for Scalar {
    fn from(s: String) -> Self {
        Scalar::Str(s)
    }
}

impl From<u64> for Scalar {
    fn from(v: u64) -> Self {
        Scalar::U64(v)
    }
}

impl From<u32> for Scalar {
    fn from(v: u32) -> Self {
        Scalar::U64(u64::from(v))
    }
}

impl From<usize> for Scalar {
    fn from(v: usize) -> Self {
        Scalar::U64(v as u64)
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::I64(v)
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::F64(v)
    }
}

impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}

/// Writes `{"k":v,...}` from field pairs.
pub fn write_object(out: &mut String, fields: &[(&str, Scalar)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(k));
        out.push_str("\":");
        v.write_json(out);
    }
    out.push('}');
}

/// A parsed JSON value (reader side; used to validate emitted traces).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (always parsed as f64 — traces stay well inside 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object's ordered `(key, value)` fields, if it is
    /// one.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Re-serializes the value as compact JSON, preserving object field
    /// order. Whole numbers render without a fractional part, so a parse →
    /// render round-trip of integer-valued traces is stable.
    pub fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    let _ = write!(out, "{}", *n as i64);
                } else if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// A human-readable message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not needed for our own output.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the maximal run of unescaped bytes in one step.
                // (`"` and `\` are ASCII, so the boundary can never split
                // a multi-byte UTF-8 character; validating per character
                // would re-scan the whole tail and turn quadratic.)
                let start = *pos;
                while let Some(&c) = b.get(*pos) {
                    if c == b'"' || c == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_objects() {
        let mut s = String::new();
        write_object(
            &mut s,
            &[
                ("type", "boost_assigned".into()),
                ("k", 3u32.into()),
                ("slack", Scalar::I64(-2)),
                ("note", "a \"quoted\"\nline".into()),
                ("frac", 0.5f64.into()),
                ("on", true.into()),
            ],
        );
        let v = parse(&s).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("boost_assigned"));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("slack").unwrap().as_f64(), Some(-2.0));
        assert_eq!(v.get("note").unwrap().as_str(), Some("a \"quoted\"\nline"));
        assert_eq!(v.get("frac").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("on"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn parses_nested_arrays() {
        let v = parse(r#"{"a":[1,2,{"b":null}], "c": []}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("c").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
    }
}
