//! Poison-tolerant locking.
//!
//! `Mutex::lock().unwrap()` turns one panicking thread into a process
//! abort cascade: every later thread that touches the poisoned lock
//! panics too. For the serving stack — where a single request's panic
//! must be contained, answered as an error, and forgotten — that policy
//! is exactly wrong. Every lock in this workspace guards data whose
//! invariants hold between statements (queues, append-only buffers,
//! LRU maps): a panic while holding the lock cannot leave them
//! half-updated in a way later readers would misinterpret, so the
//! poison flag carries no information we want to act on.

use std::sync::{Mutex, MutexGuard};

/// Locks `m`, recovering the guard when the mutex is poisoned.
///
/// A poisoned mutex means some thread panicked while holding it; the
/// protected value is still there, and for the collection-shaped state
/// this workspace locks, still structurally valid. Recovering keeps one
/// contained panic from cascade-aborting every other thread.
#[inline]
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Mutex::new(vec![1, 2, 3]);
        // Poison it: panic while holding the guard.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison");
        }));
        assert!(m.is_poisoned(), "the panic should have poisoned the lock");
        let g = lock_unpoisoned(&m);
        assert_eq!(*g, vec![1, 2, 3], "the value survives poisoning");
    }

    #[test]
    fn plain_lock_still_works() {
        let m = Mutex::new(7u32);
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }
}
