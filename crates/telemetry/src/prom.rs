//! Minimal Prometheus text exposition: a renderer for the daemon's
//! `{"op":"metrics"}` snapshot and a parser/checker used by `ltspc top`,
//! `loadgen --metrics-out`, tests, and CI.
//!
//! Only the slice of the format we emit is supported: `# TYPE`/`# HELP`
//! comment lines and `name{label="value",...} value` samples. Histograms
//! follow the standard convention — cumulative `_bucket{le="..."}`
//! series per label set, closed by `le="+Inf"`, plus `_sum` and
//! `_count`. No external dependencies, like everything else here.

use crate::metrics::Histogram;

/// Appends a `# TYPE` line.
pub fn push_type(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn push_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&crate::json::escape(v));
        out.push('"');
    }
    out.push('}');
}

/// Appends one sample line, `name{labels} value`.
pub fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    push_labels(out, labels);
    out.push(' ');
    if value.fract() == 0.0 && value.abs() < 1e15 {
        out.push_str(&format!("{}", value as i64));
    } else {
        out.push_str(&format!("{value}"));
    }
    out.push('\n');
}

/// Appends a full histogram family instance (cumulative `_bucket` lines
/// with `le="+Inf"`, `_sum`, `_count`) for one label set. The caller
/// emits the `# TYPE name histogram` line once per family.
pub fn push_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], h: &Histogram) {
    let bucket = format!("{name}_bucket");
    for (le, cum) in h.cumulative_buckets() {
        let le_s = if le == u64::MAX {
            "+Inf".to_string()
        } else {
            le.to_string()
        };
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", &le_s));
        push_sample(out, &bucket, &ls, cum as f64);
    }
    // The +Inf bucket is mandatory even when the top recorded bucket is
    // finite (or the histogram is empty).
    if h.cumulative_buckets().last().map(|&(le, _)| le) != Some(u64::MAX) {
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        push_sample(out, &bucket, &ls, h.count as f64);
    }
    push_sample(out, &format!("{name}_sum"), labels, h.sum as f64);
    push_sample(out, &format!("{name}_count"), labels, h.count as f64);
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True when this sample carries exactly `want` after dropping `le`.
    fn matches(&self, name: &str, want: &[(&str, &str)]) -> bool {
        if self.name != name {
            return false;
        }
        let rest: Vec<&(String, String)> = self.labels.iter().filter(|(k, _)| k != "le").collect();
        rest.len() == want.len()
            && want
                .iter()
                .all(|(k, v)| rest.iter().any(|r| r.0 == *k && r.1 == *v))
    }
}

/// A parsed (and structurally validated) exposition snapshot.
#[derive(Debug, Default)]
pub struct PromSnapshot {
    /// Every sample line, in source order.
    pub samples: Vec<Sample>,
}

fn parse_line(line: &str) -> Result<Sample, String> {
    let err = |m: &str| format!("{m}: {line:?}");
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| err("sample line without value"))?;
    let value: f64 = value.parse().map_err(|_| err("unparseable value"))?;
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| err("unterminated label set"))?;
            let mut labels = Vec::new();
            if !body.is_empty() {
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=').ok_or_else(|| err("label without ="))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((k.to_string(), v.to_string()));
                }
            }
            (name.to_string(), labels)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(err("invalid metric name"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn le_value(s: &str) -> Result<f64, String> {
    if s == "+Inf" {
        Ok(f64::INFINITY)
    } else {
        s.parse().map_err(|_| format!("unparseable le {s:?}"))
    }
}

impl PromSnapshot {
    /// Parses exposition text, validating line syntax and — for every
    /// `*_bucket` family instance — that cumulative counts are monotone
    /// in `le`, the `le="+Inf"` bucket is present, and it agrees with
    /// the matching `_count` sample when one exists.
    pub fn parse(text: &str) -> Result<PromSnapshot, String> {
        let mut samples = Vec::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            samples.push(parse_line(line)?);
        }
        let snap = PromSnapshot { samples };
        snap.check_histograms()?;
        Ok(snap)
    }

    fn check_histograms(&self) -> Result<(), String> {
        // Group _bucket samples by (family, labels-minus-le).
        type BucketGroup = (String, Vec<(String, String)>, Vec<(f64, f64)>);
        let mut groups: Vec<BucketGroup> = Vec::new();
        for s in &self.samples {
            let Some(family) = s.name.strip_suffix("_bucket") else {
                continue;
            };
            let le = le_value(
                s.label("le")
                    .ok_or_else(|| format!("{}: bucket sample without le label", s.name))?,
            )?;
            let key: Vec<(String, String)> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            match groups.iter_mut().find(|(f, k, _)| f == family && *k == key) {
                Some((_, _, les)) => les.push((le, s.value)),
                None => groups.push((family.to_string(), key, vec![(le, s.value)])),
            }
        }
        for (family, key, les) in &groups {
            let ctx = || format!("{family}{key:?}");
            let mut sorted = les.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut prev = -1.0f64;
            for &(_, cum) in &sorted {
                if cum < prev {
                    return Err(format!("{}: non-monotone cumulative buckets", ctx()));
                }
                prev = cum;
            }
            let Some(&(last_le, last_cum)) = sorted.last() else {
                continue;
            };
            if last_le != f64::INFINITY {
                return Err(format!("{}: missing le=\"+Inf\" bucket", ctx()));
            }
            let count_name = format!("{family}_count");
            let want: Vec<(&str, &str)> =
                key.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            if let Some(count) = self.samples.iter().find(|s| s.matches(&count_name, &want)) {
                if count.value != last_cum {
                    return Err(format!(
                        "{}: +Inf bucket {} disagrees with _count {}",
                        ctx(),
                        last_cum,
                        count.value
                    ));
                }
            }
        }
        Ok(())
    }

    /// The value of the sample matching `name` and exactly `labels`
    /// (order-insensitive), if present.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.matches(name, labels))
            .map(|s| s.value)
    }

    /// A histogram instance's sample count (`<name>_count`).
    pub fn histogram_count(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.value(&format!("{name}_count"), labels)
    }

    /// Estimates the `q`-quantile of a histogram family instance from
    /// its cumulative buckets (the upper bound of the first bucket whose
    /// cumulative count reaches rank). `None` when absent or empty.
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        let bucket_name = format!("{name}_bucket");
        let mut buckets: Vec<(f64, f64)> = self
            .samples
            .iter()
            .filter(|s| s.matches(&bucket_name, labels))
            .filter_map(|s| le_value(s.label("le")?).ok().map(|le| (le, s.value)))
            .collect();
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let total = buckets.last()?.1;
        if total == 0.0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total).ceil().max(1.0);
        let mut bounded = 0.0f64;
        for &(le, cum) in &buckets {
            if cum >= rank {
                if le.is_finite() {
                    return Some(le);
                }
                // Rank lands in the +Inf bucket: best effort is the last
                // finite bound (or 0 when every sample overflowed).
                return Some(bounded);
            }
            if le.is_finite() {
                bounded = le;
            }
        }
        Some(bounded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let mut h = Histogram::default();
        for v in [3u64, 9, 17, 17, 250, 1024] {
            h.record(v);
        }
        let mut out = String::new();
        push_type(&mut out, "ltsp_requests_total", "counter");
        push_sample(&mut out, "ltsp_requests_total", &[("status", "ok")], 7.0);
        push_type(&mut out, "ltsp_phase_us", "histogram");
        push_histogram(&mut out, "ltsp_phase_us", &[("phase", "sched")], &h);
        let snap = PromSnapshot::parse(&out).expect("parses");
        assert_eq!(
            snap.value("ltsp_requests_total", &[("status", "ok")]),
            Some(7.0)
        );
        assert_eq!(
            snap.histogram_count("ltsp_phase_us", &[("phase", "sched")]),
            Some(6.0)
        );
        let p50 = snap
            .histogram_quantile("ltsp_phase_us", &[("phase", "sched")], 0.5)
            .unwrap();
        // Median sample is 17; the estimate is its bucket's upper bound.
        assert!((15.0..=20.0).contains(&p50), "p50 estimate {p50}");
    }

    #[test]
    fn empty_histogram_still_valid_and_quantile_none() {
        let h = Histogram::default();
        let mut out = String::new();
        push_type(&mut out, "x_us", "histogram");
        push_histogram(&mut out, "x_us", &[], &h);
        let snap = PromSnapshot::parse(&out).expect("parses");
        assert_eq!(snap.histogram_count("x_us", &[]), Some(0.0));
        assert_eq!(snap.histogram_quantile("x_us", &[], 0.5), None);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(PromSnapshot::parse("no_value_here\n").is_err());
        assert!(PromSnapshot::parse("bad-name 1\n").is_err());
        assert!(PromSnapshot::parse("x{le=\"oops} 1\n").is_err());
        // Non-monotone cumulative buckets are rejected.
        let bad = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n";
        assert!(PromSnapshot::parse(bad).is_err());
        // Missing +Inf is rejected.
        let bad2 = "h_bucket{le=\"1\"} 5\n";
        assert!(PromSnapshot::parse(bad2).is_err());
    }
}
