//! Request-scoped phase timing.
//!
//! A [`PhaseTimer`] is a fixed array of atomic microsecond accumulators,
//! one per [`Phase`] — the compile pipeline's stages plus the daemon's
//! request-lifecycle segments. It is independent of [`crate::Telemetry`]
//! enablement (a served request always has one), `Sync` so the daemon
//! and the compile path can feed the same timer, and purely observational:
//! timing a closure changes nothing about its result.
//!
//! Determinism contract: phase *durations* are wall-clock and therefore
//! nondeterministic, so they never appear in any byte-compared artifact
//! unless the client opts in (`"timings":true` on the wire) or the
//! consumer scrubs them (the flight-recorder dump normalizer zeroes every
//! `*_us` field). The *shape* of [`PhaseTimer::to_json_object`] is fixed —
//! all phases, in declaration order, even when zero — so scrubbed
//! artifacts compare byte-identical across runs and `--jobs` levels.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One timed segment of a request's life. The first seven are compiler
/// phases (recorded inside the compile path), the rest are server-side
/// lifecycle segments (recorded by the daemon and engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Loop-language parsing (engine-side request body → `Loop`).
    Parse,
    /// High-level optimizations (`run_hlo`).
    Hlo,
    /// DDG construction, ResMII/RecMII analysis, and data-speculation
    /// edge pruning.
    Ddg,
    /// Modulo-reservation setup: load criticality classification and the
    /// acyclic profitability ceiling.
    Mrt,
    /// Modulo scheduling proper, across all II escalation retries.
    Sched,
    /// Rotating register allocation, across all II escalation retries.
    Regalloc,
    /// Emit/render: formatting the compiled artifact into the response
    /// body.
    Render,
    /// Time spent queued before the dispatcher picked the request up.
    QueueWait,
    /// Result-cache probe time (recorded on hits; misses attribute their
    /// time to the compile phases above).
    CacheLookup,
    /// Dispatcher hand-off: from queue pop to the handler starting.
    Dispatch,
    /// Total engine handler time (covers parse through render).
    Handler,
    /// Outbound writer time actually spent writing this response to the
    /// socket (metrics-only: the response envelope is sealed before the
    /// write happens).
    Write,
}

/// All phases, in declaration (and serialization) order.
pub const ALL_PHASES: [Phase; 12] = [
    Phase::Parse,
    Phase::Hlo,
    Phase::Ddg,
    Phase::Mrt,
    Phase::Sched,
    Phase::Regalloc,
    Phase::Render,
    Phase::QueueWait,
    Phase::CacheLookup,
    Phase::Dispatch,
    Phase::Handler,
    Phase::Write,
];

impl Phase {
    /// The phase's wire/metric name (also the Prometheus `phase` label).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Hlo => "hlo",
            Phase::Ddg => "ddg",
            Phase::Mrt => "mrt",
            Phase::Sched => "sched",
            Phase::Regalloc => "regalloc",
            Phase::Render => "render",
            Phase::QueueWait => "queue_wait",
            Phase::CacheLookup => "cache_lookup",
            Phase::Dispatch => "dispatch",
            Phase::Handler => "handler",
            Phase::Write => "write",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Hlo => 1,
            Phase::Ddg => 2,
            Phase::Mrt => 3,
            Phase::Sched => 4,
            Phase::Regalloc => 5,
            Phase::Render => 6,
            Phase::QueueWait => 7,
            Phase::CacheLookup => 8,
            Phase::Dispatch => 9,
            Phase::Handler => 10,
            Phase::Write => 11,
        }
    }
}

/// Per-request phase accumulators, in microseconds.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    us: [AtomicU64; ALL_PHASES.len()],
}

impl PhaseTimer {
    /// A fresh timer with every phase at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `us` microseconds to a phase (phases hit repeatedly — e.g.
    /// `sched` across II escalation retries — accumulate).
    pub fn add_us(&self, phase: Phase, us: u64) {
        self.us[phase.index()].fetch_add(us, Ordering::Relaxed);
    }

    /// Times a closure into a phase and returns its result.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.add_us(phase, t0.elapsed().as_micros() as u64);
        out
    }

    /// A phase's accumulated microseconds.
    pub fn get_us(&self, phase: Phase) -> u64 {
        self.us[phase.index()].load(Ordering::Relaxed)
    }

    /// All `(phase, us)` pairs in declaration order, zeros included.
    pub fn snapshot(&self) -> Vec<(Phase, u64)> {
        ALL_PHASES.iter().map(|&p| (p, self.get_us(p))).collect()
    }

    /// The breakdown as a JSON object, `{"parse_us":0,...}`. Every phase
    /// is present in a fixed order so the object's *shape* is
    /// deterministic even though the values are wall-clock.
    pub fn to_json_object(&self) -> String {
        let mut out = String::from("{");
        for (i, (p, us)) in self.snapshot().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}_us\":{us}", p.name()));
        }
        out.push('}');
        out
    }
}

/// Times `f` into `phase` when a timer is present; otherwise just runs
/// it. The compile path threads `Option<&PhaseTimer>` so un-instrumented
/// callers pay only this branch.
pub fn time_opt<R>(phases: Option<&PhaseTimer>, phase: Phase, f: impl FnOnce() -> R) -> R {
    match phases {
        Some(t) => t.time(phase, f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_snapshot_in_order() {
        let t = PhaseTimer::new();
        t.add_us(Phase::Sched, 5);
        t.add_us(Phase::Sched, 7);
        t.add_us(Phase::Parse, 1);
        assert_eq!(t.get_us(Phase::Sched), 12);
        let snap = t.snapshot();
        assert_eq!(snap.len(), ALL_PHASES.len());
        assert_eq!(snap[0], (Phase::Parse, 1));
        assert_eq!(snap[4], (Phase::Sched, 12));
    }

    #[test]
    fn json_object_has_every_phase_in_fixed_order() {
        let t = PhaseTimer::new();
        t.add_us(Phase::Handler, 42);
        let obj = t.to_json_object();
        let v = crate::json::parse(&obj).expect("valid json");
        for p in ALL_PHASES {
            assert!(
                v.get(&format!("{}_us", p.name())).is_some(),
                "missing {}",
                p.name()
            );
        }
        assert_eq!(v.get("handler_us").unwrap().as_u64(), Some(42));
        // Shape is fixed: an empty timer serializes to the same keys.
        let empty = PhaseTimer::new().to_json_object();
        let ev = crate::json::parse(&empty).expect("valid json");
        assert_eq!(ev.get("handler_us").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn time_opt_is_transparent() {
        let t = PhaseTimer::new();
        assert_eq!(time_opt(Some(&t), Phase::Hlo, || 3), 3);
        assert_eq!(time_opt(None, Phase::Hlo, || 4), 4);
    }
}
