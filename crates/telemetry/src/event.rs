//! The typed compiler decision trace.
//!
//! Every consequential choice the compiler makes on its way to a kernel is
//! an [`Event`]: which HLO heuristic hinted a reference, how each load's
//! criticality verdict fell, what latency boost a load was assigned, every
//! II escalation during iterative modulo scheduling, and the
//! register-pressure fallbacks. Events carry only primitive fields so the
//! telemetry crate depends on nothing else in the workspace.

use crate::json::Scalar;

/// One compiler decision (or diagnostic) worth tracing.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The HLO prefetcher decided what to do with one memory reference
    /// (paper Sec. 3.2). `heuristic` identifies the rule that set the
    /// latency hint: `"1"` not-prefetchable, `"2a"` symbolic stride,
    /// `"2b"` indirect target, `"3"` OzQ pressure.
    HloDecision {
        /// Enclosing loop.
        loop_name: String,
        /// The reference's source name (e.g. `"a[i]"`).
        memref: String,
        /// Which hint heuristic fired, if any.
        heuristic: Option<&'static str>,
        /// The latency hint set (`"L2"`/`"L3"`), if any.
        hint: Option<&'static str>,
        /// Prefetch distance in iterations, when a prefetch was emitted.
        prefetch_distance: Option<u32>,
        /// Covered by a leading reference to the same stream.
        deduped: bool,
    },
    /// Recurrence-cycle enumeration finished on one dependence graph.
    CycleEnumeration {
        /// Cycles enumerated.
        cycles: u64,
        /// Enumeration cap.
        cap: u64,
        /// True when the cap stopped the enumeration early.
        truncated: bool,
    },
    /// The criticality verdict for one load (paper Sec. 3.3): boosting is
    /// allowed only when every recurrence cycle through the load keeps its
    /// implied II at or under the `threshold = max(ResMII, base RecMII)`.
    CriticalityVerdict {
        /// Enclosing loop.
        loop_name: String,
        /// The load instruction (IR id).
        load: String,
        /// True when the load must stay at its base latency.
        critical: bool,
        /// Worst implied II over raised cycles through this load (0 when
        /// the load sits on no recurrence cycle).
        implied_ii: u32,
        /// The II the loop must not exceed for boosting to be free.
        threshold: u32,
        /// `threshold − implied_ii`: headroom (negative = violation).
        slack: i64,
    },
    /// A load was scheduled at a boosted latency in the final kernel.
    /// The latency is realized as `d = (k−1)·II` extra buffer stages.
    BoostAssigned {
        /// Enclosing loop.
        loop_name: String,
        /// The load instruction (IR id).
        load: String,
        /// The HLO heuristic behind the hint (`"1"`, `"2a"`, `"2b"`,
        /// `"3"`), or `"policy"` for blanket policies, `"sampled"` for
        /// miss-sampled latencies.
        heuristic: &'static str,
        /// Base (L1) latency the baseline would schedule.
        base_latency: u32,
        /// The scheduled (boosted) latency.
        scheduled_latency: u32,
        /// Chosen stage count for the load: `k = ceil(latency / II)`.
        k: u32,
        /// Extra latency tolerance bought: `d = (k−1)·II`.
        boost: u32,
        /// The kernel's initiation interval.
        ii: u32,
        /// `k·II − scheduled_latency`: over-coverage of the chosen k.
        slack: i64,
    },
    /// One modulo-scheduling attempt (one II × latency setting).
    ScheduleAttempt {
        /// Enclosing loop.
        loop_name: String,
        /// The II tried.
        ii: u32,
        /// `"boosted"` or `"base"` latencies.
        latencies: &'static str,
        /// `"scheduled"`, `"infeasible"`, or `"budget-exhausted"`.
        outcome: &'static str,
    },
    /// Iterative modulo scheduling moved to a higher II.
    IiEscalation {
        /// Enclosing loop.
        loop_name: String,
        /// The II that failed.
        from_ii: u32,
        /// The II tried next.
        to_ii: u32,
        /// `"boosted"` or `"base"` phase of the fallback ladder.
        phase: &'static str,
    },
    /// Rotating register allocation failed; the fallback ladder reacts
    /// (paper Sec. 3.3: "first reduce the non-critical load latencies …,
    /// then continue to iterate at successively higher IIs").
    RegallocFallback {
        /// Enclosing loop.
        loop_name: String,
        /// The II whose schedule failed to allocate.
        ii: u32,
        /// Register class that overflowed (`"GR"`, `"FR"`, `"PR"`).
        class: &'static str,
        /// Registers the schedule needed.
        needed: u32,
        /// Registers the machine has.
        available: u32,
        /// `"drop-boosts"` or `"escalate-ii"`.
        action: &'static str,
    },
    /// Pipelining was rejected; the loop fell back to the acyclic
    /// list schedule.
    AcyclicFallback {
        /// Enclosing loop.
        loop_name: String,
        /// Scheduling attempts consumed before giving up.
        attempts: u32,
        /// The Min II that could not be realized.
        min_ii: u32,
    },
    /// The exact-II oracle's verdict on one loop: whether the heuristic
    /// pipeliner's II is proven optimal, provably suboptimal, or
    /// unresolved within the search budget.
    OracleVerdict {
        /// The loop examined.
        loop_name: String,
        /// The II the heuristic pipeliner achieved.
        heuristic_ii: u32,
        /// The oracle's proven minimal II (`verdict == "exact"`), or the
        /// proven lower bound when the budget ran out.
        oracle_ii: u32,
        /// `"exact"` or `"bounded-unknown"`.
        verdict: &'static str,
        /// `heuristic_ii − oracle_ii`: 0 with an exact verdict means the
        /// heuristic is proven optimal; positive is the optimality gap.
        gap: i64,
        /// Search nodes the oracle expanded.
        nodes: u64,
    },
    /// One round of the adaptive feedback loop (crates/adaptive): the
    /// loop was compiled, certified and simulated, and the observed
    /// behaviour was folded into the next round's hint overlay.
    AdaptiveRound {
        /// The loop being refined.
        loop_name: String,
        /// Round index (0 = the static compile).
        round: u32,
        /// The II this round's schedule achieved.
        ii: u32,
        /// True when this round's schedule was software-pipelined.
        pipelined: bool,
        /// References with an observed verdict in this round's overlay
        /// (0 in round 0, which compiles statically).
        covered: u64,
        /// References whose verdict changed from the previous round's
        /// overlay (0 means the hints reached their fixpoint).
        hint_deltas: u64,
        /// Simulated stall cycles over the measurement window.
        stall_cycles: u64,
        /// Simulated total cycles over the measurement window.
        total_cycles: u64,
    },
    /// One work item executed on a pool worker thread
    /// (`ltsp-par`). Emitted by the pool when per-item telemetry buffers
    /// are spliced back in index order; the Chrome exporter renders these
    /// as complete events on per-worker lanes. Worker attribution and
    /// timing are scheduling-dependent and are stripped by
    /// [`crate::normalize_trace`]; `pool` and `item` are deterministic.
    WorkerSpan {
        /// The batch label (e.g. `"suite"`, `"fuzz"`).
        pool: String,
        /// Worker thread index within the pool (0-based).
        worker: u64,
        /// The item's input index — results and traces merge in this
        /// order.
        item: u64,
        /// Item start, µs since the parent sink's epoch.
        start_us: u64,
        /// Item wall-clock duration in µs.
        dur_us: u64,
    },
    /// One request served by the `ltspd` compilation daemon
    /// (`ltsp-server`). Carries only deterministic request-derived
    /// fields — wall-clock latency lives in the metrics histograms, so a
    /// trace stays byte-identical across worker counts and runs.
    ServerRequest {
        /// The client-supplied (or server-assigned) trace ID.
        trace_id: String,
        /// Request class: `"compile"`, `"verify"`, `"oracle"`, `"ping"`,
        /// `"stats"`, or `"shutdown"`.
        op: &'static str,
        /// Terminal status: `"ok"`, `"rejected"`, `"error"`,
        /// `"overloaded"`, or `"draining"`.
        status: &'static str,
        /// `"hit"`, `"miss"`, or `"-"` for uncacheable request classes.
        cache: &'static str,
        /// The loop the request concerned (empty for admin requests).
        loop_name: String,
    },
    /// A lifecycle transition of the `ltspd` daemon: listening, drain
    /// initiated, drain complete, or the dispatcher dying abnormally.
    ServerLifecycle {
        /// `"listen"`, `"drain"`, `"dispatcher-died"`, or `"stopped"`.
        phase: &'static str,
        /// Free-form detail (bind address, drain reason, request totals).
        detail: String,
    },
    /// A request handler panicked and the panic was contained: the
    /// daemon answered `status:"error"` and kept serving. The payload is
    /// the panic message (lossily stringified).
    RequestPanic {
        /// The request whose handler panicked.
        trace_id: String,
        /// Request class (`"compile"`, `"verify"`, `"oracle"`, …).
        op: &'static str,
        /// The panic payload, when it was a string (else a placeholder).
        payload: String,
    },
    /// The deterministic fault-injection harness fired at one of its
    /// named sites (`LTSP_FAULT`; see `ltsp_server::fault`).
    FaultInjected {
        /// The injection site: `"panic"`, `"slow"`, `"drop"`,
        /// `"short-write"`, or `"dispatch"`.
        site: &'static str,
        /// The request/response the fault keyed on.
        trace_id: String,
    },
    /// A free-form diagnostic (replaces ad-hoc `eprintln!`).
    Diagnostic {
        /// `"info"`, `"warn"`, or `"error"`.
        level: &'static str,
        /// The message.
        message: String,
    },
}

fn opt_str(v: &Option<&'static str>) -> Scalar {
    match v {
        Some(s) => Scalar::Str((*s).to_string()),
        None => Scalar::Str(String::new()),
    }
}

impl Event {
    /// The event's type tag (the `"type"` field of its JSONL record).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::HloDecision { .. } => "hlo_decision",
            Event::CycleEnumeration { .. } => "cycle_enumeration",
            Event::CriticalityVerdict { .. } => "criticality_verdict",
            Event::BoostAssigned { .. } => "boost_assigned",
            Event::ScheduleAttempt { .. } => "schedule_attempt",
            Event::IiEscalation { .. } => "ii_escalation",
            Event::RegallocFallback { .. } => "regalloc_fallback",
            Event::AcyclicFallback { .. } => "acyclic_fallback",
            Event::OracleVerdict { .. } => "oracle_verdict",
            Event::AdaptiveRound { .. } => "adaptive_round",
            Event::WorkerSpan { .. } => "worker_span",
            Event::ServerRequest { .. } => "server_request",
            Event::ServerLifecycle { .. } => "server_lifecycle",
            Event::RequestPanic { .. } => "request_panic",
            Event::FaultInjected { .. } => "fault_injected",
            Event::Diagnostic { .. } => "diagnostic",
        }
    }

    /// The loop this event concerns, when it has one.
    pub fn loop_name(&self) -> Option<&str> {
        match self {
            Event::HloDecision { loop_name, .. }
            | Event::CriticalityVerdict { loop_name, .. }
            | Event::BoostAssigned { loop_name, .. }
            | Event::ScheduleAttempt { loop_name, .. }
            | Event::IiEscalation { loop_name, .. }
            | Event::RegallocFallback { loop_name, .. }
            | Event::AcyclicFallback { loop_name, .. }
            | Event::OracleVerdict { loop_name, .. }
            | Event::AdaptiveRound { loop_name, .. } => Some(loop_name),
            Event::ServerRequest { loop_name, .. } if !loop_name.is_empty() => Some(loop_name),
            Event::CycleEnumeration { .. }
            | Event::WorkerSpan { .. }
            | Event::ServerRequest { .. }
            | Event::ServerLifecycle { .. }
            | Event::RequestPanic { .. }
            | Event::FaultInjected { .. }
            | Event::Diagnostic { .. } => None,
        }
    }

    /// The event's payload as `(key, value)` pairs, in a stable order.
    pub fn fields(&self) -> Vec<(&'static str, Scalar)> {
        match self {
            Event::HloDecision {
                loop_name,
                memref,
                heuristic,
                hint,
                prefetch_distance,
                deduped,
            } => vec![
                ("loop", loop_name.clone().into()),
                ("memref", memref.clone().into()),
                ("heuristic", opt_str(heuristic)),
                ("hint", opt_str(hint)),
                (
                    "prefetch_distance",
                    Scalar::I64(prefetch_distance.map_or(-1, i64::from)),
                ),
                ("deduped", (*deduped).into()),
            ],
            Event::CycleEnumeration {
                cycles,
                cap,
                truncated,
            } => vec![
                ("cycles", (*cycles).into()),
                ("cap", (*cap).into()),
                ("truncated", (*truncated).into()),
            ],
            Event::CriticalityVerdict {
                loop_name,
                load,
                critical,
                implied_ii,
                threshold,
                slack,
            } => vec![
                ("loop", loop_name.clone().into()),
                ("load", load.clone().into()),
                ("critical", (*critical).into()),
                ("implied_ii", (*implied_ii).into()),
                ("threshold", (*threshold).into()),
                ("slack", Scalar::I64(*slack)),
            ],
            Event::BoostAssigned {
                loop_name,
                load,
                heuristic,
                base_latency,
                scheduled_latency,
                k,
                boost,
                ii,
                slack,
            } => vec![
                ("loop", loop_name.clone().into()),
                ("load", load.clone().into()),
                ("heuristic", (*heuristic).into()),
                ("base_latency", (*base_latency).into()),
                ("scheduled_latency", (*scheduled_latency).into()),
                ("k", (*k).into()),
                ("boost", (*boost).into()),
                ("ii", (*ii).into()),
                ("slack", Scalar::I64(*slack)),
            ],
            Event::ScheduleAttempt {
                loop_name,
                ii,
                latencies,
                outcome,
            } => vec![
                ("loop", loop_name.clone().into()),
                ("ii", (*ii).into()),
                ("latencies", (*latencies).into()),
                ("outcome", (*outcome).into()),
            ],
            Event::IiEscalation {
                loop_name,
                from_ii,
                to_ii,
                phase,
            } => vec![
                ("loop", loop_name.clone().into()),
                ("from_ii", (*from_ii).into()),
                ("to_ii", (*to_ii).into()),
                ("phase", (*phase).into()),
            ],
            Event::RegallocFallback {
                loop_name,
                ii,
                class,
                needed,
                available,
                action,
            } => vec![
                ("loop", loop_name.clone().into()),
                ("ii", (*ii).into()),
                ("class", (*class).into()),
                ("needed", (*needed).into()),
                ("available", (*available).into()),
                ("action", (*action).into()),
            ],
            Event::AcyclicFallback {
                loop_name,
                attempts,
                min_ii,
            } => vec![
                ("loop", loop_name.clone().into()),
                ("attempts", (*attempts).into()),
                ("min_ii", (*min_ii).into()),
            ],
            Event::OracleVerdict {
                loop_name,
                heuristic_ii,
                oracle_ii,
                verdict,
                gap,
                nodes,
            } => vec![
                ("loop", loop_name.clone().into()),
                ("heuristic_ii", (*heuristic_ii).into()),
                ("oracle_ii", (*oracle_ii).into()),
                ("verdict", (*verdict).into()),
                ("gap", Scalar::I64(*gap)),
                ("nodes", (*nodes).into()),
            ],
            Event::AdaptiveRound {
                loop_name,
                round,
                ii,
                pipelined,
                covered,
                hint_deltas,
                stall_cycles,
                total_cycles,
            } => vec![
                ("loop", loop_name.clone().into()),
                ("round", (*round).into()),
                ("ii", (*ii).into()),
                ("pipelined", Scalar::Bool(*pipelined)),
                ("covered", (*covered).into()),
                ("hint_deltas", (*hint_deltas).into()),
                ("stall_cycles", (*stall_cycles).into()),
                ("total_cycles", (*total_cycles).into()),
            ],
            Event::WorkerSpan {
                pool,
                worker,
                item,
                start_us,
                dur_us,
            } => vec![
                ("pool", pool.clone().into()),
                ("worker", (*worker).into()),
                ("item", (*item).into()),
                ("start_us", (*start_us).into()),
                ("dur_us", (*dur_us).into()),
            ],
            Event::ServerRequest {
                trace_id,
                op,
                status,
                cache,
                loop_name,
            } => vec![
                ("trace_id", trace_id.clone().into()),
                ("op", (*op).into()),
                ("status", (*status).into()),
                ("cache", (*cache).into()),
                ("loop", loop_name.clone().into()),
            ],
            Event::ServerLifecycle { phase, detail } => vec![
                ("phase", (*phase).into()),
                ("detail", detail.clone().into()),
            ],
            Event::RequestPanic {
                trace_id,
                op,
                payload,
            } => vec![
                ("trace_id", trace_id.clone().into()),
                ("op", (*op).into()),
                ("payload", payload.clone().into()),
            ],
            Event::FaultInjected { site, trace_id } => vec![
                ("site", (*site).into()),
                ("trace_id", trace_id.clone().into()),
            ],
            Event::Diagnostic { level, message } => vec![
                ("level", (*level).into()),
                ("message", message.clone().into()),
            ],
        }
    }

    /// A one-line human rendering (used for `-v` output on stderr).
    pub fn render_human(&self) -> String {
        match self {
            Event::HloDecision {
                loop_name,
                memref,
                heuristic,
                hint,
                prefetch_distance,
                deduped,
            } => {
                let mut s = format!("hlo {loop_name}/{memref}:");
                match prefetch_distance {
                    Some(d) => s.push_str(&format!(" prefetch dist={d}")),
                    None => s.push_str(" no prefetch"),
                }
                if let Some(h) = hint {
                    s.push_str(&format!(
                        " hint={h} (heuristic {})",
                        heuristic.unwrap_or("?")
                    ));
                }
                if *deduped {
                    s.push_str(" [deduped]");
                }
                s
            }
            Event::CycleEnumeration {
                cycles,
                cap,
                truncated,
            } => format!(
                "ddg: {cycles} recurrence cycles (cap {cap}{})",
                if *truncated { ", truncated" } else { "" }
            ),
            Event::CriticalityVerdict {
                loop_name,
                load,
                critical,
                implied_ii,
                threshold,
                slack,
            } => format!(
                "criticality {loop_name}/{load}: {} (implied II {implied_ii} vs threshold {threshold}, slack {slack})",
                if *critical { "CRITICAL" } else { "non-critical" }
            ),
            Event::BoostAssigned {
                loop_name,
                load,
                heuristic,
                base_latency,
                scheduled_latency,
                k,
                boost,
                ii,
                ..
            } => format!(
                "boost {loop_name}/{load}: {base_latency} -> {scheduled_latency} cycles \
                 (heuristic {heuristic}, k={k}, d=(k-1)*II={boost} at II={ii})"
            ),
            Event::ScheduleAttempt {
                loop_name,
                ii,
                latencies,
                outcome,
            } => format!("schedule {loop_name}: II={ii} ({latencies} latencies) -> {outcome}"),
            Event::IiEscalation {
                loop_name,
                from_ii,
                to_ii,
                phase,
            } => format!("escalate {loop_name}: II {from_ii} -> {to_ii} ({phase} phase)"),
            Event::RegallocFallback {
                loop_name,
                ii,
                class,
                needed,
                available,
                action,
            } => format!(
                "regalloc {loop_name}: II={ii} needs {needed} {class} regs \
                 (have {available}) -> {action}"
            ),
            Event::AcyclicFallback {
                loop_name,
                attempts,
                min_ii,
            } => format!(
                "fallback {loop_name}: pipelining rejected after {attempts} attempts \
                 from Min II {min_ii}; acyclic schedule"
            ),
            Event::OracleVerdict {
                loop_name,
                heuristic_ii,
                oracle_ii,
                verdict,
                gap,
                nodes,
            } => format!(
                "oracle {loop_name}: heuristic II={heuristic_ii}, oracle II={oracle_ii} \
                 ({verdict}, gap {gap}, {nodes} nodes)"
            ),
            Event::AdaptiveRound {
                loop_name,
                round,
                ii,
                hint_deltas,
                stall_cycles,
                ..
            } => format!(
                "adaptive {loop_name}: round {round} II={ii} \
                 hint-deltas={hint_deltas} stall-cycles={stall_cycles}"
            ),
            Event::WorkerSpan {
                pool,
                worker,
                item,
                dur_us,
                ..
            } => format!(
                "pool {pool}: item {item} on worker {worker} ({:.3} ms)",
                *dur_us as f64 / 1e3
            ),
            Event::ServerRequest {
                trace_id,
                op,
                status,
                cache,
                loop_name,
            } => format!(
                "serve [{trace_id}] {op}{}: {status} (cache {cache})",
                if loop_name.is_empty() {
                    String::new()
                } else {
                    format!(" {loop_name}")
                }
            ),
            Event::ServerLifecycle { phase, detail } => format!("ltspd {phase}: {detail}"),
            Event::RequestPanic {
                trace_id,
                op,
                payload,
            } => format!("panic contained [{trace_id}] {op}: {payload}"),
            Event::FaultInjected { site, trace_id } => {
                format!("fault injected [{trace_id}] at {site}")
            }
            Event::Diagnostic { level, message } => format!("{level}: {message}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_match_kind() {
        let e = Event::BoostAssigned {
            loop_name: "ex".into(),
            load: "i0".into(),
            heuristic: "2b",
            base_latency: 1,
            scheduled_latency: 21,
            k: 21,
            boost: 20,
            ii: 1,
            slack: 0,
        };
        assert_eq!(e.kind(), "boost_assigned");
        assert_eq!(e.loop_name(), Some("ex"));
        let f = e.fields();
        assert!(f.iter().any(|(k, v)| *k == "k" && *v == Scalar::U64(21)));
        assert!(e.render_human().contains("heuristic 2b"));
    }

    #[test]
    fn diagnostics_have_no_loop() {
        let e = Event::Diagnostic {
            level: "info",
            message: "hello".into(),
        };
        assert_eq!(e.loop_name(), None);
        assert_eq!(e.render_human(), "info: hello");
    }
}
