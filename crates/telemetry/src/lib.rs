//! # ltsp-telemetry — dependency-free observability for the compiler
//!
//! A telemetry layer with **no external dependencies** (the workspace
//! builds with no network access): a typed compiler decision trace
//! ([`Event`]), wall-clock phase timing ([`Telemetry::span`]), a metrics
//! registry (counters + histograms, fed by the simulator's cycle
//! accounting), and three exporters — a JSONL event stream, a JSON
//! metrics snapshot, and the Chrome `trace_event` format viewable in
//! Perfetto (`ui.perfetto.dev`).
//!
//! The [`Telemetry`] handle is cheap to clone and explicitly *disabled by
//! default*: a disabled handle records nothing, allocates nothing, and
//! every recording method is a branch on a `None` — compilation and
//! simulation results are bit-identical with telemetry on or off, because
//! the layer only observes.
//!
//! ```
//! use ltsp_telemetry::{Event, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! {
//!     let _span = tel.span("compile");
//!     tel.emit(Event::Diagnostic { level: "info", message: "hi".into() });
//!     tel.counter_add("loops.compiled", 1);
//! }
//! let mut jsonl = Vec::new();
//! tel.write_events_jsonl(&mut jsonl).unwrap();
//! assert_eq!(String::from_utf8(jsonl).unwrap().lines().count(), 2);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod prom;
pub mod sync;

use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use event::Event;
pub use json::{parse as parse_json, JsonValue, Scalar};
pub use metrics::{Histogram, Metrics};
pub use phase::{Phase, PhaseTimer};
pub use sync::lock_unpoisoned;

/// An [`Event`] stamped with its emission time (µs since the handle was
/// created).
#[derive(Debug, Clone)]
pub struct TimedEvent {
    /// Record sequence number within the sink. The JSONL exporter orders
    /// lines by this (not by wall-clock), so spliced parallel traces keep
    /// a deterministic order; see [`Telemetry::absorb`].
    pub seq: u64,
    /// Microseconds since [`Telemetry::enabled`] created the sink.
    pub ts_us: u64,
    /// The decision.
    pub event: Event,
}

/// A closed phase-timing span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Record sequence number within the sink (see [`TimedEvent::seq`]).
    pub seq: u64,
    /// The phase name (e.g. `"hlo"`, `"pipeline"`, `"simulate"`).
    pub name: String,
    /// Start, µs since the sink epoch.
    pub start_us: u64,
    /// Wall-clock duration in µs.
    pub dur_us: u64,
    /// Execution lane: 0 for the sink's own thread; absorbed worker
    /// buffers get `worker + 1` ([`Telemetry::absorb`]). The Chrome
    /// exporter maps lanes to `tid`s so workers render side by side.
    pub tid: u32,
}

#[derive(Debug, Default)]
struct State {
    seq: u64,
    events: Vec<TimedEvent>,
    spans: Vec<SpanRecord>,
    metrics: Metrics,
}

impl State {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    verbose: bool,
    state: Mutex<State>,
}

/// The telemetry handle: a cheap clone of a shared, thread-safe sink —
/// or nothing at all when disabled.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

/// RAII guard returned by [`Telemetry::span`]; records the span when
/// dropped. A no-op for disabled handles.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    inner: Option<(Arc<Inner>, String, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.inner.take() {
            let start_us = us_since(inner.epoch, start);
            let dur_us = start.elapsed().as_micros() as u64;
            if inner.verbose {
                eprintln!("[ltsp] {name}: {:.3} ms", dur_us as f64 / 1e3);
            }
            let mut st = lock_unpoisoned(&inner.state);
            let seq = st.next_seq();
            st.spans.push(SpanRecord {
                seq,
                name,
                start_us,
                dur_us,
                tid: 0,
            });
        }
    }
}

fn us_since(epoch: Instant, t: Instant) -> u64 {
    t.checked_duration_since(epoch)
        .map_or(0, |d| d.as_micros() as u64)
}

impl Telemetry {
    /// A disabled handle: every method is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled sink.
    pub fn enabled() -> Self {
        Telemetry::enabled_with(false)
    }

    /// An enabled sink; with `verbose`, events and closed spans render
    /// human-readably on stderr as they are recorded.
    pub fn enabled_with(verbose: bool) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                verbose,
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// True when this handle records anything. Call sites may use this to
    /// skip building expensive event payloads.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a decision event (no-op when disabled).
    pub fn emit(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        if inner.verbose {
            eprintln!("[ltsp] {}", event.render_human());
        }
        let ts_us = inner.epoch.elapsed().as_micros() as u64;
        let mut st = lock_unpoisoned(&inner.state);
        let seq = st.next_seq();
        st.events.push(TimedEvent { seq, ts_us, event });
    }

    /// Emits an info-level [`Event::Diagnostic`].
    pub fn info(&self, message: impl Into<String>) {
        if self.is_enabled() {
            self.emit(Event::Diagnostic {
                level: "info",
                message: message.into(),
            });
        }
    }

    /// Emits a warning [`Event::Diagnostic`].
    pub fn warn(&self, message: impl Into<String>) {
        if self.is_enabled() {
            self.emit(Event::Diagnostic {
                level: "warn",
                message: message.into(),
            });
        }
    }

    /// Forks a fresh, empty sink that is enabled exactly when `self` is.
    /// Work pools give each item a fork so parallel items never contend
    /// on (or interleave within) the parent sink; the buffers are spliced
    /// back **in item index order** with [`Telemetry::absorb`], which is
    /// what makes one-thread and N-thread traces identical in content and
    /// order. Forks are never verbose — parallel stderr narration would
    /// interleave nondeterministically.
    pub fn fork(&self) -> Telemetry {
        if self.is_enabled() {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        }
    }

    /// Splices a forked child sink into this one: events and spans are
    /// appended (in the child's own order) with timestamps translated into
    /// this sink's epoch, spans are tagged with lane `worker + 1`, and the
    /// child's metrics merge into this registry. Call in item index order;
    /// record order is the splice order, not wall-clock order.
    pub fn absorb(&self, child: Telemetry, worker: u32) {
        let (Some(inner), Some(cinner)) = (&self.inner, &child.inner) else {
            return;
        };
        let shift_us = cinner
            .epoch
            .checked_duration_since(inner.epoch)
            .map_or(0, |d| d.as_micros() as u64);
        let cstate = std::mem::take(&mut *lock_unpoisoned(&cinner.state));
        let mut st = lock_unpoisoned(&inner.state);
        for e in cstate.events {
            let seq = st.next_seq();
            st.events.push(TimedEvent {
                seq,
                ts_us: e.ts_us + shift_us,
                event: e.event,
            });
        }
        for s in cstate.spans {
            let seq = st.next_seq();
            st.spans.push(SpanRecord {
                seq,
                name: s.name,
                start_us: s.start_us + shift_us,
                dur_us: s.dur_us,
                tid: worker + 1,
            });
        }
        st.metrics.merge(&cstate.metrics);
    }

    /// Translates an [`Instant`] into µs since this sink's epoch (0 when
    /// disabled or when `t` predates the epoch).
    pub fn us_since_epoch(&self, t: Instant) -> u64 {
        self.inner.as_ref().map_or(0, |i| us_since(i.epoch, t))
    }

    /// Opens a wall-clock timing span; it records itself when dropped.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        SpanGuard {
            inner: self
                .inner
                .as_ref()
                .map(|i| (Arc::clone(i), name.into(), Instant::now())),
        }
    }

    /// Adds to a monotonic counter (no-op when disabled).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut st = lock_unpoisoned(&inner.state);
            st.metrics.counter_add(name, delta);
        }
    }

    /// Records a histogram sample (no-op when disabled).
    pub fn histogram_record(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut st = lock_unpoisoned(&inner.state);
            st.metrics.histogram_record(name, value);
        }
    }

    /// A snapshot of the recorded events.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| lock_unpoisoned(&i.state).events.clone())
    }

    /// A snapshot of the closed spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| lock_unpoisoned(&i.state).spans.clone())
    }

    /// A snapshot of the metrics registry.
    pub fn metrics(&self) -> Metrics {
        self.inner.as_ref().map_or_else(Metrics::default, |i| {
            lock_unpoisoned(&i.state).metrics.clone()
        })
    }

    /// Writes the trace as JSONL: one JSON object per line, events as
    /// `{"type": <kind>, "ts_us": ..., ...fields}` and closed spans as
    /// `{"type": "span", "name": ..., "start_us": ..., "dur_us": ...,
    /// "tid": ...}`, ordered by record sequence number — chronological
    /// for a serial run, splice order for absorbed parallel buffers (so
    /// the line order is deterministic across worker counts; see
    /// [`Telemetry::absorb`] and [`normalize_trace`]).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_events_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        let events = self.events();
        let spans = self.spans();
        let mut lines: Vec<(u64, String)> = Vec::with_capacity(events.len() + spans.len());
        for e in &events {
            let mut fields: Vec<(&str, Scalar)> =
                vec![("type", e.event.kind().into()), ("ts_us", e.ts_us.into())];
            fields.extend(e.event.fields());
            let mut line = String::new();
            json::write_object(&mut line, &fields);
            lines.push((e.seq, line));
        }
        for s in &spans {
            let mut line = String::new();
            json::write_object(
                &mut line,
                &[
                    ("type", "span".into()),
                    ("name", s.name.clone().into()),
                    ("start_us", s.start_us.into()),
                    ("dur_us", s.dur_us.into()),
                    ("tid", u64::from(s.tid).into()),
                ],
            );
            lines.push((s.seq, line));
        }
        lines.sort_by_key(|(seq, _)| *seq);
        for (_, line) in lines {
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Writes the metrics snapshot as a JSON document.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_metrics_json(&self, w: &mut dyn Write) -> io::Result<()> {
        w.write_all(self.metrics().to_json().as_bytes())
    }

    /// Writes the trace in Chrome's `trace_event` JSON format: spans as
    /// complete (`"X"`) events on their execution lane (`tid` 1 = main
    /// thread, `tid` `w+2` = pool worker `w`), [`Event::WorkerSpan`]s as
    /// complete events on the worker's lane, and other decisions as
    /// instant (`"i"`) events. Open the file in Perfetto
    /// (`ui.perfetto.dev`) or `chrome://tracing`.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_chrome_trace(&self, w: &mut dyn Write) -> io::Result<()> {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for s in self.spans() {
            if !first {
                out.push(',');
            }
            first = false;
            json::write_object(
                &mut out,
                &[
                    ("name", s.name.clone().into()),
                    ("cat", "phase".into()),
                    ("ph", "X".into()),
                    ("ts", s.start_us.into()),
                    ("dur", s.dur_us.into()),
                    ("pid", 1u64.into()),
                    ("tid", (u64::from(s.tid) + 1).into()),
                ],
            );
        }
        for e in self.events() {
            if !first {
                out.push(',');
            }
            first = false;
            if let Event::WorkerSpan {
                pool,
                worker,
                item,
                start_us,
                dur_us,
            } = &e.event
            {
                // A complete event on the worker's lane, so N-thread runs
                // show N parallel lanes of pool items.
                json::write_object(
                    &mut out,
                    &[
                        ("name", format!("{pool}[{item}]").into()),
                        ("cat", "pool".into()),
                        ("ph", "X".into()),
                        ("ts", (*start_us).into()),
                        ("dur", (*dur_us).into()),
                        ("pid", 1u64.into()),
                        ("tid", (*worker + 2).into()),
                    ],
                );
                continue;
            }
            // Instant event with the payload under "args".
            out.push_str("{\"name\":\"");
            out.push_str(&json::escape(e.event.kind()));
            out.push_str("\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
            out.push_str(&e.ts_us.to_string());
            out.push_str(",\"pid\":1,\"tid\":1,\"args\":");
            let mut args = String::new();
            json::write_object(&mut args, &e.event.fields());
            out.push_str(&args);
            out.push('}');
        }
        out.push_str("]}\n");
        w.write_all(out.as_bytes())
    }
}

/// Timing/attribution fields a trace line may carry that depend on
/// wall-clock or on scheduling, not on what the compiler decided.
const NONDETERMINISTIC_FIELDS: [&str; 5] = ["ts_us", "start_us", "dur_us", "worker", "tid"];

/// Normalizes a JSONL trace for comparison across runs and worker counts:
/// every top-level timing or worker-attribution field (`ts_us`,
/// `start_us`, `dur_us`, `worker`, `tid`) is zeroed, everything else —
/// content, field order, line order — is preserved. Two runs of the same
/// deterministic workload normalize to byte-identical text regardless of
/// `--jobs`; that equality is the determinism contract CI enforces.
#[must_use]
pub fn normalize_trace(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        match json::parse(line) {
            Ok(JsonValue::Obj(fields)) => {
                let normalized: Vec<(String, JsonValue)> = fields
                    .into_iter()
                    .map(|(k, v)| {
                        if NONDETERMINISTIC_FIELDS.contains(&k.as_str()) {
                            (k, JsonValue::Num(0.0))
                        } else {
                            (k, v)
                        }
                    })
                    .collect();
                JsonValue::Obj(normalized).render(&mut out);
            }
            // Not an object (or not JSON): keep the line verbatim.
            _ => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.emit(Event::Diagnostic {
            level: "info",
            message: "dropped".into(),
        });
        tel.counter_add("c", 1);
        tel.histogram_record("h", 1);
        drop(tel.span("phase"));
        assert!(tel.events().is_empty());
        assert!(tel.spans().is_empty());
        assert!(tel.metrics().is_empty());
        let mut buf = Vec::new();
        tel.write_events_jsonl(&mut buf).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn disabled_emit_is_cheap() {
        // Zero-cost when disabled: a handle clone is a None clone, and a
        // million no-op emits complete near-instantly (no lock, no alloc
        // beyond the event payloads the caller chose to build).
        let tel = Telemetry::disabled();
        let start = Instant::now();
        for _ in 0..1_000_000 {
            tel.counter_add("c", 1);
            if tel.is_enabled() {
                unreachable!();
            }
        }
        assert!(
            start.elapsed().as_millis() < 1_000,
            "disabled telemetry must be branch-cheap"
        );
    }

    #[test]
    fn events_and_spans_export_jsonl() {
        let tel = Telemetry::enabled();
        {
            let _s = tel.span("compile");
            tel.emit(Event::CycleEnumeration {
                cycles: 4,
                cap: 100,
                truncated: false,
            });
        }
        let mut buf = Vec::new();
        tel.write_events_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let ev = parse_json(lines[0]).unwrap();
        assert_eq!(ev.get("type").unwrap().as_str(), Some("cycle_enumeration"));
        assert_eq!(ev.get("cycles").unwrap().as_u64(), Some(4));
        let span = parse_json(lines[1]).unwrap();
        assert_eq!(span.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(span.get("name").unwrap().as_str(), Some("compile"));
        assert!(span.get("dur_us").unwrap().as_u64().is_some());
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let tel = Telemetry::enabled();
        {
            let _s = tel.span("hlo");
        }
        tel.emit(Event::Diagnostic {
            level: "info",
            message: "x".into(),
        });
        let mut buf = Vec::new();
        tel.write_chrome_trace(&mut buf).unwrap();
        let v = parse_json(std::str::from_utf8(&buf).unwrap().trim()).unwrap();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            evs[1].get("args").unwrap().get("message").unwrap().as_str(),
            Some("x")
        );
    }

    #[test]
    fn clones_share_one_sink() {
        let tel = Telemetry::enabled();
        let tel2 = tel.clone();
        tel2.counter_add("shared", 2);
        tel.counter_add("shared", 3);
        assert_eq!(tel.metrics().counter("shared"), 5);
    }

    #[test]
    fn threads_feed_one_sink() {
        let tel = Telemetry::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = tel.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        t.counter_add("n", 1);
                        t.info("tick");
                    }
                });
            }
        });
        assert_eq!(tel.metrics().counter("n"), 400);
        assert_eq!(tel.events().len(), 400);
    }
}
