//! A metrics registry: named monotonic counters and log₂-bucketed
//! histograms, exported as one JSON snapshot.

use std::collections::BTreeMap;

use crate::json::{write_object, Scalar};

/// Linear sub-buckets per power-of-two octave, as a log₂ (2³ = 8):
/// within an octave `[2^k, 2^(k+1))` a sample lands in one of 8
/// equal-width slices, bounding quantile estimates to a 12.5% relative
/// error while the exported octave view stays byte-identical.
const SUB_LOG2: u32 = 3;
const SUBS: usize = 1 << SUB_LOG2;
const FINE_BUCKETS: usize = 1 + 64 * SUBS;

/// A log-scale-bucketed histogram of `u64` samples with bounded-error
/// quantile extraction.
///
/// Externally the histogram exposes power-of-two octaves (bucket `i`
/// counts samples with `floor(log2(v)) == i - 1`; bucket 0 is the value
/// 0) via [`Histogram::nonzero_buckets`] — plenty of resolution for
/// cycle counts and sizes, and the stable JSON surface. Internally each
/// octave is split into 8 linear sub-buckets, which is what gives
/// [`Histogram::quantile`] its ≤ 1/8 relative error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    fine: [u64; FINE_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            fine: [0; FINE_BUCKETS],
        }
    }
}

impl Histogram {
    /// The fine bucket a value lands in: 0 for the value 0, else octave
    /// `k = floor(log2 v)` sliced into [`SUBS`] linear sub-buckets.
    fn fine_index(value: u64) -> usize {
        if value == 0 {
            return 0;
        }
        let k = 63 - value.leading_zeros();
        let off = value - (1u64 << k);
        let sub = if k >= SUB_LOG2 {
            off >> (k - SUB_LOG2)
        } else {
            off << (SUB_LOG2 - k)
        };
        1 + (k as usize) * SUBS + sub as usize
    }

    /// The smallest value that maps to fine bucket `i`.
    fn fine_lower_bound(i: usize) -> u64 {
        if i == 0 {
            return 0;
        }
        let k = ((i - 1) / SUBS) as u32;
        let s = ((i - 1) % SUBS) as u64;
        let off = if k >= SUB_LOG2 {
            s << (k - SUB_LOG2)
        } else {
            (s << k) >> SUB_LOG2
        };
        (1u64 << k) + off
    }

    /// The largest value that maps to fine bucket `i` (`u64::MAX` for
    /// the top bucket). Low octaves have sub-buckets narrower than 1;
    /// the bound is the last value before the next *distinct* bucket.
    fn fine_upper_bound(i: usize) -> u64 {
        let lo = Self::fine_lower_bound(i);
        for j in i + 1..FINE_BUCKETS {
            let next = Self::fine_lower_bound(j);
            if next > lo {
                return next - 1;
            }
        }
        u64::MAX
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.fine[Self::fine_index(value)] += 1;
    }

    /// The mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one (bucket-wise; commutative
    /// and associative, so parallel per-worker registries merge to the
    /// same state in any order).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, ob) in self.fine.iter_mut().zip(&other.fine) {
            *b += ob;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of the recorded samples, or
    /// `None` when the histogram is empty — never a fabricated 0.
    ///
    /// The estimate is the lower bound of the sub-bucket holding the
    /// rank-`⌈q·count⌉` sample, clamped into `[min, max]`: at most a
    /// 1/8 relative error (sub-buckets are an eighth of their octave),
    /// exact for values below 8, and monotone in `q`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return Some(self.max); // p100 is tracked exactly
        }
        let mut seen = 0u64;
        for (i, &c) in self.fine.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::fine_lower_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty power-of-two buckets as `(lower_bound, count)` pairs —
    /// the stable octave view ([`Histogram::to_json`] via
    /// [`Metrics::to_json`] renders exactly this, unchanged by the fine
    /// sub-bucketing).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if self.fine[0] > 0 {
            out.push((0, self.fine[0]));
        }
        for k in 0..64 {
            let c: u64 = self.fine[1 + k * SUBS..1 + (k + 1) * SUBS].iter().sum();
            if c > 0 {
                out.push((1u64 << k, c));
            }
        }
        out
    }

    /// Cumulative `(le, count)` pairs over the non-empty fine buckets,
    /// in increasing `le` order — the shape a Prometheus-style
    /// `_bucket{le=...}` exposition needs. `le` is the inclusive upper
    /// bound of each occupied sub-bucket (`u64::MAX` ≙ `+Inf`).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.fine.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((Self::fine_upper_bound(i), cum));
        }
        out
    }
}

/// The registry behind [`crate::Telemetry`]'s metric methods.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Adds to a monotonic counter (creating it at 0).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records a histogram sample (creating the histogram).
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// A counter's current value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge bucket-wise. Commutative, so splicing per-worker registries
    /// yields the same totals as a serial run.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// The snapshot as one pretty-printed JSON document:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min, max,
    /// mean, buckets: [[lo, n], ...]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(&crate::json::escape(k));
            out.push_str(&format!("\": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(&crate::json::escape(k));
            out.push_str("\": ");
            let mut obj = String::new();
            write_object(
                &mut obj,
                &[
                    ("count", h.count.into()),
                    ("sum", h.sum.into()),
                    ("min", if h.count == 0 { 0u64 } else { h.min }.into()),
                    ("max", h.max.into()),
                    ("mean", Scalar::F64(h.mean())),
                ],
            );
            // Splice the buckets array in before the closing brace.
            obj.pop();
            obj.push_str(",\"buckets\":[");
            for (j, (lo, n)) in h.nonzero_buckets().iter().enumerate() {
                if j > 0 {
                    obj.push(',');
                }
                obj.push_str(&format!("[{lo},{n}]"));
            }
            obj.push_str("]}");
            out.push_str(&obj);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.counter_add("sim.cycles.total", 10);
        m.counter_add("sim.cycles.total", 5);
        assert_eq!(m.counter("sim.cycles.total"), 15);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        // 0 -> bucket 0; 1 -> [1,2); 2,3 -> [2,4); 1024 -> [1024,2048).
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (1024, 1)]);
    }

    #[test]
    fn empty_histogram_quantile_is_none_not_zero() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
    }

    #[test]
    fn quantiles_are_exact_for_small_values_and_monotone() {
        let mut h = Histogram::default();
        for v in 0..8u64 {
            h.record(v);
        }
        // Sub-buckets are exact below 8: rank-based quantiles hit the
        // recorded values themselves.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(7));
        assert_eq!(h.quantile(0.5), Some(3));
        let mut prev = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0).unwrap();
            assert!(q >= prev, "quantile not monotone at {i}%: {q} < {prev}");
            prev = q;
        }
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = Histogram::default();
        // A geometric-ish spread across several octaves.
        let samples: Vec<u64> = (0..200u64).map(|i| 3 + i * i * 7).collect();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1] as f64;
            let est = h.quantile(q).unwrap() as f64;
            let rel = (est - exact).abs() / exact;
            assert!(rel <= 0.125 + 1e-9, "q={q}: est {est} vs exact {exact}");
        }
        assert_eq!(h.quantile(1.0), Some(*sorted.last().unwrap()));
    }

    #[test]
    fn merged_quantiles_match_combined_stream_within_bucket_error() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut combined = Histogram::default();
        for i in 0..500u64 {
            let v = (i * 37) % 10_000;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count, combined.count);
        for q in [0.5, 0.9, 0.95, 0.99] {
            // Bucket contents are identical after merge, so quantiles
            // agree exactly, not just within error.
            assert_eq!(a.quantile(q), combined.quantile(q), "q={q}");
        }
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_cover_count() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 5, 17, 17, 300, 70_000] {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        assert!(!cum.is_empty());
        let mut prev_le = None;
        let mut prev_cum = 0;
        for &(le, c) in &cum {
            if let Some(p) = prev_le {
                assert!(le > p, "le not increasing: {le} after {p}");
            }
            assert!(c > prev_cum, "cumulative count not increasing");
            prev_le = Some(le);
            prev_cum = c;
        }
        assert_eq!(cum.last().unwrap().1, h.count);
    }

    #[test]
    fn snapshot_is_valid_json() {
        let mut m = Metrics::default();
        m.counter_add("a.b", 7);
        m.histogram_record("h \"x\"", 3);
        m.histogram_record("h \"x\"", 300);
        let v = parse(&m.to_json()).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(7)
        );
        let h = v.get("histograms").unwrap().get("h \"x\"").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(303));
        assert_eq!(h.get("buckets").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn empty_snapshot_parses() {
        let m = Metrics::default();
        assert!(m.is_empty());
        assert!(parse(&m.to_json()).is_ok());
    }
}
