//! A metrics registry: named monotonic counters and log₂-bucketed
//! histograms, exported as one JSON snapshot.

use std::collections::BTreeMap;

use crate::json::{write_object, Scalar};

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples with `floor(log2(v)) == i - 1` (bucket 0 is
/// the value 0), which is plenty of resolution for cycle counts and sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[(64 - value.leading_zeros()) as usize] += 1;
    }

    /// The mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one (bucket-wise; commutative
    /// and associative, so parallel per-worker registries merge to the
    /// same state in any order).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, ob) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += ob;
        }
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

/// The registry behind [`crate::Telemetry`]'s metric methods.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Adds to a monotonic counter (creating it at 0).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records a histogram sample (creating the histogram).
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// A counter's current value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge bucket-wise. Commutative, so splicing per-worker registries
    /// yields the same totals as a serial run.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// The snapshot as one pretty-printed JSON document:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min, max,
    /// mean, buckets: [[lo, n], ...]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(&crate::json::escape(k));
            out.push_str(&format!("\": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(&crate::json::escape(k));
            out.push_str("\": ");
            let mut obj = String::new();
            write_object(
                &mut obj,
                &[
                    ("count", h.count.into()),
                    ("sum", h.sum.into()),
                    ("min", if h.count == 0 { 0u64 } else { h.min }.into()),
                    ("max", h.max.into()),
                    ("mean", Scalar::F64(h.mean())),
                ],
            );
            // Splice the buckets array in before the closing brace.
            obj.pop();
            obj.push_str(",\"buckets\":[");
            for (j, (lo, n)) in h.nonzero_buckets().iter().enumerate() {
                if j > 0 {
                    obj.push(',');
                }
                obj.push_str(&format!("[{lo},{n}]"));
            }
            obj.push_str("]}");
            out.push_str(&obj);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.counter_add("sim.cycles.total", 10);
        m.counter_add("sim.cycles.total", 5);
        assert_eq!(m.counter("sim.cycles.total"), 15);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        // 0 -> bucket 0; 1 -> [1,2); 2,3 -> [2,4); 1024 -> [1024,2048).
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (1024, 1)]);
    }

    #[test]
    fn snapshot_is_valid_json() {
        let mut m = Metrics::default();
        m.counter_add("a.b", 7);
        m.histogram_record("h \"x\"", 3);
        m.histogram_record("h \"x\"", 300);
        let v = parse(&m.to_json()).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(7)
        );
        let h = v.get("histograms").unwrap().get("h \"x\"").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(303));
        assert_eq!(h.get("buckets").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn empty_snapshot_parses() {
        let m = Metrics::default();
        assert!(m.is_empty());
        assert!(parse(&m.to_json()).is_ok());
    }
}
