//! Crash-tolerance tests for the persistent cache log
//! ([`ltsp_cache::persist`]): every torn-tail shape a killed shard can
//! leave behind must load cleanly — drop the bad records, keep the good
//! prefix byte-identically, truncate the file so appends resume sanely.

use std::path::PathBuf;

use ltsp_cache::persist::{crc32, CacheLog, LogRecord, MAGIC};
use ltsp_cache::Fingerprint;
use proptest::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltsp-persist-it-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("cache.log")
}

fn rec(i: u64) -> LogRecord {
    LogRecord {
        key: Fingerprint::of_str(&format!("loop-{i}")),
        status: if i.is_multiple_of(3) {
            "rejected"
        } else {
            "ok"
        }
        .to_string(),
        body: format!(",\"op\":\"compile\",\"report\":\"schedule {i}\\n\""),
    }
}

/// Writes `n` records through the real appender and returns the raw
/// file bytes, so corruption tests tamper with genuine frames.
fn written_log(path: &PathBuf, n: u64) -> Vec<u8> {
    let _ = std::fs::remove_file(path);
    let (log, _) = CacheLog::open(path).unwrap();
    for i in 0..n {
        let r = rec(i);
        log.append(r.key, &r.status, &r.body).unwrap();
    }
    drop(log);
    std::fs::read(path).unwrap()
}

#[test]
fn corrupt_tail_keeps_clean_prefix_and_truncates() {
    let path = tmp("corrupt-tail");
    let mut bytes = written_log(&path, 5);
    let clean_len = bytes.len() as u64;
    // A crashed writer left garbage after the last full record.
    bytes.extend_from_slice(b"\xDE\xAD\xBE\xEF partial frame junk");
    std::fs::write(&path, &bytes).unwrap();

    let (log, report) = CacheLog::open(&path).unwrap();
    assert_eq!(report.records.len(), 5, "all clean records survive");
    for (i, r) in report.records.iter().enumerate() {
        assert_eq!(*r, rec(i as u64), "byte-identical prefix");
    }
    assert_eq!(report.dropped, 1);
    assert!(report.truncated_bytes > 0);
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        clean_len,
        "file truncated back to the clean prefix"
    );
    // Appends after recovery land after the clean prefix, not the junk.
    let extra = rec(99);
    log.append(extra.key, &extra.status, &extra.body).unwrap();
    drop(log);
    let (_log, report) = CacheLog::open(&path).unwrap();
    assert_eq!(report.dropped, 0);
    assert_eq!(report.records.len(), 6);
    assert_eq!(report.records[5], extra);
}

#[test]
fn short_write_drops_only_the_torn_record() {
    let path = tmp("short-write");
    let bytes = written_log(&path, 3);
    // Tear the last record mid-payload (a crash between flush and a
    // full write — or a kill -9 racing the page cache).
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let (_log, report) = CacheLog::open(&path).unwrap();
    assert_eq!(report.records.len(), 2, "torn record dropped, prefix kept");
    assert_eq!(report.records[0], rec(0));
    assert_eq!(report.records[1], rec(1));
    assert_eq!(report.dropped, 1);
}

#[test]
fn torn_frame_header_is_tolerated() {
    let path = tmp("torn-header");
    let bytes = written_log(&path, 2);
    // Leave only 3 bytes of the next frame's len/crc header.
    let mut tail = bytes.clone();
    tail.truncate(bytes.len());
    tail.extend_from_slice(&[0x10, 0x00, 0x00]);
    std::fs::write(&path, &tail).unwrap();

    let (_log, report) = CacheLog::open(&path).unwrap();
    assert_eq!(report.records.len(), 2);
    assert_eq!(report.dropped, 1);
}

#[test]
fn crc_mismatch_drops_from_the_flipped_record_on() {
    let path = tmp("crc-flip");
    let mut bytes = written_log(&path, 4);
    // Flip one payload bit in the *second* record. Replay must keep
    // record 1 and refuse everything from the flipped record on — a
    // frame boundary after a bad CRC cannot be trusted.
    let mut pos = MAGIC.len();
    let first_len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    pos += 8 + first_len; // start of record 2's frame
    bytes[pos + 8 + 20] ^= 0x01; // inside record 2's payload
    std::fs::write(&path, &bytes).unwrap();

    let (_log, report) = CacheLog::open(&path).unwrap();
    assert_eq!(report.records.len(), 1, "only the pre-corruption prefix");
    assert_eq!(report.records[0], rec(0));
    assert_eq!(report.dropped, 1);
    assert!(report.truncated_bytes > 0);
}

#[test]
fn absurd_frame_length_is_rejected_not_allocated() {
    let path = tmp("absurd-len");
    let mut bytes = written_log(&path, 1);
    // Append a frame claiming 4 GiB: must be dropped as corrupt, not
    // trusted (and certainly not allocated).
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&crc32(b"").to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let (_log, report) = CacheLog::open(&path).unwrap();
    assert_eq!(report.records.len(), 1);
    assert_eq!(report.dropped, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Replay returns exactly what was appended — any statuses, any
    /// bodies (unicode, quotes, control characters), any order.
    #[test]
    fn replay_is_byte_identical_to_what_was_appended(
        entries in proptest::collection::vec(
            (0u64..4, proptest::collection::vec(0u32..0x2500, 0..40)),
            1..20,
        ),
    ) {
        let statuses = ["", "ok", "rejected", "error"];
        let records: Vec<LogRecord> = entries
            .iter()
            .enumerate()
            .map(|(i, (st, cps))| LogRecord {
                key: Fingerprint::of_str(&format!("k{i}")),
                status: statuses[*st as usize].to_string(),
                // Raw codepoints below 0x2500 are all valid chars
                // (surrogates start at 0xD800): quotes, newlines,
                // control bytes, CJK — everything a rendered body can
                // legally carry.
                body: cps.iter().map(|&c| char::from_u32(c).unwrap()).collect(),
            })
            .collect();
        let path = tmp(&format!("prop-roundtrip-{:x}", crc32(format!("{records:?}").as_bytes())));
        let _ = std::fs::remove_file(&path);
        let (log, _) = CacheLog::open(&path).unwrap();
        for r in &records {
            log.append(r.key, &r.status, &r.body).unwrap();
        }
        drop(log);
        let (_log, report) = CacheLog::open(&path).unwrap();
        prop_assert_eq!(report.dropped, 0);
        prop_assert_eq!(report.records, records);
    }

    /// Replaying a log with duplicate keys yields the *final* record's
    /// bytes for every key (last-writer-wins) — the invariant the tiered
    /// backend's in-place cache upgrades lean on: an upgrade is a second
    /// append under the same key, and a warm restart must serve the
    /// upgraded bytes, never resurrect the superseded ones.
    #[test]
    fn duplicate_key_replay_yields_the_final_records_bytes(
        writes in proptest::collection::vec((0u64..6, 0u64..1000), 1..40),
    ) {
        let path = tmp(&format!(
            "prop-lww-{:x}",
            crc32(format!("{writes:?}").as_bytes())
        ));
        let _ = std::fs::remove_file(&path);
        let (log, _) = CacheLog::open(&path).unwrap();
        let mut expected: std::collections::HashMap<u64, (String, String)> =
            std::collections::HashMap::new();
        for (k, v) in &writes {
            let status = if v % 7 == 0 { "rejected" } else { "ok" };
            let body = format!(",\"ii\":{v},\"backend\":\"k{k}\"");
            log.append(Fingerprint::of_str(&format!("dup-{k}")), status, &body)
                .unwrap();
            expected.insert(*k, (status.to_string(), body));
        }
        drop(log);

        let (_log, report) = CacheLog::open(&path).unwrap();
        prop_assert_eq!(report.dropped, 0);
        prop_assert_eq!(report.records.len(), writes.len());
        let lww = report.last_writer_wins();
        prop_assert_eq!(lww.len(), expected.len(), "one survivor per key");
        prop_assert_eq!(
            report.superseded(),
            (writes.len() - expected.len()) as u64
        );
        for rec in lww {
            let k = (0u64..6)
                .find(|k| Fingerprint::of_str(&format!("dup-{k}")) == rec.key)
                .expect("survivor key comes from the pool");
            let (status, body) = &expected[&k];
            prop_assert_eq!(&rec.status, status, "final status wins");
            prop_assert_eq!(&rec.body, body, "final bytes win");
        }
    }

    /// Chopping the file at ANY byte offset yields a clean prefix of
    /// the original records — never a wrong or mangled record — and a
    /// second open of the truncated log is clean (idempotent repair).
    #[test]
    fn any_truncation_point_yields_a_clean_prefix(
        n in 1u64..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let path = tmp(&format!("prop-cut-{n}-{}", (cut_frac * 1e6) as u64));
        let bytes = written_log(&path, n);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let (_log, report) = CacheLog::open(&path).unwrap();
        let expected: Vec<LogRecord> = (0..n).map(rec).collect();
        prop_assert!(report.records.len() <= expected.len());
        prop_assert_eq!(
            &report.records[..],
            &expected[..report.records.len()],
            "recovered records are a byte-identical prefix"
        );
        drop(_log);
        let (_log2, report2) = CacheLog::open(&path).unwrap();
        prop_assert_eq!(report2.dropped, 0, "repair is idempotent");
        prop_assert_eq!(report2.records, report.records);
    }
}
