//! Disk-backed persistence for content-addressed caches: an append-only
//! record log with per-record CRC and truncated-tail tolerance.
//!
//! The serving layer's warm/cold gap is large (a warm hit skips the
//! whole pipeline), and an in-memory cache dies with the process. This
//! module gives a shard a durable second tier: every newly computed
//! result is appended as one framed record, and a restarted process
//! replays the log into its in-memory cache before accepting traffic —
//! serving warm from request one.
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! file   := magic record*
//! magic  := "LTSPLOG1"                         (8 bytes)
//! record := len:u32le crc:u32le payload        (len = payload bytes)
//! payload:= key:u128le status_len:u8 status(status_len bytes) body(rest)
//! ```
//!
//! `crc` is CRC-32 (IEEE, as in gzip) over the payload. Integers are
//! little-endian and fixed-width, so the format is stable across
//! platforms; [`Fingerprint`] itself is FNV-1a over canonicalized
//! content and stable across runs and toolchains, which is what makes
//! persisting it sound.
//!
//! ## Failure model
//!
//! The writer flushes each record but never fsyncs: the log is a cache,
//! not a ledger. A crash (or an injected shard kill) can therefore leave
//! a torn tail — a partial frame, a partial payload, or a flipped bit.
//! [`CacheLog::open`] tolerates all of these by construction: it replays
//! the longest clean prefix, drops everything from the first bad record
//! on (counting what it dropped, loudly available in
//! [`ReplayReport::dropped`]), and truncates the file back to the clean
//! prefix so subsequent appends never land after garbage. A log that
//! loses its header entirely is treated as corrupt and restarted empty.
//! Worst case is always a cold cache, never a wrong answer — replayed
//! bodies were computed by the same deterministic pipeline that would
//! recompute them on a miss.
//!
//! One process owns one log file; concurrent appenders would interleave
//! frames. The serving layer gives each shard its own file.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ltsp_telemetry::lock_unpoisoned;

use crate::Fingerprint;

/// Magic header identifying a version-1 cache log.
pub const MAGIC: &[u8; 8] = b"LTSPLOG1";

/// Records larger than this are rejected as corrupt during replay (a
/// frame length beyond it can only come from a torn or garbage frame —
/// real cached bodies are orders of magnitude smaller).
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

/// One persisted cache entry: the content-addressed key plus the cached
/// outcome (response status and rendered body fragment), exactly as the
/// in-memory cache stores it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The content-addressed cache key.
    pub key: Fingerprint,
    /// The response status (`ok` / `rejected` / `error`).
    pub status: String,
    /// The rendered response body fragment.
    pub body: String,
}

/// What a replay found: the clean-prefix records plus loss accounting.
#[derive(Debug, Default)]
pub struct ReplayReport {
    /// Records recovered from the clean prefix, in append order.
    pub records: Vec<LogRecord>,
    /// Records (or partial frames) dropped from the first bad record on.
    /// `0` means the log was clean end to end.
    pub dropped: u64,
    /// Bytes truncated off the tail to restore the clean prefix.
    pub truncated_bytes: u64,
}

impl ReplayReport {
    /// The replay collapsed to last-writer-wins: duplicate keys keep only
    /// the final record's bytes, in first-appearance order.
    ///
    /// The log is append-only, so an in-place cache upgrade (the tiered
    /// backend replacing a heuristic body with the exact one) is a
    /// *second* append under the same key. Replay must surface the
    /// upgraded bytes, never resurrect the superseded ones — a consumer
    /// inserting `records` in append order gets that implicitly, but
    /// this view makes the contract explicit and spares the cache the
    /// double insert (and the byte-accounting churn that goes with it).
    pub fn last_writer_wins(&self) -> Vec<&LogRecord> {
        let mut index: std::collections::HashMap<Fingerprint, usize> =
            std::collections::HashMap::new();
        let mut out: Vec<&LogRecord> = Vec::with_capacity(self.records.len());
        for rec in &self.records {
            match index.entry(rec.key) {
                std::collections::hash_map::Entry::Occupied(e) => out[*e.get()] = rec,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(out.len());
                    out.push(rec);
                }
            }
        }
        out
    }

    /// Records superseded by a later append under the same key.
    pub fn superseded(&self) -> u64 {
        (self.records.len() - self.last_writer_wins().len()) as u64
    }
}

/// An append-only, CRC-framed, crash-tolerant cache log. See the module
/// docs for the format and failure model.
pub struct CacheLog {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    /// On-disk size of the log (header + every framed record), tracked
    /// so operators can watch an append-only file grow without stat(2):
    /// initialized to the clean-prefix length at open, bumped by the
    /// frame size on every append.
    log_bytes: AtomicU64,
}

impl std::fmt::Debug for CacheLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheLog")
            .field("path", &self.path)
            .finish()
    }
}

/// CRC-32 (IEEE 802.3, reflected, as used by gzip/zip) over `bytes`.
/// Table-driven; the table is built on first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encodes one record's payload (everything the CRC covers).
fn encode_payload(key: Fingerprint, status: &str, body: &str) -> Vec<u8> {
    let status = status.as_bytes();
    debug_assert!(status.len() <= u8::MAX as usize, "status is a short tag");
    let mut p = Vec::with_capacity(16 + 1 + status.len() + body.len());
    p.extend_from_slice(&key.0.to_le_bytes());
    p.push(status.len() as u8);
    p.extend_from_slice(status);
    p.extend_from_slice(body.as_bytes());
    p
}

/// Decodes one payload; `None` when it is structurally invalid (too
/// short, status overruns, non-UTF-8 text).
fn decode_payload(p: &[u8]) -> Option<LogRecord> {
    if p.len() < 17 {
        return None;
    }
    let key = Fingerprint(u128::from_le_bytes(p[..16].try_into().ok()?));
    let status_len = p[16] as usize;
    let body_start = 17 + status_len;
    if p.len() < body_start {
        return None;
    }
    let status = std::str::from_utf8(&p[17..body_start]).ok()?.to_string();
    let body = std::str::from_utf8(&p[body_start..]).ok()?.to_string();
    Some(LogRecord { key, status, body })
}

/// Parses the in-memory bytes of a log file. Returns the replay report
/// plus the byte length of the clean prefix (for truncation).
fn replay_bytes(bytes: &[u8]) -> (ReplayReport, u64) {
    let mut report = ReplayReport::default();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        // Headerless or foreign file: everything is garbage; the clean
        // prefix is empty and the caller rewrites the header.
        report.dropped = u64::from(!bytes.is_empty());
        report.truncated_bytes = bytes.len() as u64;
        return (report, 0);
    }
    let mut pos = MAGIC.len();
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break; // clean end
        }
        if rest.len() < 8 {
            report.dropped += 1; // torn frame header
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_RECORD_BYTES || rest.len() < 8 + len as usize {
            report.dropped += 1; // absurd length or torn payload
            break;
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            report.dropped += 1; // bit rot / torn write inside the frame
            break;
        }
        match decode_payload(payload) {
            Some(rec) => report.records.push(rec),
            None => {
                report.dropped += 1; // CRC-clean but structurally bad
                break;
            }
        }
        pos += 8 + len as usize;
    }
    report.truncated_bytes = (bytes.len() - pos) as u64;
    (report, pos as u64)
}

impl CacheLog {
    /// Opens (or creates) the log at `path`, replaying every clean
    /// record and truncating any bad tail so the file ends at the clean
    /// prefix. The returned log is positioned for appends.
    pub fn open(path: &Path) -> std::io::Result<(CacheLog, ReplayReport)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let fresh = bytes.is_empty();
        let (report, clean_len) = replay_bytes(&bytes);
        if clean_len == 0 {
            // Fresh file, or a log whose header itself is gone: rewrite
            // the header from scratch.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
        } else if report.truncated_bytes > 0 {
            file.set_len(clean_len)?;
            file.seek(SeekFrom::Start(clean_len))?;
        } else {
            file.seek(SeekFrom::End(0))?;
        }
        if !fresh && report.dropped > 0 {
            eprintln!(
                "ltsp-cache: {} replayed {} record(s), dropped {} bad record(s) \
                 ({} byte(s) truncated)",
                path.display(),
                report.records.len(),
                report.dropped,
                report.truncated_bytes
            );
        }
        Ok((
            CacheLog {
                path: path.to_path_buf(),
                writer: Mutex::new(BufWriter::new(file)),
                // A rewritten (fresh/headerless) log starts at the bare
                // header; otherwise the file was truncated to clean_len.
                log_bytes: AtomicU64::new(clean_len.max(MAGIC.len() as u64)),
            },
            report,
        ))
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The log's current on-disk size in bytes (header plus every
    /// record appended or replayed, after bad-tail truncation).
    pub fn log_bytes(&self) -> u64 {
        self.log_bytes.load(Ordering::Relaxed)
    }

    /// Appends one record (framed, CRC'd, flushed — not fsynced). Thread
    /// safe; records from concurrent appenders never interleave.
    pub fn append(&self, key: Fingerprint, status: &str, body: &str) -> std::io::Result<()> {
        let payload = encode_payload(key, status, body);
        debug_assert!(payload.len() as u64 <= u64::from(MAX_RECORD_BYTES));
        let mut w = lock_unpoisoned(&self.writer);
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&crc32(&payload).to_le_bytes())?;
        w.write_all(&payload)?;
        w.flush()?;
        self.log_bytes
            .fetch_add(8 + payload.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ltsp-persist-unit-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.log")
    }

    fn rec(i: u64) -> LogRecord {
        LogRecord {
            key: Fingerprint::of_str(&format!("key-{i}")),
            status: "ok".to_string(),
            body: format!(",\"op\":\"compile\",\"n\":{i}"),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_append_then_replay() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (log, report) = CacheLog::open(&path).unwrap();
        assert!(report.records.is_empty());
        for i in 0..10 {
            let r = rec(i);
            log.append(r.key, &r.status, &r.body).unwrap();
        }
        drop(log);
        let (_log, report) = CacheLog::open(&path).unwrap();
        assert_eq!(report.dropped, 0);
        assert_eq!(report.records.len(), 10);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(*r, rec(i as u64), "byte-identical replay");
        }
    }

    #[test]
    fn headerless_garbage_restarts_empty() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a log").unwrap();
        let (log, report) = CacheLog::open(&path).unwrap();
        assert!(report.records.is_empty());
        assert_eq!(report.dropped, 1);
        let r = rec(1);
        log.append(r.key, &r.status, &r.body).unwrap();
        drop(log);
        let (_log, report) = CacheLog::open(&path).unwrap();
        assert_eq!(report.records, vec![rec(1)], "usable after restart");
    }

    #[test]
    fn last_writer_wins_keeps_final_bytes_in_first_appearance_order() {
        let path = tmp("lww");
        let _ = std::fs::remove_file(&path);
        let (log, _) = CacheLog::open(&path).unwrap();
        let k = |s: &str| Fingerprint::of_str(s);
        // a v1, b v1, a v2 (upgrade), c v1, b v2 (upgrade).
        for (key, body) in [
            ("a", "a-v1"),
            ("b", "b-v1"),
            ("a", "a-v2"),
            ("c", "c-v1"),
            ("b", "b-v2"),
        ] {
            log.append(k(key), "ok", body).unwrap();
        }
        drop(log);
        let (_log, report) = CacheLog::open(&path).unwrap();
        assert_eq!(report.records.len(), 5, "replay keeps the raw history");
        let lww = report.last_writer_wins();
        let bodies: Vec<&str> = lww.iter().map(|r| r.body.as_str()).collect();
        assert_eq!(
            bodies,
            vec!["a-v2", "b-v2", "c-v1"],
            "final bytes win, first-appearance order"
        );
        assert_eq!(report.superseded(), 2);
    }

    #[test]
    fn log_bytes_track_the_on_disk_size_across_reopen() {
        let path = tmp("log-bytes");
        let _ = std::fs::remove_file(&path);
        let (log, _) = CacheLog::open(&path).unwrap();
        assert_eq!(log.log_bytes(), MAGIC.len() as u64, "fresh log = header");
        for i in 0..5 {
            let r = rec(i);
            log.append(r.key, &r.status, &r.body).unwrap();
            assert_eq!(
                log.log_bytes(),
                std::fs::metadata(&path).unwrap().len(),
                "gauge matches the file after append {i}"
            );
        }
        let final_bytes = log.log_bytes();
        drop(log);
        let (log, _) = CacheLog::open(&path).unwrap();
        assert_eq!(log.log_bytes(), final_bytes, "reopen replays the size");
    }

    #[test]
    fn empty_status_and_body_roundtrip() {
        let path = tmp("empty-fields");
        let _ = std::fs::remove_file(&path);
        let r = LogRecord {
            key: Fingerprint(0),
            status: String::new(),
            body: String::new(),
        };
        let (log, _) = CacheLog::open(&path).unwrap();
        log.append(r.key, &r.status, &r.body).unwrap();
        drop(log);
        let (_log, report) = CacheLog::open(&path).unwrap();
        assert_eq!(report.records, vec![r]);
    }
}
