//! # ltsp-cache — a content-addressed schedule cache
//!
//! Every entry point of this workspace re-pipelines identical loops from
//! scratch on every invocation; a serving layer (`ltsp-server`) cannot
//! afford that, and expensive request classes — the exact-II oracle is a
//! branch-and-bound proof — make caching load-bearing rather than
//! decorative. This crate provides the two pieces:
//!
//! - **content addressing** ([`Fingerprint`], [`FingerprintHasher`]): a
//!   stable 128-bit FNV-1a over the *canonicalized* inputs. A loop is
//!   canonicalized by parsing its text into [`LoopIr`] and re-printing it
//!   (`Display` is lossless, so formatting and comments never split the
//!   key space); the compile configuration contributes its own
//!   fingerprint. Identical (loop, config) pairs collide onto the same
//!   key **by construction**, and any config change moves the key — a
//!   stale entry can never be served across a [`RunConfig`]-style change.
//! - **a sharded LRU with byte-budget eviction** ([`ShardedLru`]): keys
//!   spread over `shards` independently locked maps (the shard index is
//!   the key's top bits, so contention scales down with shard count);
//!   each shard owns `byte_budget / shards` bytes and evicts its
//!   least-recently-used entries when an insert overflows the budget.
//!   Hit/miss/eviction/insertion counters are kept on atomics and can be
//!   surfaced through the telemetry metrics registry
//!   ([`ShardedLru::export_metrics`]).
//! - **a disk persistence tier** ([`persist`]): an append-only,
//!   CRC-framed, crash-tolerant record log so a restarted process can
//!   replay its cache and serve warm from request one.
//!
//! Values are returned as `Arc<V>` so a hit is a pointer clone, never a
//! deep copy; because every cached computation in this workspace is a
//! deterministic pure function of its key, a racing double-compute under
//! [`ShardedLru::get_or_insert_with`] is benign (both threads produce
//! identical values; the last insert wins).
//!
//! [`LoopIr`]: https://docs.rs/ltsp-ir
//! [`RunConfig`]: https://docs.rs/ltsp-core

#![warn(missing_docs)]

pub mod persist;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ltsp_telemetry::{lock_unpoisoned, Telemetry};

/// A stable 128-bit content fingerprint (FNV-1a).
///
/// FNV-1a is deterministic across runs, platforms and toolchains, unlike
/// `std::hash::DefaultHasher` whose output may change between releases.
/// That cross-run stability is load-bearing: the [`persist`] log writes
/// fingerprints to disk and a restarted process must rehash identical
/// content to identical keys for warm-start replay to hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Fingerprints one byte string in a single call.
    pub fn of_bytes(bytes: &[u8]) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write(bytes);
        h.finish()
    }

    /// Fingerprints one string in a single call.
    pub fn of_str(s: &str) -> Fingerprint {
        Fingerprint::of_bytes(s.as_bytes())
    }

    /// A short hex rendering for logs and trace IDs (low 64 bits).
    pub fn short_hex(&self) -> String {
        format!("{:016x}", self.0 as u64)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Incremental FNV-1a-128 hasher. Multi-field keys must delimit fields
/// ([`FingerprintHasher::write_str`] appends a `0x1F` unit separator) so
/// `("ab","c")` and `("a","bc")` cannot collide by concatenation.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u128,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        FingerprintHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs a string field followed by a unit separator.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0x1F]);
    }

    /// Absorbs a `u64` field (little-endian, fixed width — self-delimiting).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` field by its bit pattern (so `-0.0` and `0.0`
    /// are distinct keys, and NaNs hash stably).
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Absorbs another fingerprint (e.g. a config fingerprint folded into
    /// a request key).
    pub fn write_fingerprint(&mut self, fp: Fingerprint) {
        self.write(&fp.0.to_le_bytes());
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// Sizing/sharding configuration for a [`ShardedLru`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total byte budget across all shards. Entries are evicted
    /// least-recently-used-first once a shard exceeds its share; a budget
    /// of 0 disables caching entirely (every lookup misses, nothing is
    /// retained).
    pub byte_budget: usize,
    /// Number of independently locked shards (clamped to ≥ 1, rounded up
    /// to a power of two so shard selection is a bit mask).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            byte_budget: 64 << 20, // 64 MiB
            shards: 16,
        }
    }
}

/// A point-in-time snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Live entries right now.
    pub entries: u64,
    /// Live bytes right now (as accounted at insert time).
    pub bytes: u64,
}

impl CacheStats {
    /// Hit fraction in [0, 1] (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: Arc<V>,
    bytes: usize,
    last_used: u64,
}

struct Shard<V> {
    map: HashMap<u128, Entry<V>>,
    /// Monotonic access clock driving LRU ordering (shard-local).
    clock: u64,
    bytes: usize,
}

impl<V> Shard<V> {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// A content-addressed, sharded, byte-budgeted LRU cache. See the crate
/// docs for the design; `V` is typically a compiled artifact or a fully
/// rendered response body.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    shard_mask: u128,
    budget_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl<V> std::fmt::Debug for ShardedLru<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("budget_per_shard", &self.budget_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<V> ShardedLru<V> {
    /// Creates a cache with the given budget and shard count.
    pub fn new(cfg: CacheConfig) -> Self {
        let shards = cfg.shards.max(1).next_power_of_two();
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                        bytes: 0,
                    })
                })
                .collect(),
            shard_mask: (shards - 1) as u128,
            budget_per_shard: cfg.byte_budget / shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: Fingerprint) -> &Mutex<Shard<V>> {
        // Top bits pick the shard; FNV mixes well enough there, and the
        // low bits stay for the in-shard HashMap.
        let idx = (key.0 >> 64) & self.shard_mask;
        &self.shards[idx as usize]
    }

    /// Looks up a key, bumping its recency on a hit.
    pub fn get(&self, key: Fingerprint) -> Option<Arc<V>> {
        let mut shard = lock_unpoisoned(self.shard(key));
        let tick = shard.tick();
        match shard.map.get_mut(&key.0) {
            Some(e) => {
                e.last_used = tick;
                let v = Arc::clone(&e.value);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a value accounted at `bytes`, evicting LRU entries while
    /// the shard is over budget. Values larger than a whole shard's
    /// budget are returned un-cached (they would only thrash). Returns
    /// the `Arc` now owning the value.
    pub fn insert(&self, key: Fingerprint, value: V, bytes: usize) -> Arc<V> {
        let value = Arc::new(value);
        if bytes > self.budget_per_shard {
            return value;
        }
        let mut shard = lock_unpoisoned(self.shard(key));
        let tick = shard.tick();
        if let Some(old) = shard.map.insert(
            key.0,
            Entry {
                value: Arc::clone(&value),
                bytes,
                last_used: tick,
            },
        ) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        self.insertions.fetch_add(1, Ordering::Relaxed);
        let mut evicted = 0u64;
        while shard.bytes > self.budget_per_shard {
            // Linear LRU scan: shards stay small (budget/shards), and
            // eviction is the rare path.
            let victim = shard
                .map
                .iter()
                .filter(|(k, _)| **k != key.0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(e) = shard.map.remove(&k) {
                        shard.bytes -= e.bytes;
                        evicted += 1;
                    }
                }
                None => break, // only the fresh entry remains
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        value
    }

    /// The read-through path: returns the cached value for `key`, or
    /// computes it with `f`, inserts it at `bytes_of(&value)` bytes, and
    /// returns it. The boolean is `true` on a hit.
    ///
    /// Two threads missing on the same key concurrently both compute;
    /// this is benign for deterministic `f` (identical values, last
    /// insert wins) and avoids holding a shard lock across a compile.
    pub fn get_or_insert_with<F, S>(&self, key: Fingerprint, bytes_of: S, f: F) -> (Arc<V>, bool)
    where
        F: FnOnce() -> V,
        S: FnOnce(&V) -> usize,
    {
        if let Some(v) = self.get(key) {
            return (v, true);
        }
        let value = f();
        let bytes = bytes_of(&value);
        (self.insert(key, value, bytes), false)
    }

    /// Current counter snapshot (entries/bytes aggregate over all shards).
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for s in &self.shards {
            let s = lock_unpoisoned(s);
            entries += s.map.len() as u64;
            bytes += s.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(s).map.len())
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are retained).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = lock_unpoisoned(s);
            s.map.clear();
            s.bytes = 0;
        }
    }

    /// Publishes the counter snapshot into a telemetry metrics registry
    /// under `prefix` (e.g. `prefix.hits`, `prefix.bytes`). Counters are
    /// cumulative; callers export once per reporting boundary.
    pub fn export_metrics(&self, tel: &Telemetry, prefix: &str) {
        let s = self.stats();
        for (name, v) in [
            ("hits", s.hits),
            ("misses", s.misses),
            ("evictions", s.evictions),
            ("insertions", s.insertions),
            ("entries", s.entries),
            ("bytes", s.bytes),
        ] {
            tel.counter_add(&format!("{prefix}.{name}"), v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = Fingerprint::of_str("loop a { }");
        let b = Fingerprint::of_str("loop b { }");
        assert_eq!(a, Fingerprint::of_str("loop a { }"), "deterministic");
        assert_ne!(a, b);
        // Known FNV-1a-128 vector: the empty input is the offset basis.
        assert_eq!(Fingerprint::of_bytes(b"").0, FNV128_OFFSET);
    }

    #[test]
    fn field_delimiting_prevents_concat_collisions() {
        let mut h1 = FingerprintHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = FingerprintHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache: ShardedLru<String> = ShardedLru::new(CacheConfig::default());
        let k = Fingerprint::of_str("k");
        assert!(cache.get(k).is_none());
        cache.insert(k, "v".to_string(), 1);
        assert_eq!(cache.get(k).as_deref(), Some(&"v".to_string()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        // One shard so the LRU order is globally observable.
        let cache: ShardedLru<u32> = ShardedLru::new(CacheConfig {
            byte_budget: 100,
            shards: 1,
        });
        let keys: Vec<Fingerprint> = (0..4)
            .map(|i| Fingerprint::of_str(&format!("k{i}")))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            cache.insert(k, i as u32, 40);
        }
        // 4 × 40 bytes against a 100-byte budget: only the two most
        // recently inserted survive.
        assert_eq!(cache.len(), 2);
        assert!(cache.get(keys[0]).is_none());
        assert!(cache.get(keys[1]).is_none());
        assert_eq!(cache.get(keys[2]).as_deref(), Some(&2));
        assert_eq!(cache.get(keys[3]).as_deref(), Some(&3));
        assert_eq!(cache.stats().evictions, 2);

        // A get refreshes recency: touch k2, insert k4, k3 is the victim.
        cache.get(keys[2]);
        cache.insert(Fingerprint::of_str("k4"), 4, 40);
        assert!(cache.get(keys[2]).is_some(), "recently used survives");
        assert!(cache.get(keys[3]).is_none(), "LRU evicted");
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let cache: ShardedLru<u32> = ShardedLru::new(CacheConfig {
            byte_budget: 64,
            shards: 1,
        });
        let k = Fingerprint::of_str("big");
        let v = cache.insert(k, 7, 1000);
        assert_eq!(*v, 7, "the value is still returned");
        assert!(cache.get(k).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache: ShardedLru<u32> = ShardedLru::new(CacheConfig {
            byte_budget: 0,
            shards: 4,
        });
        let k = Fingerprint::of_str("k");
        cache.insert(k, 1, 1);
        assert!(cache.get(k).is_none());
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let cache: ShardedLru<u32> = ShardedLru::new(CacheConfig {
            byte_budget: 100,
            shards: 1,
        });
        let k = Fingerprint::of_str("k");
        cache.insert(k, 1, 30);
        cache.insert(k, 2, 50);
        assert_eq!(cache.get(k).as_deref(), Some(&2));
        assert_eq!(cache.stats().bytes, 50, "old accounting released");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_or_insert_with_computes_once_per_key() {
        let cache: ShardedLru<u64> = ShardedLru::new(CacheConfig::default());
        let k = Fingerprint::of_str("k");
        let (v1, hit1) = cache.get_or_insert_with(k, |_| 8, || 42);
        let (v2, hit2) = cache.get_or_insert_with(k, |_| 8, || panic!("must not recompute"));
        assert_eq!((*v1, hit1), (42, false));
        assert_eq!((*v2, hit2), (42, true));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache: ShardedLru<u8> = ShardedLru::new(CacheConfig {
            byte_budget: 1 << 20,
            shards: 5,
        });
        assert_eq!(cache.shards.len(), 8);
        // Keys land on a shard by top bits, and stay retrievable.
        for i in 0..64 {
            let k = Fingerprint::of_str(&format!("key-{i}"));
            cache.insert(k, i as u8, 16);
            assert_eq!(cache.get(k).as_deref(), Some(&(i as u8)));
        }
        assert_eq!(cache.len(), 64);
    }

    #[test]
    fn concurrent_access_is_safe_and_counts_add_up() {
        let cache: std::sync::Arc<ShardedLru<u64>> =
            std::sync::Arc::new(ShardedLru::new(CacheConfig {
                byte_budget: 1 << 16,
                shards: 4,
            }));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = std::sync::Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let k = Fingerprint::of_str(&format!("k{}", (i + t) % 32));
                    let (v, _) = c.get_or_insert_with(k, |_| 32, || (i + t) % 32);
                    assert_eq!(*v % 32, (i + t) % 32);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 4 * 200);
        assert!(s.hits > 0);
    }

    #[test]
    fn export_metrics_publishes_counters() {
        let tel = Telemetry::enabled();
        let cache: ShardedLru<u8> = ShardedLru::new(CacheConfig::default());
        cache.insert(Fingerprint::of_str("k"), 1, 4);
        cache.get(Fingerprint::of_str("k"));
        cache.get(Fingerprint::of_str("absent"));
        cache.export_metrics(&tel, "cache.test");
        let m = tel.metrics();
        assert_eq!(m.counter("cache.test.hits"), 1);
        assert_eq!(m.counter("cache.test.misses"), 1);
        assert_eq!(m.counter("cache.test.entries"), 1);
        assert_eq!(m.counter("cache.test.bytes"), 4);
    }
}
