//! Cluster lifecycle: spawn N worker shards + one router, respawn
//! crashed shards warm, propagate drain, reap everything.
//!
//! The supervisor owns the process tree behind `ltspc serve --cluster N`:
//!
//! - Shard `i` listens on `router_port + 1 + i` on the router's host and
//!   gets `--persist DIR/shard-i.log` when a persist directory is
//!   configured, so its cache log survives both crashes and restarts.
//! - A crashed shard (any premature exit, including the `shardkill`
//!   fault site's code 113) is respawned at the same address up to
//!   `max_respawns` times — same address and same ring index, so the
//!   replayed persist log still covers exactly the key slice the ring
//!   routes to it. The router rides out the gap via failover and its
//!   dead-shard cooldown.
//! - Drain propagates: a client `shutdown` (or SIGTERM) reaching the
//!   router broadcasts shutdown to every shard; the supervisor then
//!   waits for the children, escalating to `kill()` only past a
//!   generous deadline.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::router::{spawn_router, RouterConfig};

/// Configuration for a supervised cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Router settings; `router.addr` must carry an explicit port —
    /// shard ports are derived from it. `router.shard_addrs` and
    /// `router.respawns` are filled in by [`run_cluster`].
    pub router: RouterConfig,
    /// Number of worker shards.
    pub shards: usize,
    /// Worker executable (normally the current `ltspc` binary).
    pub worker_exe: PathBuf,
    /// Arguments before the per-shard `--addr`/`--persist` flags, e.g.
    /// `["serve", "--jobs", "2"]`.
    pub worker_args: Vec<String>,
    /// Directory for per-shard persistent cache logs (`shard-i.log`);
    /// created if missing. `None` disables the disk tier.
    pub persist_dir: Option<PathBuf>,
    /// Respawn budget per shard; past it a crashing shard stays down
    /// (the router keeps failing over around it).
    pub max_respawns: u32,
    /// How long to wait for a (re)spawned shard to accept connections.
    pub startup_timeout: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            router: RouterConfig::default(),
            shards: 3,
            worker_exe: PathBuf::from("ltspc"),
            worker_args: vec!["serve".to_string()],
            persist_dir: None,
            max_respawns: 50,
            startup_timeout: Duration::from_secs(10),
        }
    }
}

/// Splits `host:port` with an explicit nonzero port (shard ports are
/// `port + 1 + i`, so "pick me a port" can't work here).
fn split_addr(addr: &str) -> std::io::Result<(String, u16)> {
    let (host, port) = addr
        .rsplit_once(':')
        .ok_or_else(|| std::io::Error::other(format!("cluster addr {addr:?} needs host:port")))?;
    let port: u16 = port
        .parse()
        .map_err(|_| std::io::Error::other(format!("cluster addr {addr:?}: bad port")))?;
    if port == 0 {
        return Err(std::io::Error::other(
            "cluster addr needs an explicit port (shard ports are derived from it)",
        ));
    }
    Ok((host.to_string(), port))
}

fn spawn_worker(cfg: &ClusterConfig, shard: usize, addr: &str) -> std::io::Result<Child> {
    let mut cmd = Command::new(&cfg.worker_exe);
    cmd.args(&cfg.worker_args).arg("--addr").arg(addr);
    if let Some(dir) = &cfg.persist_dir {
        cmd.arg("--persist")
            .arg(dir.join(format!("shard-{shard}.log")));
    }
    cmd.stdin(Stdio::null());
    cmd.spawn()
}

/// Polls until `addr` accepts a TCP connection or the timeout passes.
fn wait_for_listener(addr: &str, timeout: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        let ok = addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut it| it.next())
            .and_then(|sa| TcpStream::connect_timeout(&sa, Duration::from_millis(250)).ok())
            .is_some();
        if ok {
            return true;
        }
        thread::sleep(Duration::from_millis(50));
    }
    false
}

/// Best-effort `shutdown` to one shard address.
fn send_shutdown(addr: &str) {
    let Some(sa) = addr.to_socket_addrs().ok().and_then(|mut it| it.next()) else {
        return;
    };
    let Ok(mut stream) = TcpStream::connect_timeout(&sa, Duration::from_secs(1)) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.write_all(b"{\"op\":\"shutdown\",\"id\":\"ltspc-cluster-drain\"}\n");
    let mut sink = [0u8; 1024];
    let _ = stream.read(&mut sink);
}

/// Runs a full cluster in the foreground: spawns the shards, runs the
/// router until it drains (client `shutdown` or signal), then reaps the
/// workers. Returns once everything has stopped.
///
/// # Errors
///
/// Fails if the router address is unusable, a persist directory can't
/// be created, a worker can't be spawned, or a shard never starts
/// listening within `startup_timeout`.
pub fn run_cluster(mut cfg: ClusterConfig) -> std::io::Result<()> {
    let shards = cfg.shards.max(1);
    let (host, port) = split_addr(&cfg.router.addr)?;
    let shard_addrs: Vec<String> = (0..shards)
        .map(|i| format!("{host}:{}", port as u32 + 1 + i as u32))
        .collect();
    if let Some(dir) = &cfg.persist_dir {
        std::fs::create_dir_all(dir)?;
    }

    let mut children: Vec<Option<Child>> = Vec::with_capacity(shards);
    for (i, addr) in shard_addrs.iter().enumerate() {
        let child = spawn_worker(&cfg, i, addr)?;
        children.push(Some(child));
    }
    for (i, addr) in shard_addrs.iter().enumerate() {
        if !wait_for_listener(addr, cfg.startup_timeout) {
            for c in children.iter_mut().flatten() {
                let _ = c.kill();
            }
            return Err(std::io::Error::other(format!(
                "shard {i} never started listening on {addr}"
            )));
        }
    }

    let respawns: Arc<Vec<AtomicU64>> = Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
    cfg.router.shard_addrs = shard_addrs.clone();
    cfg.router.respawns = Some(Arc::clone(&respawns));
    let router = spawn_router(cfg.router.clone())?;
    eprintln!(
        "ltspc: cluster up — router {} over {} shard(s) [{}]",
        router.addr(),
        shards,
        shard_addrs.join(", ")
    );

    // Monitor: reap crashed shards and respawn them warm until the
    // router starts draining.
    while !router.is_finished() {
        thread::sleep(Duration::from_millis(100));
        for (i, slot) in children.iter_mut().enumerate() {
            let Some(child) = slot else { continue };
            match child.try_wait() {
                Ok(Some(status)) => {
                    if router.draining() {
                        *slot = None;
                        continue;
                    }
                    let spawned = respawns[i].load(Ordering::Relaxed);
                    if spawned >= u64::from(cfg.max_respawns) {
                        eprintln!(
                            "ltspc: shard {i} exited ({status}) past respawn budget — leaving down"
                        );
                        *slot = None;
                        continue;
                    }
                    respawns[i].fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "ltspc: shard {i} exited ({status}) — respawning on {} (respawn #{})",
                        shard_addrs[i],
                        spawned + 1
                    );
                    match spawn_worker(&cfg, i, &shard_addrs[i]) {
                        Ok(c) => {
                            wait_for_listener(&shard_addrs[i], cfg.startup_timeout);
                            *slot = Some(c);
                        }
                        Err(e) => {
                            eprintln!("ltspc: cannot respawn shard {i}: {e}");
                            *slot = None;
                        }
                    }
                }
                Ok(None) => {}
                Err(_) => *slot = None,
            }
        }
    }

    // Router drained. Make sure every surviving shard drains too (the
    // router already broadcast on the shutdown/signal path; this covers
    // handle-initiated drains and races), then reap with a deadline.
    for addr in &shard_addrs {
        send_shutdown(addr);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    for (i, slot) in children.iter_mut().enumerate() {
        let Some(child) = slot else { continue };
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => thread::sleep(Duration::from_millis(50)),
                _ => {
                    eprintln!("ltspc: shard {i} ignored drain — killing");
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
    }
    eprintln!("ltspc: cluster stopped");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_addr_requires_explicit_port() {
        assert_eq!(
            split_addr("127.0.0.1:7199").unwrap(),
            ("127.0.0.1".to_string(), 7199)
        );
        assert!(split_addr("127.0.0.1:0").is_err());
        assert!(split_addr("nocolon").is_err());
        assert!(split_addr("host:notaport").is_err());
    }
}
